"""Setuptools shim.

The project metadata — including the ``repro`` console entry point — lives in
``pyproject.toml``; this file only exists so that ``pip install -e .`` works
in offline environments whose toolchain lacks the ``wheel`` package required
by PEP 517 editable installs.
"""

from setuptools import setup

setup()
