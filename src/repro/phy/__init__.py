"""LoRa physical-layer models.

This package reproduces the radio substrate the paper's evaluation relies on
(OMNeT++/FLoRa in the original): Semtech LoRa time-on-air, a log-distance
path-loss model with log-normal shadowing (exponent 2.32, Sec. VII-A5),
receiver sensitivity per spreading factor, the RSSI→capacity mapping of
Eq. (5), a same-SF collision/capture model and a radio energy model used by
the Queue-based Class-A ablation.
"""

from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.collision import CollisionModel, Transmission
from repro.phy.constants import (
    EU868_DUTY_CYCLE,
    SENSITIVITY_DBM,
    SNR_THRESHOLD_DB,
    SpreadingFactor,
    bitrate_bps,
)
from repro.phy.energy import EnergyModel, RadioState
from repro.phy.link import LinkCapacityModel, LinkQualityEstimator
from repro.phy.pathloss import FreeSpacePathLoss, LogDistancePathLoss, PathLossModel

__all__ = [
    "AirtimeCalculator",
    "LoRaTransmissionParameters",
    "CollisionModel",
    "Transmission",
    "EU868_DUTY_CYCLE",
    "SENSITIVITY_DBM",
    "SNR_THRESHOLD_DB",
    "SpreadingFactor",
    "bitrate_bps",
    "EnergyModel",
    "RadioState",
    "LinkCapacityModel",
    "LinkQualityEstimator",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "PathLossModel",
]
