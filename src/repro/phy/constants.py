"""LoRa / LoRaWAN physical-layer constants.

Values follow the LoRaWAN 1.0.3 regional parameters for EU868 and the SX1276
datasheet, the same sources used by FLoRa.  Only the subset needed by the
evaluation is included, but the tables cover all spreading factors so that the
simulator is usable beyond the paper's fixed-SF7 setting.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class SpreadingFactor(IntEnum):
    """LoRa spreading factors SF7–SF12."""

    SF7 = 7
    SF8 = 8
    SF9 = 9
    SF10 = 10
    SF11 = 11
    SF12 = 12


#: Default EU868 general-channel duty cycle (1 %), Sec. III-B of the paper.
EU868_DUTY_CYCLE = 0.01

#: Default LoRaWAN bandwidth in Hz used throughout the evaluation.
DEFAULT_BANDWIDTH_HZ = 125_000

#: Default coding rate expressed as 4/(4+CR); CR=1 means 4/5.
DEFAULT_CODING_RATE = 1

#: Default transmit power in dBm (EU868 ERP limit is +14 dBm).
DEFAULT_TX_POWER_DBM = 14.0

#: Default preamble length in symbols.
DEFAULT_PREAMBLE_SYMBOLS = 8

#: Maximum LoRa PHY payload in bytes (SF7, as cited in Sec. VII-A5).
MAX_PHY_PAYLOAD_BYTES = 255

#: Receiver sensitivity (dBm) per spreading factor at 125 kHz (SX1276 datasheet).
SENSITIVITY_DBM: Dict[SpreadingFactor, float] = {
    SpreadingFactor.SF7: -123.0,
    SpreadingFactor.SF8: -126.0,
    SpreadingFactor.SF9: -129.0,
    SpreadingFactor.SF10: -132.0,
    SpreadingFactor.SF11: -134.5,
    SpreadingFactor.SF12: -137.0,
}

#: Demodulation SNR threshold (dB) per spreading factor.
SNR_THRESHOLD_DB: Dict[SpreadingFactor, float] = {
    SpreadingFactor.SF7: -7.5,
    SpreadingFactor.SF8: -10.0,
    SpreadingFactor.SF9: -12.5,
    SpreadingFactor.SF10: -15.0,
    SpreadingFactor.SF11: -17.5,
    SpreadingFactor.SF12: -20.0,
}

#: Co-channel capture threshold (dB): the stronger frame survives a collision
#: if it exceeds the interferer by at least this margin (FLoRa / Bor et al.).
CAPTURE_THRESHOLD_DB = 6.0

#: Thermal noise floor for 125 kHz bandwidth at a 6 dB noise figure, in dBm.
NOISE_FLOOR_DBM = -174.0 + 10.0 * 5.0969100130080565 + 6.0  # -117.03 dBm approx.


def bitrate_bps(
    spreading_factor: SpreadingFactor,
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
    coding_rate: int = DEFAULT_CODING_RATE,
) -> float:
    """Raw LoRa bit rate ``SF * BW / 2^SF * 4/(4+CR)`` in bits per second.

    For SF12/125 kHz this evaluates to ~293 bit/s raw; after the 1 % duty
    cycle it matches the "2.5 bit/s effective" figure quoted in Sec. III-B.
    """
    if coding_rate not in (1, 2, 3, 4):
        raise ValueError(f"coding_rate must be in 1..4, got {coding_rate}")
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    sf = int(spreading_factor)
    return sf * (bandwidth_hz / (2 ** sf)) * (4.0 / (4.0 + coding_rate))


def effective_bitrate_bps(
    spreading_factor: SpreadingFactor,
    duty_cycle: float = EU868_DUTY_CYCLE,
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
    coding_rate: int = DEFAULT_CODING_RATE,
) -> float:
    """Duty-cycle limited bit rate (raw bitrate times the duty cycle)."""
    if not 0 < duty_cycle <= 1:
        raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
    return bitrate_bps(spreading_factor, bandwidth_hz, coding_rate) * duty_cycle
