"""Link-capacity and link-quality models.

Two pieces live here:

* :class:`LinkCapacityModel` — the RSSI→capacity mapping of Eq. (5): capacity
  scales linearly between an RSSI floor (capacity 0) and ceiling (maximum
  capacity), the same construction the paper borrows from the Contiki link
  stack.
* :class:`LinkQualityEstimator` — a simple packet-success estimator derived
  from received power versus sensitivity, used by the device-to-gateway
  channel to decide whether an uplink is decodable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.constants import (
    SENSITIVITY_DBM,
    SpreadingFactor,
    bitrate_bps,
    EU868_DUTY_CYCLE,
)


@dataclass(frozen=True)
class LinkCapacityModel:
    """Linear RSSI→capacity mapping (paper Eq. 5).

    ``capacity = c_max * (rssi - rssi_min) / (rssi_max - rssi_min)`` clamped to
    ``[0, c_max]``; below ``rssi_min`` the capacity is exactly zero, above
    ``rssi_max`` it is exactly ``c_max``.
    """

    max_capacity_bps: float
    rssi_min_dbm: float = -123.0
    rssi_max_dbm: float = -80.0

    def __post_init__(self) -> None:
        if self.max_capacity_bps <= 0:
            raise ValueError(f"max_capacity_bps must be positive, got {self.max_capacity_bps}")
        if self.rssi_max_dbm <= self.rssi_min_dbm:
            raise ValueError("rssi_max_dbm must exceed rssi_min_dbm")

    @classmethod
    def for_spreading_factor(
        cls,
        spreading_factor: SpreadingFactor = SpreadingFactor.SF7,
        duty_cycle: float = EU868_DUTY_CYCLE,
        rssi_max_dbm: float = -80.0,
    ) -> "LinkCapacityModel":
        """Build a model whose ceiling is the duty-cycle-limited bitrate of ``spreading_factor``."""
        max_capacity = bitrate_bps(spreading_factor) * duty_cycle
        return cls(
            max_capacity_bps=max_capacity,
            rssi_min_dbm=SENSITIVITY_DBM[spreading_factor],
            rssi_max_dbm=rssi_max_dbm,
        )

    def capacity_bps(self, rssi_dbm: float) -> float:
        """Capacity in bits per second for a received signal strength of ``rssi_dbm``."""
        if rssi_dbm < self.rssi_min_dbm:
            return 0.0
        if rssi_dbm > self.rssi_max_dbm:
            return self.max_capacity_bps
        fraction = (rssi_dbm - self.rssi_min_dbm) / (self.rssi_max_dbm - self.rssi_min_dbm)
        return self.max_capacity_bps * fraction

    def is_connected(self, rssi_dbm: float) -> bool:
        """True when the link has strictly positive capacity."""
        return self.capacity_bps(rssi_dbm) > 0.0


@dataclass(frozen=True)
class LinkQualityEstimator:
    """Packet-success model based on the margin above receiver sensitivity.

    The success probability ramps linearly from 0 at the sensitivity threshold
    to 1 at ``sensitivity + margin_db``.  This coarse model captures the
    "unreliable near the edge of coverage" behaviour that motivates the paper
    without simulating symbol-level BER.
    """

    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    margin_db: float = 10.0

    def __post_init__(self) -> None:
        if self.margin_db <= 0:
            raise ValueError(f"margin_db must be positive, got {self.margin_db}")

    @property
    def sensitivity_dbm(self) -> float:
        """Receiver sensitivity for the configured spreading factor."""
        return SENSITIVITY_DBM[self.spreading_factor]

    def success_probability(self, rssi_dbm: float) -> float:
        """Probability a frame at ``rssi_dbm`` is decoded (ignoring collisions)."""
        margin = rssi_dbm - self.sensitivity_dbm
        if margin <= 0:
            return 0.0
        if margin >= self.margin_db:
            return 1.0
        return margin / self.margin_db

    def frame_received(self, rssi_dbm: float, rng: Optional[np.random.Generator]) -> bool:
        """Bernoulli draw of frame reception; deterministic threshold if no RNG is given."""
        probability = self.success_probability(rssi_dbm)
        if rng is None:
            return probability >= 0.5
        return bool(rng.random() < probability)
