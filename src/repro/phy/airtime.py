"""LoRa time-on-air computation (Semtech AN1200.13 formula).

Airtime drives everything in a duty-cycle-limited network: how long a frame
occupies the channel (collisions), how long the transmitter must then stay
silent (duty-cycle wait), and therefore the effective link capacity used by
the RCA-ETX metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.phy.constants import (
    DEFAULT_BANDWIDTH_HZ,
    DEFAULT_CODING_RATE,
    DEFAULT_PREAMBLE_SYMBOLS,
    MAX_PHY_PAYLOAD_BYTES,
    SpreadingFactor,
)


@dataclass(frozen=True)
class LoRaTransmissionParameters:
    """The radio settings that determine a frame's time on air."""

    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    coding_rate: int = DEFAULT_CODING_RATE
    preamble_symbols: int = DEFAULT_PREAMBLE_SYMBOLS
    explicit_header: bool = True
    low_data_rate_optimize: bool = False
    crc_enabled: bool = True

    def __post_init__(self) -> None:
        if self.coding_rate not in (1, 2, 3, 4):
            raise ValueError(f"coding_rate must be in 1..4, got {self.coding_rate}")
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_hz}")
        if self.preamble_symbols < 0:
            raise ValueError("preamble_symbols must be non-negative")


class AirtimeCalculator:
    """Computes LoRa symbol time and frame time-on-air."""

    def __init__(self, parameters: LoRaTransmissionParameters = LoRaTransmissionParameters()):
        self.parameters = parameters

    @property
    def symbol_time_s(self) -> float:
        """Duration of one LoRa symbol in seconds: ``2^SF / BW``."""
        sf = int(self.parameters.spreading_factor)
        return (2 ** sf) / self.parameters.bandwidth_hz

    def payload_symbols(self, payload_bytes: int) -> int:
        """Number of payload symbols for a PHY payload of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        if payload_bytes > MAX_PHY_PAYLOAD_BYTES:
            raise ValueError(
                f"payload_bytes {payload_bytes} exceeds LoRa maximum {MAX_PHY_PAYLOAD_BYTES}"
            )
        p = self.parameters
        sf = int(p.spreading_factor)
        de = 1 if p.low_data_rate_optimize else 0
        ih = 0 if p.explicit_header else 1
        crc = 1 if p.crc_enabled else 0
        numerator = 8 * payload_bytes - 4 * sf + 28 + 16 * crc - 20 * ih
        denominator = 4 * (sf - 2 * de)
        symbols = math.ceil(max(numerator, 0) / denominator) * (p.coding_rate + 4)
        return 8 + max(symbols, 0)

    def preamble_time_s(self) -> float:
        """Preamble duration: ``(n_preamble + 4.25) * T_symbol``."""
        return (self.parameters.preamble_symbols + 4.25) * self.symbol_time_s

    def time_on_air_s(self, payload_bytes: int) -> float:
        """Total frame duration (preamble + payload) in seconds."""
        return self.preamble_time_s() + self.payload_symbols(payload_bytes) * self.symbol_time_s

    def duty_cycle_wait_s(self, payload_bytes: int, duty_cycle: float) -> float:
        """Minimum silent period after sending a frame under ``duty_cycle``.

        A transmitter that just used ``T`` seconds of airtime must wait
        ``T * (1/duty_cycle - 1)`` before transmitting again, which is the
        "duty-cycle timer of 1 % time-on-air" retransmission rule of
        Sec. VII-A5.
        """
        if not 0 < duty_cycle <= 1:
            raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        return self.time_on_air_s(payload_bytes) * (1.0 / duty_cycle - 1.0)
