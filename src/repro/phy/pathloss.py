"""Path-loss models.

The paper's evaluation uses a log-distance path-loss model with shadowing and
a path-loss exponent of 2.32 (representative of sub-urban LoRa links, after
Petäjäjärvi et al.).  A free-space model is provided as a sanity baseline and
a deterministic disc model is available for unit tests that need exact
connectivity control.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

#: Reference path loss at 1 km / 868 MHz measured by Petäjäjärvi et al. (dB).
DEFAULT_REFERENCE_LOSS_DB = 128.95

#: Reference distance (metres) for :data:`DEFAULT_REFERENCE_LOSS_DB`.
DEFAULT_REFERENCE_DISTANCE_M = 1000.0

#: Path-loss exponent used in the paper's evaluation (Sec. VII-A5).
DEFAULT_PATH_LOSS_EXPONENT = 2.32

#: Shadowing standard deviation (dB) reported for the same measurement campaign.
DEFAULT_SHADOWING_SIGMA_DB = 7.8


class PathLossModel(ABC):
    """Maps a transmitter-receiver distance to received power."""

    @abstractmethod
    def path_loss_db(self, distance_m: float) -> float:
        """Deterministic (mean) path loss in dB at ``distance_m`` metres."""

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        distance_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Received power = TX power − path loss − (optional) shadowing."""
        loss = self.path_loss_db(distance_m)
        shadow = self.shadowing_db(rng)
        return tx_power_dbm - loss - shadow

    def shadowing_db(self, rng: Optional[np.random.Generator]) -> float:
        """Shadowing sample in dB; zero unless the model defines one and an RNG is given."""
        return 0.0

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Deterministic path loss for a whole array of distances at once.

        The generic fallback loops over :meth:`path_loss_db`; concrete models
        override it with a NumPy expression.  Vectorized transcendentals may
        differ from the scalar ``math`` results in the last ULP, so batch
        results feed analysis/pruning paths, never the bit-locked engine
        link computations (which recompute survivors scalar-exactly).
        """
        query = np.asarray(distances_m, dtype=float)
        return np.asarray([self.path_loss_db(float(d)) for d in query.ravel()]).reshape(
            query.shape
        )

    def received_power_dbm_batch(
        self, tx_power_dbm: float, distances_m: np.ndarray
    ) -> np.ndarray:
        """Vectorized mean received power (no shadowing) for an array of distances."""
        return tx_power_dbm - self.path_loss_db_batch(distances_m)


class FreeSpacePathLoss(PathLossModel):
    """Free-space (Friis) path loss, mainly a reference/sanity model."""

    def __init__(self, frequency_hz: float = 868e6) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz

    def path_loss_db(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        distance = max(distance_m, 1.0)
        return 20.0 * math.log10(distance) + 20.0 * math.log10(self.frequency_hz) - 147.55


class LogDistancePathLoss(PathLossModel):
    """Log-distance path loss with optional log-normal shadowing.

    ``PL(d) = PL(d0) + 10 * n * log10(d / d0) + X_sigma`` where ``X_sigma`` is
    a zero-mean Gaussian in dB.
    """

    def __init__(
        self,
        exponent: float = DEFAULT_PATH_LOSS_EXPONENT,
        reference_loss_db: float = DEFAULT_REFERENCE_LOSS_DB,
        reference_distance_m: float = DEFAULT_REFERENCE_DISTANCE_M,
        shadowing_sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB,
    ) -> None:
        if exponent <= 0:
            raise ValueError(f"path-loss exponent must be positive, got {exponent}")
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        self.exponent = exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance_m = reference_distance_m
        self.shadowing_sigma_db = shadowing_sigma_db

    def path_loss_db(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        distance = max(distance_m, 1.0)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        distances = np.maximum(np.asarray(distances_m, dtype=float), 1.0)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            distances / self.reference_distance_m
        )

    def shadowing_db(self, rng: Optional[np.random.Generator]) -> float:
        if rng is None or self.shadowing_sigma_db == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.shadowing_sigma_db))

    def range_for_sensitivity(self, tx_power_dbm: float, sensitivity_dbm: float) -> float:
        """Distance (m) at which the *mean* received power equals ``sensitivity_dbm``."""
        budget_db = tx_power_dbm - sensitivity_dbm - self.reference_loss_db
        return self.reference_distance_m * (10.0 ** (budget_db / (10.0 * self.exponent)))


class DiscPathLoss(PathLossModel):
    """A unit-disc model: zero loss inside ``radius_m``, infinite outside.

    This is not physical; it exists so protocol unit tests can construct exact
    contact patterns without worrying about dB budgets.
    """

    def __init__(self, radius_m: float, in_range_rssi_dbm: float = -60.0) -> None:
        if radius_m <= 0:
            raise ValueError(f"radius must be positive, got {radius_m}")
        self.radius_m = radius_m
        self.in_range_rssi_dbm = in_range_rssi_dbm

    def path_loss_db(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        return 0.0 if distance_m <= self.radius_m else float("inf")

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        distance_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        if distance_m <= self.radius_m:
            return self.in_range_rssi_dbm
        return float("-inf")

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances_m, dtype=float)
        return np.where(distances <= self.radius_m, 0.0, float("inf"))

    def received_power_dbm_batch(
        self, tx_power_dbm: float, distances_m: np.ndarray
    ) -> np.ndarray:
        distances = np.asarray(distances_m, dtype=float)
        return np.where(
            distances <= self.radius_m, self.in_range_rssi_dbm, float("-inf")
        )
