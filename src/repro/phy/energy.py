"""Radio states and energy accounting.

The paper's Sec. VI / VII-C discussion compares Modified Class-C (always
listening) against Queue-based Class-A (receive windows sized by backlog) in
terms of energy.  This module provides the current-draw bookkeeping needed for
that ablation: the device MAC reports how long it spent in each radio state
and the :class:`EnergyModel` converts that into charge/energy figures.

Default current draws correspond to an SX1276 at +14 dBm with a 3.3 V supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class RadioState(Enum):
    """Operating states of a LoRa radio."""

    SLEEP = "sleep"
    IDLE = "idle"
    RX = "rx"
    TX = "tx"


#: Typical SX1276 current draw per state, in milliamps.
DEFAULT_CURRENT_MA: Dict[RadioState, float] = {
    RadioState.SLEEP: 0.0002,
    RadioState.IDLE: 1.5,
    RadioState.RX: 11.5,
    RadioState.TX: 44.0,
}


@dataclass
class EnergyModel:
    """Accumulates time per radio state and converts it to energy.

    The model is intentionally integral-free: callers report state dwell
    times explicitly (``accumulate(state, seconds)``), which composes cleanly
    with the event-driven MAC where state transitions are already explicit.
    """

    supply_voltage_v: float = 3.3
    current_ma: Dict[RadioState, float] = field(default_factory=lambda: dict(DEFAULT_CURRENT_MA))
    _seconds: Dict[RadioState, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.supply_voltage_v <= 0:
            raise ValueError("supply voltage must be positive")
        for state in RadioState:
            self.current_ma.setdefault(state, DEFAULT_CURRENT_MA[state])
            self._seconds.setdefault(state, 0.0)

    def accumulate(self, state: RadioState, seconds: float) -> None:
        """Add ``seconds`` of dwell time in ``state``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._seconds[state] = self._seconds.get(state, 0.0) + seconds

    def seconds_in(self, state: RadioState) -> float:
        """Total time spent in ``state`` so far."""
        return self._seconds.get(state, 0.0)

    def charge_mah(self) -> float:
        """Total consumed charge in milliamp-hours."""
        total = 0.0
        for state, seconds in self._seconds.items():
            total += self.current_ma[state] * (seconds / 3600.0)
        return total

    def energy_joules(self) -> float:
        """Total consumed energy in joules."""
        total = 0.0
        for state, seconds in self._seconds.items():
            total += (self.current_ma[state] / 1000.0) * self.supply_voltage_v * seconds
        return total

    def reset(self) -> None:
        """Zero the accumulated dwell times."""
        for state in list(self._seconds):
            self._seconds[state] = 0.0
