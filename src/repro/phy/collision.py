"""Same-channel collision and capture model.

LoRa frames on the same channel and spreading factor interfere when their
airtime overlaps.  Following FLoRa / Bor et al., a frame survives a collision
only if it is stronger than every overlapping interferer by at least the
capture threshold (6 dB by default).  Frames on different spreading factors
are treated as orthogonal (the quasi-orthogonality approximation; adequate
here because the evaluation uses a single SF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.phy.constants import CAPTURE_THRESHOLD_DB, SpreadingFactor


@dataclass
class Transmission:
    """One frame on the air.

    ``rssi_by_receiver`` maps receiver identifiers to the power at which this
    frame arrives at that receiver; the collision check is therefore performed
    per receiver, as it is in reality (a frame may collide at one gateway and
    be captured at another).
    """

    sender: str
    start_time: float
    duration: float
    channel: int = 0
    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    rssi_by_receiver: Dict[str, float] = field(default_factory=dict)
    payload: object = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")

    @property
    def end_time(self) -> float:
        """Time at which the frame stops occupying the channel."""
        return self.start_time + self.duration

    def overlaps(self, other: "Transmission") -> bool:
        """True when the two frames overlap in time on the same channel and SF."""
        if self.channel != other.channel:
            return False
        if self.spreading_factor != other.spreading_factor:
            return False
        return self.start_time < other.end_time and other.start_time < self.end_time


class CollisionModel:
    """Registers in-flight transmissions and resolves per-receiver capture."""

    def __init__(self, capture_threshold_db: float = CAPTURE_THRESHOLD_DB) -> None:
        if capture_threshold_db < 0:
            raise ValueError("capture threshold must be non-negative")
        self.capture_threshold_db = capture_threshold_db
        self._active: List[Transmission] = []

    def __len__(self) -> int:
        return len(self._active)

    @property
    def active_transmissions(self) -> List[Transmission]:
        """A copy of the transmissions currently registered."""
        return list(self._active)

    def add(self, transmission: Transmission) -> None:
        """Register a new frame on the air."""
        self._active.append(transmission)

    def expire(self, now: float) -> None:
        """Drop transmissions that ended strictly before ``now``."""
        self._active = [t for t in self._active if t.end_time > now]

    def interferers(self, transmission: Transmission) -> List[Transmission]:
        """All registered frames that overlap ``transmission`` (excluding itself)."""
        return [t for t in self._active if t is not transmission and t.overlaps(transmission)]

    def is_received(self, transmission: Transmission, receiver: str) -> bool:
        """Decide whether ``receiver`` decodes ``transmission`` despite interference.

        The frame is decoded when the receiver hears it (it has an RSSI entry)
        and the frame beats every overlapping interferer heard by the same
        receiver by at least the capture threshold.
        """
        rssi = transmission.rssi_by_receiver.get(receiver)
        if rssi is None or rssi == float("-inf"):
            return False
        for other in self.interferers(transmission):
            other_rssi = other.rssi_by_receiver.get(receiver)
            if other_rssi is None or other_rssi == float("-inf"):
                continue
            if rssi - other_rssi < self.capture_threshold_db:
                return False
        return True

    def survivors(self, receiver: str, now: Optional[float] = None) -> List[Transmission]:
        """Transmissions decodable at ``receiver`` among those currently registered."""
        if now is not None:
            self.expire(now)
        return [t for t in self._active if self.is_received(t, receiver)]
