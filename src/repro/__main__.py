"""``python -m repro`` — the no-install route to the ``repro`` CLI.

Equivalent to the ``repro`` console script installed by ``pip install -e .``;
from a source checkout run it as ``PYTHONPATH=src python -m repro …``.
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
