"""Content-addressed, crash-safe storage for finished :class:`RunMetrics`.

:class:`ResultStore` is the campaign engine's system of record: every
finished run is pickled under its spec's cache key — a digest of the full
scenario configuration plus the reporting identity (see
:meth:`repro.experiments.parallel.RunSpec.cache_key`) — so any executor,
worker process or host that shares the store directory resolves the same
configuration to the same entry.  Three properties make it safe for
million-run campaigns:

* **Atomic writes.**  Entries are written to a unique temporary file and
  published with :func:`os.replace`, so concurrent writers (several worker
  hosts finishing the same spec, a worker dying mid-write) can never leave a
  half-written entry behind under the final name.
* **Self-healing reads.**  A corrupt entry (truncated pickle, wrong type) is
  unlinked on load failure so the next execution recomputes and rewrites it,
  instead of re-reading and re-discarding the damaged bytes forever.
* **Streaming aggregation.**  :meth:`ResultStore.iter_metrics` and
  :meth:`ResultStore.summarize` stream entries one at a time through a
  constant-size :class:`MetricsAccumulator`, so summarising a grid of
  millions of runs never holds more than one :class:`RunMetrics` in memory.

The on-disk layout shards entries into 256 subdirectories keyed by the first
byte of the SHA-256 of the cache key (``<root>/<xx>/<key>.pkl``), keeping
directory listings bounded at campaign scale.  The flat pre-campaign-engine
layout (``<root>/<key>.pkl``) is still read — archived sweep caches keep
working — while all new writes use the sharded layout.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from repro.analysis.metrics import RunMetrics


def _shard_name(key: str) -> str:
    """The 2-hex-character shard directory of a cache key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:2]


class ResultStore:
    """A directory of finished :class:`RunMetrics`, keyed by cache key.

    The store is deliberately dumb about *what* a key means — the executor
    derives keys from configuration digests — so it can also archive results
    produced on other hosts via the work-queue spool.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """The sharded on-disk location of ``key`` (where writes go)."""
        return self.root / _shard_name(key) / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        # The flat layout used before the store was content-sharded.
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file() or self._legacy_path(key).is_file()

    def load(self, key: str) -> Optional[RunMetrics]:
        """The stored metrics for ``key``, or ``None`` when absent.

        A damaged entry — unreadable pickle or a pickle of the wrong type —
        is deleted before returning ``None``: leaving it in place would make
        every future execution re-read and re-discard it, silently turning a
        one-off truncation into a permanent cache miss.
        """
        for path in (self.path_for(key), self._legacy_path(key)):
            if not path.is_file():
                continue
            try:
                with path.open("rb") as handle:
                    metrics = handle.read()
                metrics = pickle.loads(metrics)
            except (pickle.UnpicklingError, EOFError, ValueError, IndexError):
                self._discard_damaged(path)
                continue
            except OSError:
                # Transient read failure (permissions, racing unlink): miss
                # without destroying what may be a healthy entry.
                continue
            if not isinstance(metrics, RunMetrics):
                self._discard_damaged(path)
                continue
            return metrics
        return None

    @staticmethod
    def _discard_damaged(path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - racing unlink/permissions
            pass

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def store(self, key: str, metrics: RunMetrics) -> Path:
        """Atomically publish ``metrics`` under ``key`` and return its path.

        Safe against concurrent writers: each write goes to a unique
        temporary file in the destination directory and lands with one
        :func:`os.replace`; last writer wins with a complete entry either
        way (equal configurations produce equal metrics, so the race is
        benign).
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                pickle.dump(metrics, tmp)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------ #
    # Enumeration and streaming aggregation
    # ------------------------------------------------------------------ #
    def iter_keys(self) -> Iterator[str]:
        """Every stored cache key (sharded and legacy entries), streamed."""
        if not self.root.is_dir():
            return
        for flat in sorted(self.root.glob("*.pkl")):
            yield flat.stem
        for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for entry in sorted(shard.glob("*.pkl")):
                yield entry.stem

    def iter_metrics(
        self, keys: Optional[Iterable[str]] = None
    ) -> Iterator[RunMetrics]:
        """Stream stored metrics one entry at a time (skipping misses)."""
        for key in keys if keys is not None else self.iter_keys():
            metrics = self.load(key)
            if metrics is not None:
                yield metrics

    def summarize(self, keys: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        """A constant-memory aggregate over (a subset of) the store."""
        accumulator = MetricsAccumulator()
        for metrics in self.iter_metrics(keys):
            accumulator.add(metrics)
        return accumulator.summary()


@dataclass
class MetricsAccumulator:
    """Streaming (constant-size) aggregation of many :class:`RunMetrics`.

    Holds only running sums and counts — never the per-delivery arrays — so
    aggregating a million-run campaign costs the same memory as aggregating
    one run.  Delay and hop means are weighted by delivery (every delivered
    message counts once, matching a concatenation of the per-run arrays).
    """

    runs: int = 0
    messages_generated: int = 0
    messages_delivered: int = 0
    messages_dropped_full: int = 0
    messages_rejected_duplicate: int = 0
    messages_expired_ttl: int = 0
    delay_sum_s: float = 0.0
    delay_count: int = 0
    hop_sum: int = 0
    hop_count: int = 0
    wall_time_s: float = 0.0

    def add(self, metrics: RunMetrics, wall_time_s: float = 0.0) -> None:
        """Fold one run into the aggregate."""
        self.runs += 1
        self.messages_generated += metrics.messages_generated
        self.messages_delivered += metrics.messages_delivered
        self.messages_dropped_full += metrics.messages_dropped_full
        self.messages_rejected_duplicate += metrics.messages_rejected_duplicate
        self.messages_expired_ttl += metrics.messages_expired_ttl
        self.delay_sum_s += float(sum(metrics.delays_s))
        self.delay_count += len(metrics.delays_s)
        self.hop_sum += int(sum(metrics.hop_counts))
        self.hop_count += len(metrics.hop_counts)
        self.wall_time_s += wall_time_s

    def summary(self) -> Dict[str, Any]:
        """The aggregate as a JSON-ready mapping."""
        return {
            "runs": self.runs,
            "messages_generated": self.messages_generated,
            "messages_delivered": self.messages_delivered,
            "messages_dropped_full": self.messages_dropped_full,
            "messages_rejected_duplicate": self.messages_rejected_duplicate,
            "messages_expired_ttl": self.messages_expired_ttl,
            "delivery_ratio": (
                self.messages_delivered / self.messages_generated
                if self.messages_generated
                else 0.0
            ),
            "mean_delay_s": (
                self.delay_sum_s / self.delay_count if self.delay_count else None
            ),
            "mean_hop_count": (
                self.hop_sum / self.hop_count if self.hop_count else None
            ),
            "wall_time_s": self.wall_time_s,
        }
