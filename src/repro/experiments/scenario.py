"""Scenario construction: from a :class:`ScenarioConfig` to simulation objects.

Builds the mobility traces (through the pluggable model registry of
:mod:`repro.mobility.models`; the paper's synthetic London bus network by
default), one :class:`EndDevice` per mobile node, the gateway deployment
(uniform grid as in the paper, or uniform-random for the placement ablation),
and the time-varying topology they all live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.mac.device import EndDevice
from repro.mac.device_classes import (
    ClassADevice,
    ClassCDevice,
    DeviceClass,
    ModifiedClassC,
    QueueBasedClassA,
)
from repro.mac.gateway import Gateway
from repro.mobility.geometry import BoundingBox, Point, grid_positions
from repro.mobility.models import build_mobility
from repro.mobility.trace import MobilityTrace
from repro.network.node import DeviceNode, SinkNode
from repro.network.topology import TimeVaryingTopology, TopologyConfig
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import LogDistancePathLoss
from repro.mac.queueing import make_buffer_policy
from repro.radio.sf_policy import RadioAssignment, allocate_radio
from repro.routing import ForwardingScheme, build_scheme
from repro.sim.randomness import RandomStreams

_DEVICE_CLASS_REGISTRY = {
    "class-a": ClassADevice,
    "class-c": ClassCDevice,
    "modified-class-c": ModifiedClassC,
    "queue-based-class-a": QueueBasedClassA,
}


def device_class_names() -> List[str]:
    """The registered device-class names (sorted)."""
    return sorted(_DEVICE_CLASS_REGISTRY)


def make_device_class(name: str) -> DeviceClass:
    """Instantiate a device class by name."""
    try:
        return _DEVICE_CLASS_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown device class {name!r}; available: {sorted(_DEVICE_CLASS_REGISTRY)}"
        ) from None


@dataclass
class BuiltScenario:
    """Everything the runner needs for one simulation."""

    config: ScenarioConfig
    streams: RandomStreams
    bounding_box: BoundingBox
    traces: Dict[str, MobilityTrace]
    devices: Dict[str, EndDevice]
    gateways: Dict[str, Gateway]
    topology: TimeVaryingTopology
    scheme: ForwardingScheme
    capacity_model: LinkCapacityModel
    radio_assignments: Dict[str, RadioAssignment]

    @property
    def num_devices(self) -> int:
        """Number of end-devices (buses) in the scenario."""
        return len(self.devices)


def _gateway_positions(
    config: ScenarioConfig, box: BoundingBox, rng: np.random.Generator
) -> List[Point]:
    if config.gateway_placement == "grid":
        return grid_positions(box, config.num_gateways)
    return [
        Point(
            float(rng.uniform(box.min_x, box.max_x)),
            float(rng.uniform(box.min_y, box.max_y)),
        )
        for _ in range(config.num_gateways)
    ]


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Construct mobility, devices, gateways and topology for ``config``."""
    streams = RandomStreams(config.seed)

    # Mobility: whichever model the scenario names (london-bus by default).
    mobility_build = build_mobility(config.mobility_spec(), streams.stream("mobility"))
    box = mobility_build.bounding_box
    traces: Dict[str, MobilityTrace] = mobility_build.traces
    device_nodes: List[DeviceNode] = [
        DeviceNode(device_id, trace) for device_id, trace in traces.items()
    ]

    # Gateways.
    gateway_rng = streams.stream("gateway-placement")
    gateway_positions = _gateway_positions(config, box, gateway_rng)
    gateways: Dict[str, Gateway] = {}
    sink_nodes: List[SinkNode] = []
    for index, position in enumerate(gateway_positions):
        gateway_id = f"gw-{index:03d}"
        gateways[gateway_id] = Gateway(gateway_id, position)
        sink_nodes.append(SinkNode(gateway_id, position))

    # Radio plan: one (SF, channel) assignment per device.  The default
    # fixed-sf7 policy touches neither positions nor randomness, so both are
    # only materialised for the policy that needs them.
    radio_assignments = allocate_radio(
        config.radio,
        device_ids=list(traces),
        device_positions=(
            {
                device_id: trace.position_at(trace.start_time)
                for device_id, trace in traces.items()
            }
            if config.radio.sf_policy == "distance-based"
            else None
        ),
        gateway_positions=gateway_positions,
        gateway_range_m=config.gateway_range_m,
        rng=(
            streams.stream("sf-allocation")
            if config.radio.sf_policy == "random"
            else None
        ),
    )
    # Buffer management: every device gets its own policy instance (policies
    # may hold state) and the routing section's capacity override, if any.
    buffer = config.routing.buffer
    devices: Dict[str, EndDevice] = {
        device_id: EndDevice(
            device_id,
            config=config.device,
            device_class=make_device_class(config.device_class),
            spreading_factor=radio_assignments[device_id].spreading_factor,
            channel=radio_assignments[device_id].channel,
            queue_policy=make_buffer_policy(buffer.policy, buffer.ttl_s),
            queue_capacity=buffer.capacity if buffer.capacity > 0 else None,
        )
        for device_id in traces
    }

    # Radio models and topology.
    capacity_model = LinkCapacityModel.for_spreading_factor()
    topology = TimeVaryingTopology(
        devices=device_nodes,
        sinks=sink_nodes,
        config=TopologyConfig(
            gateway_range_m=config.gateway_range_m,
            device_range_m=config.device_range_m,
            shadowing_enabled=config.shadowing,
        ),
        path_loss=LogDistancePathLoss(),
        capacity_model=capacity_model,
        rng=streams.stream("shadowing"),
        sf_by_node={
            device_id: assignment.spreading_factor
            for device_id, assignment in radio_assignments.items()
        },
    )

    scheme = build_scheme(config.scheme, config.routing)
    return BuiltScenario(
        config=config,
        streams=streams,
        bounding_box=box,
        traces=traces,
        devices=devices,
        gateways=gateways,
        topology=topology,
        scheme=scheme,
        capacity_model=capacity_model,
        radio_assignments=radio_assignments,
    )
