"""Engine-core benchmark ladder, shared by ``repro bench`` and ``benchmarks/``.

The ladder is the full-scale Sec. VII-A urban scenario at quarter/half/full
fleet (240/480/960 buses, density-preserving shrink), one simulated hour,
timed on the *engine only*: scenario construction is identical on both paths
and would dilute the object-vs-array ratio, so every round builds a fresh
scenario outside the timed region (engines mutate device state, so rounds
cannot share one).

Wall-clock comparisons use best-of-N so scheduler noise cannot flip a floor
assertion; both engines produce bit-identical RunMetrics (tests/engine/), so
time is the only axis being measured.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple, Type

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import get_preset
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario

#: The two engine implementations under comparison.
ENGINES: Dict[str, Type] = {"object": MLoRaSimulation, "array": ArrayMLoRaSimulation}

#: Fleet fractions of the 960-bus urban-full scenario forming the ladder.
LADDER_FRACTIONS: Tuple[float, ...] = (0.25, 0.5, 1.0)


def fleet_config(
    fraction: float, scheme: str = "no-routing", duration_s: float = 3600.0
) -> ScenarioConfig:
    """The urban-full scenario shrunk density-preservingly to ``fraction``
    of the 960-bus fleet, one simulated hour by default."""
    config = get_preset("urban-full").config
    if fraction < 1.0:
        config = config.scaled(fraction)
    return replace(config, duration_s=duration_s, scheme=scheme)


def engine_seconds(config: ScenarioConfig, engine_name: str, rounds: int) -> float:
    """Best-of-``rounds`` engine wall-clock for ``config`` (build untimed)."""
    best, _ = _timed_point(config, engine_name, rounds)
    return best


def _timed_point(
    config: ScenarioConfig, engine_name: str, rounds: int
) -> Tuple[float, int]:
    if rounds < 1:
        raise ValueError(f"rounds must be at least 1, got {rounds}")
    engine = ENGINES[engine_name]
    best = float("inf")
    num_devices = 0
    for _ in range(rounds):
        scenario = build_scenario(config)
        num_devices = scenario.num_devices
        start = time.perf_counter()
        engine(scenario).run()
        best = min(best, time.perf_counter() - start)
    return best, num_devices


def run_ladder(
    scheme: str = "no-routing",
    fractions: Sequence[float] = LADDER_FRACTIONS,
    rounds: int = 3,
) -> List[Dict[str, float]]:
    """Time object vs array at every ladder point; one row per point."""
    rows: List[Dict[str, float]] = []
    for fraction in fractions:
        config = fleet_config(fraction, scheme=scheme)
        object_s, num_devices = _timed_point(config, "object", rounds)
        array_s, _ = _timed_point(config, "array", rounds)
        rows.append(
            {
                "fraction": fraction,
                "buses": num_devices,
                "object_s": object_s,
                "array_s": array_s,
                "speedup": object_s / array_s,
            }
        )
    return rows


def format_ladder_table(rows: Sequence[Dict[str, float]], scheme: str) -> str:
    """Render ladder rows as the aligned table ``repro bench`` prints."""
    lines = [
        f"engine-core ladder — urban-full fleet, 1 h simulated, scheme={scheme}",
        f"{'buses':>6}  {'object (s)':>11}  {'array (s)':>10}  {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{int(row['buses']):>6}  {row['object_s']:>11.2f}  "
            f"{row['array_s']:>10.2f}  {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)
