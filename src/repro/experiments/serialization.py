"""Lossless :class:`ScenarioConfig` ⇄ JSON/TOML serialization.

Scenarios are shareable files: ``save_scenario`` writes a configuration to
JSON or TOML (chosen by file suffix) and ``load_scenario`` reads it back into
a :class:`ScenarioConfig` that compares equal to the original — including
field *types*, so the SHA-256 configuration digest that keys the
:class:`~repro.experiments.parallel.SweepExecutor` on-disk cache is unchanged
by a round trip.  ``tests/experiments/test_serialization.py`` pins both
properties.

TOML reading uses the standard-library :mod:`tomllib` (Python ≥ 3.11); TOML
writing is a small purpose-built emitter because the environment ships no
TOML writer.  Both formats carry a ``schema_version`` key so future layout
changes can be detected instead of silently misread.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - older interpreters
    tomllib = None  # type: ignore[assignment]

from repro.engine.config import EngineConfig
from repro.experiments.config import ScenarioConfig
from repro.mac.device import DeviceConfig
from repro.mobility.config import MobilityConfig
from repro.radio.config import RadioConfig
from repro.routing.config import BufferConfig, RoutingConfig

#: Nested dataclass tables inside a scenario mapping.
_NESTED_TABLES = {
    "device": DeviceConfig,
    "radio": RadioConfig,
    "mobility": MobilityConfig,
    "routing": RoutingConfig,
    "engine": EngineConfig,
}

#: Dataclass sub-tables nested one level deeper, by (owner table, field).
_NESTED_SUBTABLES = {("routing", "buffer"): BufferConfig}

#: Bump when the serialized field layout changes incompatibly.
SCENARIO_SCHEMA_VERSION = 1

_SCHEMA_KEY = "schema_version"


class ScenarioFormatError(ValueError):
    """A scenario file or mapping does not describe a valid ScenarioConfig."""


# --------------------------------------------------------------------- #
# Dict round trip
# --------------------------------------------------------------------- #
def scenario_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """A JSON/TOML-ready mapping of every field of ``config``."""
    data: Dict[str, Any] = {_SCHEMA_KEY: SCENARIO_SCHEMA_VERSION}
    data.update(dataclasses.asdict(config))
    return data


def _coerce_field(owner: str, field: dataclasses.Field, value: Any) -> Any:
    """Validate ``value`` against the field's annotated scalar type.

    The one lossy spot in a text round trip is numeric typing (TOML and JSON
    both render ``1.0`` indistinguishably from ``1`` in some writers), so
    integers are accepted for float fields and promoted; everything else must
    match exactly.  Booleans are rejected where ints are expected — ``True``
    would otherwise silently pass an ``int`` check.
    """
    kind = field.type if isinstance(field.type, str) else getattr(field.type, "__name__", "")
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioFormatError(f"{owner}.{field.name} must be a number, got {value!r}")
        return float(value)
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioFormatError(f"{owner}.{field.name} must be an integer, got {value!r}")
        return int(value)
    if kind == "bool":
        if not isinstance(value, bool):
            raise ScenarioFormatError(f"{owner}.{field.name} must be a boolean, got {value!r}")
        return value
    if kind == "str":
        if not isinstance(value, str):
            raise ScenarioFormatError(f"{owner}.{field.name} must be a string, got {value!r}")
        return value
    raise ScenarioFormatError(f"{owner}.{field.name} has unsupported type {kind!r}")


def _build_dataclass(cls: type, owner: str, data: Mapping[str, Any]) -> Any:
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(fields)
    if unknown:
        raise ScenarioFormatError(
            f"unknown {owner} field(s): {sorted(unknown)}; expected a subset of {sorted(fields)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        field = fields[name]
        if owner == "scenario" and name in _NESTED_TABLES:
            if not isinstance(value, Mapping):
                raise ScenarioFormatError(f"{owner}.{name} must be a table/object, got {value!r}")
            kwargs[name] = _build_dataclass(_NESTED_TABLES[name], name, value)
        elif (owner, name) in _NESTED_SUBTABLES:
            if not isinstance(value, Mapping):
                raise ScenarioFormatError(f"{owner}.{name} must be a table/object, got {value!r}")
            kwargs[name] = _build_dataclass(
                _NESTED_SUBTABLES[(owner, name)], f"{owner}.{name}", value
            )
        else:
            kwargs[name] = _coerce_field(owner, field, value)
    try:
        return cls(**kwargs)
    except ValueError as exc:
        raise ScenarioFormatError(f"invalid {owner} configuration: {exc}") from exc


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from :func:`scenario_to_dict` output.

    Missing fields take their dataclass defaults (so hand-written scenario
    files only need to state what differs); unknown fields are an error so a
    typo cannot silently fall back to a default.
    """
    if not isinstance(data, Mapping):
        raise ScenarioFormatError(f"scenario must be a mapping, got {type(data).__name__}")
    payload = dict(data)
    version = payload.pop(_SCHEMA_KEY, SCENARIO_SCHEMA_VERSION)
    if version != SCENARIO_SCHEMA_VERSION:
        raise ScenarioFormatError(
            f"unsupported scenario {_SCHEMA_KEY} {version!r} "
            f"(this build reads version {SCENARIO_SCHEMA_VERSION})"
        )
    return _build_dataclass(ScenarioConfig, "scenario", payload)


# --------------------------------------------------------------------- #
# JSON
# --------------------------------------------------------------------- #
def scenario_to_json(config: ScenarioConfig) -> str:
    """The configuration as pretty-printed JSON text."""
    return json.dumps(scenario_to_dict(config), indent=2, sort_keys=False) + "\n"


def scenario_from_json(text: str) -> ScenarioConfig:
    """Parse JSON text produced by :func:`scenario_to_json` (or hand-written)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioFormatError(f"invalid scenario JSON: {exc}") from exc
    return scenario_from_dict(data)


# --------------------------------------------------------------------- #
# TOML
# --------------------------------------------------------------------- #
def _toml_scalar(owner: str, key: str, value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr() keeps full precision; TOML floats require a decimal point or
        # exponent, which repr of a Python float always includes (inf/nan are
        # valid TOML tokens too).
        return repr(value)
    if isinstance(value, str):
        # JSON escaping of quotes and control characters below 0x20 matches
        # TOML basic strings; ensure_ascii=False keeps non-ASCII text raw,
        # since JSON's \uXXXX surrogate pairs for astral characters are
        # invalid TOML.  U+007F (DEL) is the one control character TOML
        # forbids that json.dumps leaves raw.
        return json.dumps(value, ensure_ascii=False).replace("\x7f", "\\u007F")
    raise ScenarioFormatError(f"{owner}.{key} is not TOML-serializable: {value!r}")


def scenario_to_toml(config: ScenarioConfig) -> str:
    """The configuration as TOML text (scalars first, then the nested tables).

    Dataclass-valued fields inside a table (the routing ``buffer`` section)
    become dotted sub-tables (``[routing.buffer]``), emitted after their
    owner's scalars so the TOML table structure stays valid.
    """
    data = scenario_to_dict(config)
    tables = {name: data.pop(name) for name in _NESTED_TABLES}
    lines = [f"{key} = {_toml_scalar('scenario', key, value)}" for key, value in data.items()]
    for name, table in tables.items():
        subtables = {
            key: value for key, value in table.items() if isinstance(value, dict)
        }
        lines.append("")
        lines.append(f"[{name}]")
        lines.extend(
            f"{key} = {_toml_scalar(name, key, value)}"
            for key, value in table.items()
            if key not in subtables
        )
        for sub_name, sub_table in subtables.items():
            lines.append("")
            lines.append(f"[{name}.{sub_name}]")
            lines.extend(
                f"{key} = {_toml_scalar(f'{name}.{sub_name}', key, value)}"
                for key, value in sub_table.items()
            )
    return "\n".join(lines) + "\n"


def scenario_from_toml(text: str) -> ScenarioConfig:
    """Parse TOML text produced by :func:`scenario_to_toml` (or hand-written)."""
    if tomllib is None:  # pragma: no cover - Python < 3.11 only
        raise ScenarioFormatError(
            "reading TOML scenarios requires Python >= 3.11 (stdlib tomllib); "
            "use the JSON format instead"
        )
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioFormatError(f"invalid scenario TOML: {exc}") from exc
    return scenario_from_dict(data)


# --------------------------------------------------------------------- #
# Files
# --------------------------------------------------------------------- #
_WRITERS = {".json": scenario_to_json, ".toml": scenario_to_toml}
_READERS = {".json": scenario_from_json, ".toml": scenario_from_toml}


def _format_for(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix not in _WRITERS:
        raise ScenarioFormatError(
            f"unsupported scenario file suffix {suffix!r} for {path}; use .json or .toml"
        )
    return suffix


def save_scenario(config: ScenarioConfig, path: Union[str, Path]) -> Path:
    """Write ``config`` to ``path`` as JSON or TOML (chosen by suffix)."""
    target = Path(path)
    text = _WRITERS[_format_for(target)](config)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


def load_scenario(path: Union[str, Path]) -> ScenarioConfig:
    """Read a scenario file written by :func:`save_scenario` (or by hand)."""
    source = Path(path)
    reader = _READERS[_format_for(source)]
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioFormatError(f"cannot read scenario file {source}: {exc}") from exc
    return reader(text)
