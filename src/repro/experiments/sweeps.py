"""Parameter sweeps over gateway density, device range and schemes.

Sweeps are batches of independent :class:`RunSpec`s executed by a
:class:`SweepExecutor` (over any execution backend — serial, process-pool or
the multi-host work-queue — and/or cache-served; the results are identical
in every mode).  Aggregation is streaming: runs are folded into the
:class:`SweepResult` as they complete, so a campaign-scale grid never holds
more than the per-key summaries in memory, and a failure after the retry
budget raises only once every completed sibling has been cached.  Base
configurations usually come from the preset catalogue in
:mod:`repro.experiments.registry`; the ``repro sweep`` CLI command drives
the same entry points from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor, sweep_specs

#: The gateway counts the paper sweeps in Figs. 8, 9, 12 and 13.
PAPER_GATEWAY_COUNTS: Tuple[int, ...] = (40, 50, 60, 70, 80, 90, 100)

#: The three schemes the paper evaluates (Sec. VII-A7).
PAPER_SCHEMES: Tuple[str, ...] = ("no-routing", "rca-etx", "robc")

#: Device-to-device communication ranges for urban and rural settings.
URBAN_DEVICE_RANGE_M = 500.0
RURAL_DEVICE_RANGE_M = 1000.0


@dataclass
class SweepResult:
    """All runs of a sweep, indexed by (scheme, gateway count, device range)."""

    runs: Dict[Tuple[str, int, float], RunMetrics] = field(default_factory=dict)

    def add(self, metrics: RunMetrics) -> None:
        """Register a finished run."""
        key = (metrics.scheme, metrics.num_gateways, metrics.device_range_m)
        self.runs[key] = metrics

    def get(self, scheme: str, num_gateways: int, device_range_m: float) -> RunMetrics:
        """The metrics of one run; raises ``KeyError`` when missing."""
        return self.runs[(scheme, num_gateways, device_range_m)]

    def schemes(self) -> List[str]:
        """Schemes present in the sweep (sorted for stable reporting)."""
        return sorted({scheme for scheme, _, _ in self.runs})

    def gateway_counts(self) -> List[int]:
        """Gateway counts present in the sweep."""
        return sorted({count for _, count, _ in self.runs})

    def device_ranges(self) -> List[float]:
        """Device-to-device ranges present in the sweep."""
        return sorted({rng for _, _, rng in self.runs})

    def series(
        self, scheme: str, device_range_m: float, metric: str
    ) -> List[Tuple[int, float]]:
        """A (gateway count, metric value) series for one scheme and range."""
        points: List[Tuple[int, float]] = []
        for count in self.gateway_counts():
            key = (scheme, count, device_range_m)
            if key not in self.runs:
                continue
            points.append((count, float(getattr(self.runs[key], metric))))
        return points


def run_gateway_sweep(
    base_config: ScenarioConfig,
    gateway_counts: Sequence[int] = PAPER_GATEWAY_COUNTS,
    schemes: Sequence[str] = PAPER_SCHEMES,
    device_ranges_m: Sequence[float] = (URBAN_DEVICE_RANGE_M,),
    gateway_scale: float = 1.0,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Run every (scheme, gateway count, device range) combination.

    ``gateway_scale`` maps the paper's nominal gateway counts onto the scaled
    scenario (e.g. a 0.25-scale area uses a quarter of the gateways while the
    reported x-axis keeps the paper's labels).  The metrics keep the *nominal*
    count so downstream tables line up with the paper's figures.

    ``executor`` controls how the runs execute (worker processes, on-disk
    caching); the default is a serial in-process :class:`SweepExecutor`.
    Results are independent of the executor — every run is fully determined
    by its configuration.
    """
    specs = sweep_specs(
        base_config, gateway_counts, schemes, device_ranges_m, gateway_scale
    )
    executor = executor or SweepExecutor()
    result = SweepResult()
    # Streaming: fold each run in as it completes (the SweepResult index is
    # order-insensitive), so finished metrics never accumulate in a list.
    for metrics in executor.iter_run_metrics(specs):
        result.add(metrics)
    return result


def run_replications(
    config: ScenarioConfig,
    seeds: Iterable[int],
    executor: Optional[SweepExecutor] = None,
) -> List[RunMetrics]:
    """Run the same configuration under several seeds (for confidence intervals)."""
    executor = executor or SweepExecutor()
    specs = [
        RunSpec(config=config.with_seed(seed), replicate=index)
        for index, seed in enumerate(seeds)
    ]
    return executor.run_metrics(specs)
