"""Parameter sweeps over gateway density, device range and schemes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.metrics import RunMetrics
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

#: The gateway counts the paper sweeps in Figs. 8, 9, 12 and 13.
PAPER_GATEWAY_COUNTS: Tuple[int, ...] = (40, 50, 60, 70, 80, 90, 100)

#: The three schemes the paper evaluates (Sec. VII-A7).
PAPER_SCHEMES: Tuple[str, ...] = ("no-routing", "rca-etx", "robc")

#: Device-to-device communication ranges for urban and rural settings.
URBAN_DEVICE_RANGE_M = 500.0
RURAL_DEVICE_RANGE_M = 1000.0


@dataclass
class SweepResult:
    """All runs of a sweep, indexed by (scheme, gateway count, device range)."""

    runs: Dict[Tuple[str, int, float], RunMetrics] = field(default_factory=dict)

    def add(self, metrics: RunMetrics) -> None:
        """Register a finished run."""
        key = (metrics.scheme, metrics.num_gateways, metrics.device_range_m)
        self.runs[key] = metrics

    def get(self, scheme: str, num_gateways: int, device_range_m: float) -> RunMetrics:
        """The metrics of one run; raises ``KeyError`` when missing."""
        return self.runs[(scheme, num_gateways, device_range_m)]

    def schemes(self) -> List[str]:
        """Schemes present in the sweep (sorted for stable reporting)."""
        return sorted({scheme for scheme, _, _ in self.runs})

    def gateway_counts(self) -> List[int]:
        """Gateway counts present in the sweep."""
        return sorted({count for _, count, _ in self.runs})

    def device_ranges(self) -> List[float]:
        """Device-to-device ranges present in the sweep."""
        return sorted({rng for _, _, rng in self.runs})

    def series(
        self, scheme: str, device_range_m: float, metric: str
    ) -> List[Tuple[int, float]]:
        """A (gateway count, metric value) series for one scheme and range."""
        points: List[Tuple[int, float]] = []
        for count in self.gateway_counts():
            key = (scheme, count, device_range_m)
            if key not in self.runs:
                continue
            points.append((count, float(getattr(self.runs[key], metric))))
        return points


def run_gateway_sweep(
    base_config: ScenarioConfig,
    gateway_counts: Sequence[int] = PAPER_GATEWAY_COUNTS,
    schemes: Sequence[str] = PAPER_SCHEMES,
    device_ranges_m: Sequence[float] = (URBAN_DEVICE_RANGE_M,),
    gateway_scale: float = 1.0,
) -> SweepResult:
    """Run every (scheme, gateway count, device range) combination.

    ``gateway_scale`` maps the paper's nominal gateway counts onto the scaled
    scenario (e.g. a 0.25-scale area uses a quarter of the gateways while the
    reported x-axis keeps the paper's labels).  The metrics keep the *nominal*
    count so downstream tables line up with the paper's figures.
    """
    if gateway_scale <= 0:
        raise ValueError("gateway_scale must be positive")
    result = SweepResult()
    for device_range in device_ranges_m:
        for nominal_count in gateway_counts:
            actual_count = max(1, round(nominal_count * gateway_scale))
            for scheme in schemes:
                config = (
                    base_config.with_scheme(scheme)
                    .with_gateways(actual_count)
                    .with_device_range(device_range)
                )
                metrics = run_scenario(config)
                metrics.num_gateways = nominal_count
                result.add(metrics)
    return result


def run_replications(config: ScenarioConfig, seeds: Iterable[int]) -> List[RunMetrics]:
    """Run the same configuration under several seeds (for confidence intervals)."""
    return [run_scenario(config.with_seed(seed)) for seed in seeds]
