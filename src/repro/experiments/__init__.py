"""Experiment harness.

* :mod:`repro.experiments.config` — scenario configuration (area, gateways,
  mobility, scheme, device class) with a single ``scale`` knob.
* :mod:`repro.experiments.scenario` — builds devices, gateways and the
  time-varying topology from a configuration.
* :mod:`repro.experiments.runner` — the event-driven MLoRa-SS simulation
  engine that executes one run and returns :class:`repro.analysis.RunMetrics`.
* :mod:`repro.experiments.parallel` — the :class:`SweepExecutor` campaign
  engine: batches of independent runs over a pluggable execution backend,
  with deterministic per-run seed derivation, store-on-completion caching,
  per-run retry and per-spec failure outcomes.
* :mod:`repro.experiments.backends` — the execution backends (``serial``,
  ``process-pool``, multi-host ``work-queue``) and their open registry.
* :mod:`repro.experiments.store` — the content-addressed
  :class:`ResultStore` of finished :class:`RunMetrics` with streaming
  aggregation.
* :mod:`repro.experiments.service` — the ``repro serve`` asyncio results
  service (submit a scenario or digest, get cached metrics or a job handle).
* :mod:`repro.experiments.sweeps` — parameter sweeps over gateway density,
  device range and schemes.
* :mod:`repro.experiments.figures` — one entry point per paper figure
  (Figs. 7–13) plus the ablations listed in DESIGN.md.
* :mod:`repro.experiments.registry` — named scenario presets (urban, rural,
  ablation points, synthetic variants) and per-figure sweep presets; the
  catalogue ``docs/scenarios.md`` is generated from it.
* :mod:`repro.experiments.serialization` — lossless, digest-stable
  ScenarioConfig ⇄ JSON/TOML round trips so scenarios are shareable files.
* :mod:`repro.experiments.cli` — the ``repro`` console entry point
  (``repro list | describe | run | sweep | export | docs``).
* :mod:`repro.experiments.reporting` — plain-text tables plus the CSV/JSON
  artifact writers behind ``repro … --out``.
"""

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    RunOutcome,
    RunSpec,
    SweepExecutionError,
    SweepExecutor,
    derive_run_seed,
    replication_specs,
    spec_from_dict,
    spec_to_dict,
    sweep_specs,
)
from repro.experiments.store import MetricsAccumulator, ResultStore
from repro.experiments.registry import (
    ScenarioPreset,
    SweepPreset,
    get_preset,
    get_sweep,
    iter_presets,
    iter_sweeps,
    preset_names,
    resolve_scenario,
    sweep_names,
)
from repro.experiments.runner import MLoRaSimulation, run_scenario
from repro.experiments.scenario import BuiltScenario, build_scenario
from repro.experiments.serialization import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.sweeps import SweepResult, run_gateway_sweep, run_replications

__all__ = [
    "ScenarioConfig",
    "ScenarioPreset",
    "SweepPreset",
    "get_preset",
    "get_sweep",
    "iter_presets",
    "iter_sweeps",
    "preset_names",
    "sweep_names",
    "resolve_scenario",
    "load_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "MLoRaSimulation",
    "run_scenario",
    "BuiltScenario",
    "build_scenario",
    "SweepResult",
    "run_gateway_sweep",
    "run_replications",
    "RunOutcome",
    "RunSpec",
    "SweepExecutionError",
    "SweepExecutor",
    "MetricsAccumulator",
    "ResultStore",
    "derive_run_seed",
    "replication_specs",
    "spec_from_dict",
    "spec_to_dict",
    "sweep_specs",
]
