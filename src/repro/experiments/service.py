"""The always-on results service behind ``repro serve``.

A thin asyncio HTTP front on the campaign engine: clients POST a scenario
(or just its digest-derived cache key) and either get the cached
:class:`RunMetrics` back instantly or a job handle to poll.  The service
holds no science of its own — every byte it serves comes from the shared
:class:`~repro.experiments.store.ResultStore`, and every computation goes
through the same :class:`~repro.experiments.parallel.SweepExecutor` (and
therefore the same pluggable backend) as the CLI and the Python API, so a
served result is bit-identical to a locally computed one.

Endpoints (all JSON)::

    GET  /health              liveness + queue depth
    POST /runs                {"preset": name} | {"scenario": {...}} |
                              {"cache_key": "..."}   → metrics | job handle
    GET  /jobs/<job_id>       job status (metrics included once done)
    GET  /results/<cache_key> cached metrics only (404 on miss)
    GET  /summary             streaming aggregate over the whole store

The HTTP layer is deliberately minimal — one request per connection, parsed
with :mod:`asyncio` streams, standard library only — because the heavy
lifting (simulation) runs outside the event loop in executor threads; the
loop only routes, serves cache hits and tracks jobs, which is what lets one
service instance absorb large volumes of duplicate-scenario traffic as pure
store lookups.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.analysis.metrics import RunMetrics
from repro.experiments.parallel import RunSpec, SweepExecutor, spec_from_dict
from repro.experiments.reporting import metrics_to_dict
from repro.experiments.serialization import ScenarioFormatError, scenario_from_dict

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

_MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceError(Exception):
    """An HTTP-visible request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _sanitize(value: Any) -> Any:
    # JSON has no NaN/Infinity literal; null keeps payloads parseable anywhere.
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _metrics_payload(metrics: RunMetrics) -> Dict[str, Any]:
    # Scalar summary only: the per-delivery arrays of a large run would turn
    # every poll into a megabyte download; `repro run --out` exports those.
    return _sanitize(metrics_to_dict(metrics, include_arrays=False))


@dataclass
class JobRecord:
    """One submitted computation, keyed by its spec's cache key."""

    spec: RunSpec
    cache_key: str
    status: str = QUEUED
    error: Optional[str] = None
    wall_time_s: float = 0.0
    submitted_at: float = field(default_factory=time.time)

    def payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.cache_key,
            "status": self.status,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
            "cache_key": self.cache_key,
        }


class CampaignService:
    """The asyncio server: routing, the job table and the drain task.

    ``executor`` must own a :class:`ResultStore` (``cache_dir`` or a
    store-backed backend such as the work-queue): the store is both the
    instant-hit fast path and where finished jobs are read back from.
    """

    def __init__(
        self,
        executor: SweepExecutor,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        if executor.store is None:
            raise ValueError(
                "the results service needs an executor with a result store "
                "(pass cache_dir=... or use a store-backed backend)"
            )
        self.executor = executor
        self.host = host
        self.port = port
        self.bound_port: Optional[int] = None
        self.jobs: Dict[str, JobRecord] = {}
        self.ready = threading.Event()
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def run_blocking(self) -> None:
        """Serve until :meth:`stop` is called (the ``repro serve`` loop)."""
        asyncio.run(self._serve())

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        drain = asyncio.create_task(self._drain())
        self.ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            drain.cancel()
            self.ready.clear()

    async def _drain(self) -> None:
        """Execute queued jobs one at a time, off the event loop.

        One consumer is enough: parallelism belongs to the executor's
        backend (``--workers``/``--backend``), not to the service, and a
        single consumer keeps the job table free of write races.
        """
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            record = self.jobs[job_id]
            record.status = RUNNING
            try:
                outcome = (
                    await loop.run_in_executor(
                        None,
                        lambda: self.executor.run(
                            [record.spec], allow_failures=True
                        ),
                    )
                )[0]
            except Exception as exc:  # defensive: run() should not raise here
                record.status = FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                continue
            record.wall_time_s = outcome.wall_time_s
            if outcome.ok:
                record.status = DONE
            else:
                record.status = FAILED
                record.error = outcome.error

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except ServiceError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # malformed request, client disconnect, …
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(_sanitize(payload)).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise ServiceError(400, f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ServiceError(400, f"bad Content-Length {value.strip()!r}")
        if content_length > _MAX_BODY_BYTES:
            raise ServiceError(400, f"request body exceeds {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return self._route(method, path, body)

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/health":
            return 200, {
                "status": "ok",
                "jobs": len(self.jobs),
                "queue_depth": self._queue.qsize(),
                "backend": self.executor.backend.name,
            }
        if method == "GET" and path == "/summary":
            return 200, self.executor.store.summarize()
        if method == "GET" and path.startswith("/results/"):
            return self._get_result(path.removeprefix("/results/"))
        if method == "GET" and path.startswith("/jobs/"):
            return self._get_job(path.removeprefix("/jobs/"))
        if method == "POST" and path == "/runs":
            return self._post_run(body)
        if path in ("/health", "/summary", "/runs") or path.startswith(("/jobs/", "/results/")):
            raise ServiceError(405, f"{method} not allowed on {path}")
        raise ServiceError(404, f"no route for {method} {path}")

    def _get_result(self, cache_key: str) -> Tuple[int, Dict[str, Any]]:
        metrics = self.executor.store.load(cache_key)
        if metrics is None:
            raise ServiceError(404, f"no stored result for {cache_key!r}")
        return 200, {
            "status": DONE,
            "cache_key": cache_key,
            "metrics": _metrics_payload(metrics),
        }

    def _get_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self.jobs.get(job_id)
        if record is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        payload = record.payload()
        if record.status == DONE:
            metrics = self.executor.store.load(record.cache_key)
            if metrics is not None:
                payload["metrics"] = _metrics_payload(metrics)
        return 200, payload

    def _post_run(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}")
        if not isinstance(request, dict):
            raise ServiceError(400, "request body must be a JSON object")

        if "cache_key" in request and not (
            "scenario" in request or "preset" in request or "spec" in request
        ):
            # Digest-only lookup: the client knows the identity but not the
            # configuration, so a miss cannot be computed — only reported.
            cache_key = str(request["cache_key"])
            record = self.jobs.get(cache_key)
            if record is not None and record.status not in (DONE,):
                return 202, record.payload()
            return self._get_result(cache_key)

        spec = self._spec_from_request(request)
        cache_key = spec.cache_key()
        metrics = self.executor.store.load(cache_key)
        if metrics is not None:
            return 200, {
                "status": DONE,
                "cached": True,
                "cache_key": cache_key,
                "metrics": _metrics_payload(metrics),
            }
        record = self.jobs.get(cache_key)
        if record is None or record.status == FAILED:
            # FAILED jobs are resubmittable (the failure may be transient);
            # QUEUED/RUNNING jobs dedupe onto the in-flight record.
            record = JobRecord(spec=spec, cache_key=cache_key)
            self.jobs[cache_key] = record
            self._queue.put_nowait(cache_key)
        payload = record.payload()
        payload["poll"] = f"/jobs/{cache_key}"
        return 202, payload

    def _spec_from_request(self, request: Mapping[str, Any]) -> RunSpec:
        try:
            if "spec" in request:
                return spec_from_dict(request["spec"])
            if "preset" in request:
                from repro.experiments.registry import get_preset

                config = get_preset(str(request["preset"])).config
            elif "scenario" in request:
                config = scenario_from_dict(request["scenario"])
            else:
                raise ServiceError(
                    400, "submit {'preset': name}, {'scenario': {...}}, "
                    "{'spec': {...}} or {'cache_key': '...'}"
                )
        except (KeyError, ValueError, ScenarioFormatError) as exc:
            if isinstance(exc, ServiceError):
                raise
            message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
            raise ServiceError(400, f"bad run request: {message}")
        nominal = request.get("nominal_gateways")
        return RunSpec(
            config=config,
            nominal_gateways=None if nominal is None else int(nominal),
            replicate=int(request.get("replicate", 0)),
        )


def serve_forever(
    executor: SweepExecutor, host: str = "127.0.0.1", port: int = 8765
) -> CampaignService:
    """Build a service and block serving it (the ``repro serve`` entry)."""
    service = CampaignService(executor, host=host, port=port)
    service.run_blocking()
    return service
