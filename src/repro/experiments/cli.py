"""The ``repro`` command-line interface.

One console entry point over the whole experiment harness::

    repro list                           # catalogue of presets and sweeps
    repro describe urban                 # parameters + provenance of a preset
    repro run urban --workers 4          # run a preset (or a .json/.toml file)
    repro run urban --scheme rca-etx     # parameterized variant
    repro sweep fig9 --scale smoke       # reproduce a paper figure
    repro sweep fig9 --backend work-queue --spool /shared/spool   # multi-host
    repro worker /shared/spool           # process spool jobs (any host)
    repro serve --cache cache/ --port 8765   # the always-on results service
    repro export urban urban.toml        # share a scenario as a file
    repro docs --check                   # verify docs/scenarios.md is current

Every command is a thin shell over library calls — ``repro run <name>`` is
``SweepExecutor().run([RunSpec(config=get_preset(name).config)])``, nothing
more — so CLI results are bit-identical to the Python API (pinned by
``tests/experiments/test_cli.py``).  ``--cache DIR`` shares the executor's
on-disk RunMetrics cache across invocations; because scenario serialization
is digest-stable, a scenario exported to a file and run back from it hits
the same cache entries as the preset it came from.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.engine import ENGINES
from repro.experiments.backends import (
    RetryPolicy,
    execution_backend_names,
    run_worker,
)
from repro.experiments.parallel import RunOutcome, RunSpec, SweepExecutor, config_digest
from repro.experiments.registry import (
    SweepArtifact,
    apply_overrides,
    get_preset,
    get_sweep,
    iter_presets,
    iter_sweeps,
    preset_names,
    render_scenarios_markdown,
    resolve_scale,
    resolve_scenario,
    sweep_names,
)
from repro.experiments.scenario import device_class_names, make_device_class
from repro.experiments.reporting import (
    format_run_summary,
    format_table,
    metrics_to_dict,
    write_json,
    write_metrics_csv,
    write_rows_csv,
)
from repro.experiments.serialization import (
    ScenarioFormatError,
    save_scenario,
    scenario_to_json,
)
from repro.mobility.config import MOBILITY_MODELS
from repro.radio.config import SF_POLICIES
from repro.routing import build_scheme, scheme_names
from repro.routing.config import BUFFER_POLICIES, RoutingConfig

#: Default location of the generated scenario catalogue, relative to CWD.
SCENARIOS_DOC_PATH = Path("docs") / "scenarios.md"


class CLIError(Exception):
    """A user-facing CLI failure (bad name, bad file, bad flag value)."""


def _message(exc: BaseException) -> str:
    # str(KeyError) is the repr of its argument; unwrap to the clean message.
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


# --------------------------------------------------------------------- #
# Core operations (used by both the CLI and the equivalence tests)
# --------------------------------------------------------------------- #
def build_executor(
    workers: Optional[int],
    cache_dir: Optional[str],
    backend: Optional[str] = None,
    spool: Optional[str] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
) -> SweepExecutor:
    """The executor implied by the ``--workers``/``--cache``/``--backend``/
    ``--spool``/``--retries``/``--timeout`` flags (env fallback)."""
    try:
        retry = RetryPolicy(retries=retries, timeout_s=timeout)
        if workers is None:
            return SweepExecutor.from_env(
                default_workers=1, cache_dir=cache_dir, backend=backend,
                retry=retry, spool_dir=spool,
            )
        return SweepExecutor(
            workers=workers, cache_dir=cache_dir, backend=backend,
            retry=retry, spool_dir=spool,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc


def run_target(
    target: str,
    executor: Optional[SweepExecutor] = None,
    **overrides: Any,
) -> RunOutcome:
    """Run one scenario (preset name or file path) and return its outcome."""
    try:
        config = resolve_scenario(target)
    except (KeyError, ScenarioFormatError) as exc:
        raise CLIError(_message(exc)) from exc
    try:
        config = apply_overrides(config, **overrides)
    except ValueError as exc:
        raise CLIError(f"invalid override: {exc}") from exc
    # Fail on a typo'd scheme / device class / routing parameter here, not
    # mid-build inside a worker process (overrides and hand-edited scenario
    # files both reach this).
    try:
        build_scheme(config.scheme, config.routing)
        make_device_class(config.device_class)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    executor = executor or SweepExecutor()
    return executor.run([RunSpec(config=config)])[0]


def run_sweep(
    name: str,
    scale: Any = None,
    executor: Optional[SweepExecutor] = None,
) -> SweepArtifact:
    """Run one figure/ablation sweep at the requested scale."""
    try:
        sweep = get_sweep(name)
        resolved = resolve_scale(scale)
    except (KeyError, ValueError) as exc:
        raise CLIError(_message(exc)) from exc
    return sweep.runner(resolved, executor)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def list_payload() -> dict:
    """The machine-readable catalogue behind ``repro list --json``.

    Scripts enumerate presets/sweeps from this instead of scraping the text
    tables; the config digest is included so cache tooling can key on it.
    """
    return {
        "presets": [
            {
                "name": preset.name,
                "scheme": preset.config.scheme,
                "num_gateways": preset.config.num_gateways,
                "device_range_m": preset.config.device_range_m,
                "area_km2": preset.config.area_km2,
                "duration_s": preset.config.duration_s,
                "num_channels": preset.config.radio.num_channels,
                "sf_policy": preset.config.radio.sf_policy,
                "mobility_model": preset.config.mobility.model,
                "buffer_policy": preset.config.routing.buffer.policy,
                "figure": preset.figure,
                "tags": list(preset.tags),
                "description": preset.description,
                "config_digest": config_digest(preset.config),
            }
            for preset in iter_presets()
        ],
        "sweeps": [
            {
                "name": sweep.name,
                "figure": sweep.figure,
                "description": sweep.description,
            }
            for sweep in iter_sweeps()
        ],
    }


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        print(json.dumps(list_payload(), indent=2))
        return 0
    preset_rows = [
        (
            preset.name,
            preset.config.scheme,
            preset.config.num_gateways,
            f"{preset.config.device_range_m:g}",
            f"{preset.config.duration_s / 3600.0:g}",
            preset.figure or "-",
        )
        for preset in iter_presets()
    ]
    print("Scenario presets (repro run <name>):")
    print(format_table(
        ("name", "scheme", "gw", "d2d [m]", "hours", "reproduces"), preset_rows
    ))
    sweep_rows = [
        (sweep.name, sweep.figure or "-", sweep.description) for sweep in iter_sweeps()
    ]
    print("\nFigure sweeps (repro sweep <name>):")
    print(format_table(("name", "reproduces", "description"), sweep_rows))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    name = args.name
    try:
        preset = get_preset(name)
    except KeyError:
        try:
            sweep = get_sweep(name)
        except KeyError:
            raise CLIError(
                f"unknown preset or sweep {name!r}; see `repro list`"
            ) from None
        print(f"sweep {sweep.name}")
        print(f"reproduces: {sweep.figure or '-'}")
        print(sweep.description)
        print("\nrun it with: repro sweep "
              f"{sweep.name} --scale benchmark [--workers N] [--out DIR]")
        return 0
    print(f"preset {preset.name}")
    print(f"reproduces: {preset.figure or '- (synthetic variant)'}")
    print(f"tags: {', '.join(preset.tags) if preset.tags else '-'}")
    print(f"config digest: {config_digest(preset.config)}")
    print(f"\n{preset.description}\n")
    print(scenario_to_json(preset.config), end="")
    return 0


def parse_scheme_params(items: Optional[Sequence[str]]) -> Optional[dict]:
    """``--scheme-param key=value`` pairs as a typed RoutingConfig kwargs dict.

    Values are coerced to the named field's annotated type (int fields reject
    non-integers, float fields promote integers) so that a CLI override and
    the equivalent Python :class:`RoutingConfig` produce the same digest.
    """
    if not items:
        return None
    import dataclasses

    field_types = {
        field.name: field.type
        for field in dataclasses.fields(RoutingConfig)
        if field.name != "buffer"
    }
    params: dict = {}
    for item in items:
        key, separator, raw = item.partition("=")
        key = key.strip().replace("-", "_")
        if not separator or not key:
            raise CLIError(
                f"--scheme-param expects key=value, got {item!r}"
            )
        if key not in field_types:
            raise CLIError(
                f"unknown scheme parameter {key!r}; available: {sorted(field_types)}"
            )
        kind = field_types[key]
        try:
            params[key] = int(raw) if kind == "int" else float(raw)
        except ValueError:
            raise CLIError(
                f"--scheme-param {key} expects {'an integer' if kind == 'int' else 'a number'}, "
                f"got {raw!r}"
            ) from None
    return params


def _overrides_from(args: argparse.Namespace) -> dict:
    return {
        "scale": args.scale,
        "scheme": args.scheme,
        "device_class": args.device_class,
        "num_gateways": args.gateways,
        "device_range_m": args.range,
        "gateway_placement": args.placement,
        "num_routes": args.routes,
        "trips_per_route": args.trips,
        "duration_s": args.duration,
        "seed": args.seed,
        "num_channels": args.channels,
        "sf_policy": args.sf_policy,
        "mobility": args.mobility,
        "mobility_nodes": args.mobility_nodes,
        "trace_file": args.trace_file,
        "scheme_params": parse_scheme_params(args.scheme_params),
        "buffer": args.buffer,
        "buffer_capacity": args.buffer_capacity,
        "buffer_ttl_s": args.buffer_ttl,
        "engine": args.engine,
        "engine_tick_s": args.engine_tick,
    }


def _executor_from(args: argparse.Namespace) -> SweepExecutor:
    return build_executor(
        args.workers,
        args.cache,
        backend=args.backend,
        spool=args.spool,
        retries=args.retries,
        timeout=args.timeout,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    executor = _executor_from(args)
    outcome = run_target(args.target, executor=executor, **_overrides_from(args))
    metrics = outcome.metrics
    config = outcome.spec.config
    source = "cache" if outcome.from_cache else f"{outcome.wall_time_s:.2f}s"
    print(format_run_summary(f"run {config.name} [{source}]", metrics))
    if args.out:
        out_dir = Path(args.out)
        write_json(metrics_to_dict(metrics), out_dir / "metrics.json")
        write_metrics_csv([metrics], out_dir / "metrics.csv")
        save_scenario(config, out_dir / "scenario.json")
        print(f"\nartifacts written to {out_dir}/ (metrics.json, metrics.csv, scenario.json)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    executor = _executor_from(args)
    artifact = run_sweep(args.figure, scale=args.scale, executor=executor)
    print(artifact.text)
    if args.out:
        out_dir = Path(args.out)
        write_rows_csv(artifact.rows, out_dir / f"{artifact.name}.csv")
        write_json(artifact.rows, out_dir / f"{artifact.name}.json")
        print(f"\nartifacts written to {out_dir}/ "
              f"({artifact.name}.csv, {artifact.name}.json)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    try:
        config = resolve_scenario(args.target)
    except (KeyError, ScenarioFormatError) as exc:
        raise CLIError(_message(exc)) from exc
    try:
        path = save_scenario(config, args.dest)
    except ScenarioFormatError as exc:
        raise CLIError(str(exc)) from exc
    print(f"wrote {path} (digest {config_digest(config)})")
    return 0


def _cmd_docs(args: argparse.Namespace) -> int:
    path = Path(args.path)
    rendered = render_scenarios_markdown()
    if args.write:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"wrote {path}")
        return 0
    if not path.is_file():
        raise CLIError(
            f"{path} does not exist — run from the repository root (or pass "
            "--path); create it with: repro docs --write"
        )
    current = path.read_text(encoding="utf-8")
    if current != rendered:
        print(
            f"{path} is out of date with repro.experiments.registry; "
            "regenerate with: repro docs --write",
            file=sys.stderr,
        )
        return 1
    print(f"{path} is up to date")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    if args.max_jobs is not None and args.max_jobs < 1:
        raise CLIError(f"--max-jobs must be >= 1, got {args.max_jobs}")
    if args.idle_timeout is not None and args.idle_timeout <= 0:
        raise CLIError(f"--idle-timeout must be positive, got {args.idle_timeout}")
    processed = run_worker(
        args.spool,
        max_jobs=args.max_jobs,
        idle_timeout_s=args.idle_timeout,
        poll_interval_s=args.poll,
    )
    print(f"worker exit: processed {processed} job(s) from {args.spool}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here, not at module top: list/describe/run invocations never
    # need the asyncio service machinery.
    from repro.experiments.service import CampaignService

    executor = _executor_from(args)
    if executor.store is None:
        # The service is a results service: without a store there is nothing
        # durable to serve.  Default to an ephemeral store for ad-hoc use.
        import tempfile

        cache = tempfile.mkdtemp(prefix="repro-serve-")
        executor = build_executor(
            args.workers, cache, backend=args.backend, spool=args.spool,
            retries=args.retries, timeout=args.timeout,
        )
        print(f"no --cache given; serving from ephemeral store {cache}")
    try:
        service = CampaignService(executor, host=args.host, port=args.port)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(
        f"repro results service on http://{args.host}:{args.port} "
        f"(backend {executor.backend.name}, store {executor.cache_dir})\n"
        "endpoints: GET /health | POST /runs | GET /jobs/<id> | "
        "GET /results/<cache-key> | GET /summary"
    )
    service.run_blocking()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the bench helpers pull in both
    # engines, which list/describe/docs invocations never need.
    from repro.experiments.bench import format_ladder_table, run_ladder

    if args.scheme not in scheme_names():
        raise CLIError(
            f"unknown scheme {args.scheme!r}; available: {', '.join(scheme_names())}"
        )
    for fraction in args.fractions:
        if not 0.0 < fraction <= 1.0:
            raise CLIError(f"fleet fractions must be in (0, 1], got {fraction}")
    rows = run_ladder(
        scheme=args.scheme, fractions=args.fractions, rounds=args.rounds
    )
    print(format_ladder_table(rows, args.scheme))
    return 0


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_SWEEP_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="on-disk RunMetrics store shared across invocations and hosts",
    )
    parser.add_argument(
        "--backend", default=None, choices=execution_backend_names(),
        help="execution backend (default: serial, or process-pool when "
             "--workers > 1; results are bit-identical either way)",
    )
    parser.add_argument(
        "--spool", default=None, metavar="DIR",
        help="shared spool directory of the work-queue backend "
             "(serve jobs with `repro worker DIR` on any host)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts per failed run, with bounded backoff (default 0)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per dispatched run (backend-enforced)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write CSV/JSON artifacts into this directory",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction driver for the MLoRa-SS paper: run named scenario "
            "presets, scenario files and per-figure sweeps."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="catalogue of scenario presets and figure sweeps"
    )
    list_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON catalogue instead of the text tables",
    )
    list_parser.set_defaults(func=_cmd_list)

    describe = subparsers.add_parser(
        "describe", help="full parameters and provenance of a preset or sweep"
    )
    describe.add_argument("name", help="preset or sweep name")
    describe.set_defaults(func=_cmd_describe)

    run = subparsers.add_parser(
        "run", help="run one scenario: a preset name or a .json/.toml file"
    )
    run.add_argument("target", help=f"preset ({', '.join(preset_names())}) or scenario file")
    _add_executor_flags(run)
    run.add_argument("--scale", type=float, default=None,
                     help="density-preserving spatial shrink factor in (0, 1]")
    run.add_argument("--scheme", default=None,
                     help=f"forwarding scheme ({', '.join(scheme_names())})")
    run.add_argument("--scheme-param", action="append", default=None,
                     dest="scheme_params", metavar="KEY=VALUE",
                     help="routing parameter override, repeatable (e.g. "
                          "max_handover_messages=6, spray_initial_copies=8, "
                          "prophet_beta=0.5)")
    run.add_argument("--buffer", default=None, choices=BUFFER_POLICIES,
                     help="buffer-management policy (default drop-new)")
    run.add_argument("--buffer-capacity", type=int, default=None,
                     dest="buffer_capacity", metavar="N",
                     help="per-device queue capacity in messages "
                          "(default: the device config's 64)")
    run.add_argument("--buffer-ttl", type=float, default=None,
                     dest="buffer_ttl", metavar="SECONDS",
                     help="message time-to-live for the ttl-expiry policy")
    run.add_argument("--device-class", default=None, dest="device_class",
                     help=f"device class ({', '.join(device_class_names())})")
    run.add_argument("--gateways", type=int, default=None, help="deployed gateway count")
    run.add_argument("--range", type=float, default=None,
                     help="device-to-device range in metres (urban 500, rural 1000)")
    run.add_argument("--placement", default=None, choices=("grid", "random"),
                     help="gateway placement policy")
    run.add_argument("--routes", type=int, default=None, help="number of bus routes")
    run.add_argument("--trips", type=int, default=None, help="trips per route")
    run.add_argument("--duration", type=float, default=None, help="simulated seconds")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument("--channels", type=int, default=None,
                     help="uplink channel count of the radio plan (default 1)")
    run.add_argument("--sf-policy", default=None, dest="sf_policy",
                     choices=SF_POLICIES,
                     help="spreading-factor allocation policy (default fixed-sf7)")
    run.add_argument("--mobility", default=None, choices=MOBILITY_MODELS,
                     help="mobility model generating the traces (default london-bus)")
    run.add_argument("--mobility-nodes", type=int, default=None, dest="mobility_nodes",
                     help="synthetic fleet size (default: the bus fleet size)")
    run.add_argument("--trace-file", default=None, dest="trace_file", metavar="CSV",
                     help="replay recorded node_id,time_s,x_m,y_m traces "
                          "(implies --mobility trace-file)")
    run.add_argument("--engine", default=None, choices=ENGINES,
                     help="simulation engine (bit-identical results; "
                          "`array` is the batched fast path)")
    run.add_argument("--engine-tick", type=float, default=None,
                     dest="engine_tick", metavar="SECONDS",
                     help="array-engine prefilter tick (performance knob)")
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser(
        "sweep", help="reproduce one paper figure or ablation"
    )
    sweep.add_argument("figure", help=f"one of: {', '.join(sweep_names())}")
    sweep.add_argument("--scale", default="benchmark",
                       help="smoke | benchmark | campaign | spatial-scale float")
    _add_executor_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    export = subparsers.add_parser(
        "export", help="write a preset (or scenario file) as shareable JSON/TOML"
    )
    export.add_argument("target", help="preset name or scenario file")
    export.add_argument("dest", help="destination path ending in .json or .toml")
    export.set_defaults(func=_cmd_export)

    docs = subparsers.add_parser(
        "docs", help="regenerate or verify the generated docs/scenarios.md"
    )
    docs_mode = docs.add_mutually_exclusive_group()
    docs_mode.add_argument("--write", action="store_true",
                           help="rewrite the file (default: check only)")
    docs_mode.add_argument("--check", action="store_true",
                           help="explicitly check only (the default)")
    docs.add_argument("--path", default=str(SCENARIOS_DOC_PATH),
                      help=f"catalogue location (default: {SCENARIOS_DOC_PATH})")
    docs.set_defaults(func=_cmd_docs)

    worker = subparsers.add_parser(
        "worker",
        help="process work-queue jobs from a shared spool directory",
    )
    worker.add_argument("spool", help="spool directory shared with the submitter(s)")
    worker.add_argument("--max-jobs", type=int, default=None, dest="max_jobs",
                        metavar="N", help="exit after processing N jobs")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        dest="idle_timeout", metavar="SECONDS",
                        help="exit after this long without claimable work "
                             "(default: serve forever)")
    worker.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                        help="queue poll interval while idle (default 0.1)")
    worker.set_defaults(func=_cmd_worker)

    serve = subparsers.add_parser(
        "serve",
        help="always-on results service: POST scenarios, GET cached metrics",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default 8765)")
    _add_executor_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    bench = subparsers.add_parser(
        "bench",
        help="time the object-vs-array engine ladder locally (urban-full fleet)",
    )
    bench.add_argument(
        "--scheme", default="no-routing",
        help=f"forwarding scheme to time ({', '.join(scheme_names())})",
    )
    bench.add_argument(
        "--rounds", type=int, default=1, metavar="N",
        help="rounds per engine and ladder point, best-of-N (default: 1)",
    )
    bench.add_argument(
        "--fractions", type=float, nargs="+", default=[0.25, 0.5, 1.0],
        metavar="F",
        help="fleet fractions of the 960-bus fleet to ladder (default: 0.25 0.5 1.0)",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro`` console script and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro list | head`
        # Reopen stdout on devnull so the interpreter's shutdown flush does
        # not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
