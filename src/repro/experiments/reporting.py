"""Plain-text reporting of figure data.

The benchmark harness prints these tables so a run of
``pytest benchmarks/ --benchmark-only`` leaves a textual record of the same
rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import RunMetrics
from repro.experiments.figures import BusNetworkProperties, FigureRow, ThroughputTimeSeries


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []

    def _format_row(cells: Sequence[object]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines.append(_format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(_format_row(row))
    return "\n".join(lines)


def format_figure_rows(title: str, rows: Sequence[FigureRow], unit: str = "") -> str:
    """Format the rows of a density-sweep figure (Figs. 8, 9, 12, 13)."""
    header_unit = f" [{unit}]" if unit else ""
    table_rows = [
        (row.environment, row.num_gateways, row.scheme, f"{row.value:.2f}")
        for row in rows
    ]
    table = format_table(
        ("environment", "gateways", "scheme", f"value{header_unit}"), table_rows
    )
    return f"{title}\n{table}"


def format_bus_network(title: str, properties: BusNetworkProperties) -> str:
    """Format the Fig. 7 summary (active-bus profile and duration statistics)."""
    durations = properties.active_durations_s
    mean_duration = sum(durations) / len(durations) if durations else float("nan")
    rows = [
        ("peak active buses", properties.peak_active_buses),
        ("night active buses", properties.night_active_buses),
        ("trips", len(durations)),
        ("mean trip duration [min]", f"{mean_duration / 60.0:.1f}"),
        ("max trip duration [min]", f"{max(durations) / 60.0:.1f}" if durations else "nan"),
    ]
    return f"{title}\n" + format_table(("quantity", "value"), rows)


def format_timeseries(title: str, series: ThroughputTimeSeries, max_bins: int = 12) -> str:
    """Format a throughput-over-time figure (Figs. 10–11), downsampled for readability."""
    n_bins = len(series.bin_starts_s)
    step = max(n_bins // max_bins, 1)
    rows = []
    for index in range(0, n_bins, step):
        row = [f"{series.bin_starts_s[index] / 3600.0:.1f}h"]
        for scheme in sorted(series.series_by_scheme):
            row.append(f"{series.series_by_scheme[scheme][index]:.0f}")
        rows.append(tuple(row))
    headers = ("time",) + tuple(sorted(series.series_by_scheme))
    totals = ", ".join(
        f"{scheme}={series.total(scheme):.0f}" for scheme in sorted(series.series_by_scheme)
    )
    return f"{title} ({series.environment})\ntotals: {totals}\n" + format_table(headers, rows)


def format_metric_comparison(
    title: str, results: Dict[str, RunMetrics], metrics: Sequence[str]
) -> str:
    """Format a dictionary of runs (ablations) across the requested metric attributes."""
    rows = []
    for key in sorted(results, key=str):
        run = results[key]
        rows.append(
            (str(key),)
            + tuple(f"{float(getattr(run, metric)):.3f}" for metric in metrics)
        )
    return f"{title}\n" + format_table(("variant",) + tuple(metrics), rows)
