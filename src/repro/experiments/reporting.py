"""Reporting: plain-text tables plus CSV/JSON artifact writers.

The text formatters serve two consumers: the benchmark harness (so a run of
``pytest benchmarks/ --benchmark-only`` leaves a textual record of the same
rows/series the paper plots) and the ``repro`` CLI, which prints them for
``repro run``/``repro sweep`` and additionally persists the structured
counterparts with the ``write_*`` helpers when ``--out`` is given.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from repro.analysis.metrics import RunMetrics
from repro.experiments.figures import BusNetworkProperties, FigureRow, ThroughputTimeSeries

#: The scalar summaries reported for every run (CLI, CSV and JSON artifacts).
RUN_SUMMARY_FIELDS = (
    "scheme",
    "num_gateways",
    "device_range_m",
    "duration_s",
    "messages_generated",
    "messages_delivered",
    "messages_dropped_full",
    "messages_rejected_duplicate",
    "messages_expired_ttl",
    "delivery_ratio",
    "mean_delay_s",
    "mean_hop_count",
    "mean_messages_sent_per_node",
    "mean_energy_joules",
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []

    def _format_row(cells: Sequence[object]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines.append(_format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(_format_row(row))
    return "\n".join(lines)


def format_figure_rows(title: str, rows: Sequence[FigureRow], unit: str = "") -> str:
    """Format the rows of a density-sweep figure (Figs. 8, 9, 12, 13)."""
    header_unit = f" [{unit}]" if unit else ""
    table_rows = [
        (row.environment, row.num_gateways, row.scheme, f"{row.value:.2f}")
        for row in rows
    ]
    table = format_table(
        ("environment", "gateways", "scheme", f"value{header_unit}"), table_rows
    )
    return f"{title}\n{table}"


def format_bus_network(title: str, properties: BusNetworkProperties) -> str:
    """Format the Fig. 7 summary (active-bus profile and duration statistics)."""
    durations = properties.active_durations_s
    mean_duration = sum(durations) / len(durations) if durations else float("nan")
    rows = [
        ("peak active buses", properties.peak_active_buses),
        ("night active buses", properties.night_active_buses),
        ("trips", len(durations)),
        ("mean trip duration [min]", f"{mean_duration / 60.0:.1f}"),
        ("max trip duration [min]", f"{max(durations) / 60.0:.1f}" if durations else "nan"),
    ]
    return f"{title}\n" + format_table(("quantity", "value"), rows)


def format_timeseries(title: str, series: ThroughputTimeSeries, max_bins: int = 12) -> str:
    """Format a throughput-over-time figure (Figs. 10–11), downsampled for readability."""
    n_bins = len(series.bin_starts_s)
    step = max(n_bins // max_bins, 1)
    rows = []
    for index in range(0, n_bins, step):
        row = [f"{series.bin_starts_s[index] / 3600.0:.1f}h"]
        for scheme in sorted(series.series_by_scheme):
            row.append(f"{series.series_by_scheme[scheme][index]:.0f}")
        rows.append(tuple(row))
    headers = ("time",) + tuple(sorted(series.series_by_scheme))
    totals = ", ".join(
        f"{scheme}={series.total(scheme):.0f}" for scheme in sorted(series.series_by_scheme)
    )
    return f"{title} ({series.environment})\ntotals: {totals}\n" + format_table(headers, rows)


def metrics_summary(metrics: RunMetrics) -> Dict[str, Any]:
    """The scalar summary of one run as a plain dict (one CSV row)."""
    return {name: getattr(metrics, name) for name in RUN_SUMMARY_FIELDS}


def metrics_to_dict(metrics: RunMetrics, include_arrays: bool = True) -> Dict[str, Any]:
    """A JSON-ready dict of a run: scalar summary plus (optionally) the raw
    per-delivery and per-device arrays the time-series figures need."""
    data = metrics_summary(metrics)
    if include_arrays:
        data.update(
            delays_s=list(metrics.delays_s),
            hop_counts=list(metrics.hop_counts),
            delivery_times_s=list(metrics.delivery_times_s),
            transmissions_per_device=dict(metrics.transmissions_per_device),
            energy_joules_per_device=dict(metrics.energy_joules_per_device),
        )
    return data


def format_run_summary(title: str, metrics: RunMetrics) -> str:
    """A two-column summary table of one run (what ``repro run`` prints)."""
    rows = []
    for name in RUN_SUMMARY_FIELDS:
        value = getattr(metrics, name)
        if isinstance(value, float):
            value = f"{value:.3f}" if math.isfinite(value) else str(value)
        rows.append((name, value))
    return f"{title}\n" + format_table(("metric", "value"), rows)


def _sanitize(value: Any) -> Any:
    # JSON has no NaN/Infinity literal; null keeps artifacts loadable anywhere.
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def write_json(data: Any, path: Union[str, Path]) -> Path:
    """Write any JSON-ready structure, mapping non-finite floats to null."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(_sanitize(data), indent=2, allow_nan=False)
    target.write_text(text + "\n", encoding="utf-8")
    return target


def write_rows_csv(rows: Sequence[Mapping[str, Any]], path: Union[str, Path]) -> Path:
    """Write homogeneous dict rows as CSV (header from the first row)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        if rows:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
    return target


def write_metrics_csv(
    metrics_seq: Sequence[RunMetrics], path: Union[str, Path]
) -> Path:
    """Write the scalar summaries of several runs as one CSV table."""
    return write_rows_csv([metrics_summary(m) for m in metrics_seq], path)


def format_metric_comparison(
    title: str, results: Dict[str, RunMetrics], metrics: Sequence[str]
) -> str:
    """Format a dictionary of runs (ablations) across the requested metric attributes."""
    rows = []
    for key in sorted(results, key=str):
        run = results[key]
        rows.append(
            (str(key),)
            + tuple(f"{float(getattr(run, metric)):.3f}" for metric in metrics)
        )
    return f"{title}\n" + format_table(("variant",) + tuple(metrics), rows)
