"""Multi-worker execution over a shared filesystem spool.

The ``work-queue`` backend turns a directory (local disk or a shared mount,
so several hosts can participate) into a crash-safe job queue::

    spool/
      todo/<job>.json     submitted, unclaimed work (one spec per file)
      active/<job>.json   claimed by a worker; mtime records the claim time
      done/<job>.json     completion marker: error or a pointer into store/
      store/              shared ResultStore holding the finished RunMetrics

Every transition is a single atomic :func:`os.rename` / :func:`os.replace`
on one filesystem, which is the whole concurrency story:

* **Claiming.**  A worker claims a job by renaming ``todo/x.json`` to
  ``active/x.json``; exactly one claimant wins, the losers get
  ``FileNotFoundError`` and move on.  No locks, no daemons.
* **Completion.**  The worker stores the metrics into ``store/`` *before*
  publishing the ``done`` marker, so a marker always points at a readable
  result no matter when the worker dies.
* **Worker death.**  A worker that dies mid-run leaves its ``active`` file
  behind.  The submitter renames actives older than the lease timeout back
  into ``todo/``, so another worker picks the run up.  Results the dead
  worker already finished are in the store and are never recomputed.

Job ids are the spec's cache key, so resubmitting the same campaign after a
submitter crash dedupes against both the queue and the store — resumption
costs only the runs that never finished.

Workers are started with ``repro worker SPOOL`` (any number, any host that
sees the directory) or programmatically via :func:`run_worker`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.backends.base import (
    ExecutionBackend,
    failure_outcome,
    register_execution_backend,
)
from repro.experiments.parallel import (
    RunOutcome,
    RunSpec,
    execute_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.store import ResultStore

#: Spool subdirectories (see the module docstring for the protocol).
TODO_DIR = "todo"
ACTIVE_DIR = "active"
DONE_DIR = "done"
STORE_DIR = "store"

#: Default lease on a claimed job before the submitter requeues it.  Must
#: comfortably exceed the longest single run; ``timeout_s`` overrides it.
DEFAULT_LEASE_TIMEOUT_S = 900.0


def _write_json_atomic(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        prefix=f"{path.stem}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            json.dump(payload, tmp)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


class Spool:
    """Path bookkeeping shared by the backend (submitter) and the workers."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.todo = self.root / TODO_DIR
        self.active = self.root / ACTIVE_DIR
        self.done = self.root / DONE_DIR
        self.store = ResultStore(self.root / STORE_DIR)

    def ensure_layout(self) -> None:
        for directory in (self.todo, self.active, self.done):
            directory.mkdir(parents=True, exist_ok=True)

    def todo_path(self, job_id: str) -> Path:
        return self.todo / f"{job_id}.json"

    def active_path(self, job_id: str) -> Path:
        return self.active / f"{job_id}.json"

    def done_path(self, job_id: str) -> Path:
        return self.done / f"{job_id}.json"


class WorkQueueBackend(ExecutionBackend):
    """Submit runs into a spool directory and wait for workers to finish them.

    The backend never executes anything itself — start at least one
    ``repro worker`` on the spool, or dispatch blocks until one appears.
    """

    name = "work-queue"

    def __init__(
        self,
        spool_dir: Union[str, Path, None],
        poll_interval_s: float = 0.1,
        lease_timeout_s: Optional[float] = None,
    ) -> None:
        if spool_dir is None:
            raise ValueError(
                "the work-queue backend needs a spool directory "
                "(--spool DIR on the CLI)"
            )
        if poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, got {poll_interval_s}")
        self.spool = Spool(spool_dir)
        self.poll_interval_s = float(poll_interval_s)
        self.lease_timeout_s = (
            float(lease_timeout_s) if lease_timeout_s else DEFAULT_LEASE_TIMEOUT_S
        )
        #: The spool's result store doubles as the executor's cache (see
        #: SweepExecutor: a backend-owned store is adopted when no cache_dir
        #: is given), which is what makes campaigns resumable end to end.
        self.store = self.spool.store

    # ------------------------------------------------------------------ #
    # Submission + polling (the ExecutionBackend contract)
    # ------------------------------------------------------------------ #
    def execute(
        self, items: Sequence[Tuple[int, RunSpec]]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        self.spool.ensure_layout()
        indices_by_job: Dict[str, List[int]] = {}
        spec_by_job: Dict[str, RunSpec] = {}
        for index, spec in items:
            job_id = spec.cache_key()
            indices_by_job.setdefault(job_id, []).append(index)
            spec_by_job[job_id] = spec
        for job_id, spec in spec_by_job.items():
            self._submit(job_id, spec)

        pending = set(spec_by_job)
        while pending:
            progressed = False
            for job_id in sorted(pending):
                marker = _read_json(self.spool.done_path(job_id))
                if marker is None:
                    continue
                outcome = self._outcome_from_marker(job_id, spec_by_job[job_id], marker)
                for index in indices_by_job[job_id]:
                    yield index, outcome
                pending.discard(job_id)
                progressed = True
            if pending and not progressed:
                self._requeue_stale_actives()
                time.sleep(self.poll_interval_s)

    def _submit(self, job_id: str, spec: RunSpec) -> None:
        done_path = self.spool.done_path(job_id)
        marker = _read_json(done_path)
        if marker is not None:
            if not marker.get("error") and job_id in self.store:
                return  # finished earlier (e.g. before a submitter restart)
            # A failed or dangling marker from a previous round: clear it so
            # this round's completion is unambiguous, then resubmit.
            try:
                done_path.unlink()
            except OSError:
                pass
        if self.spool.active_path(job_id).is_file():
            return  # a worker is already on it; the lease recovers stalls
        _write_json_atomic(
            self.spool.todo_path(job_id),
            {"job_id": job_id, "spec": spec_to_dict(spec)},
        )

    def _outcome_from_marker(
        self, job_id: str, spec: RunSpec, marker: dict
    ) -> RunOutcome:
        error = marker.get("error")
        if error:
            return failure_outcome(spec, str(error), float(marker.get("wall_time_s", 0.0)))
        metrics = self.store.load(job_id)
        if metrics is None:
            return failure_outcome(
                spec, f"worker reported completion but {job_id} is not in the store"
            )
        return RunOutcome(
            spec=spec,
            metrics=metrics,
            wall_time_s=float(marker.get("wall_time_s", 0.0)),
            from_cache=bool(marker.get("served_from_store", False)),
        )

    def _requeue_stale_actives(self) -> None:
        if not self.spool.active.is_dir():
            return
        deadline = time.time() - self.lease_timeout_s
        for active in self.spool.active.glob("*.json"):
            try:
                if active.stat().st_mtime > deadline:
                    continue
                os.rename(active, self.spool.todo / active.name)
            except FileNotFoundError:
                continue  # the worker finished (or another submitter requeued)
            except OSError:
                continue


register_execution_backend(
    "work-queue",
    lambda options: WorkQueueBackend(
        spool_dir=options.spool_dir,
        poll_interval_s=options.poll_interval_s,
        lease_timeout_s=options.timeout_s,
    ),
)


# --------------------------------------------------------------------- #
# Worker loop (the `repro worker` entry point)
# --------------------------------------------------------------------- #
def claim_next_job(spool: Spool) -> Optional[str]:
    """Claim the oldest unclaimed job via atomic rename; None when idle."""
    if not spool.todo.is_dir():
        return None
    for todo in sorted(spool.todo.glob("*.json")):
        job_id = todo.stem
        try:
            os.rename(todo, spool.active_path(job_id))
        except FileNotFoundError:
            continue  # another worker won the claim
        except OSError:
            continue
        return job_id
    return None


def process_job(spool: Spool, job_id: str) -> bool:
    """Execute one claimed job; returns False when its payload is unusable.

    The result lands in the spool's store *before* the ``done`` marker is
    published, so a marker is always backed by a readable result.  Failures
    (bad payload, a run that raises) publish an error marker instead —
    per-job, never fatal to the worker.
    """
    active = spool.active_path(job_id)
    payload = _read_json(active)
    started = time.perf_counter()
    marker: dict = {"job_id": job_id, "error": None, "wall_time_s": 0.0}
    ok = True
    try:
        if job_id in spool.store:
            # Another worker (or a previous life of this campaign) already
            # finished this configuration: serve it without recomputing.
            marker["served_from_store"] = True
        elif payload is None or "spec" not in payload:
            raise ValueError(f"unreadable job payload for {job_id}")
        else:
            spec = spec_from_dict(payload["spec"])
            outcome = execute_spec(spec)
            spool.store.store(job_id, outcome.metrics)
            marker["wall_time_s"] = outcome.wall_time_s
    except Exception as exc:
        marker["error"] = f"{type(exc).__name__}: {exc}"
        marker["wall_time_s"] = time.perf_counter() - started
        ok = False
    _write_json_atomic(spool.done_path(job_id), marker)
    try:
        active.unlink()
    except OSError:
        pass
    return ok


def run_worker(
    spool_dir: Union[str, Path],
    max_jobs: Optional[int] = None,
    idle_timeout_s: Optional[float] = None,
    poll_interval_s: float = 0.1,
) -> int:
    """Process spool jobs until ``max_jobs`` are done or the queue stays idle.

    ``max_jobs`` bounds the worker's lifetime (useful for tests and for
    rolling restarts); ``idle_timeout_s`` exits after that long without
    claimable work (``None`` serves forever).  Returns the number of jobs
    processed (including store-served and failed ones).
    """
    spool = Spool(spool_dir)
    spool.ensure_layout()
    processed = 0
    idle_since = time.monotonic()
    while max_jobs is None or processed < max_jobs:
        job_id = claim_next_job(spool)
        if job_id is None:
            if (
                idle_timeout_s is not None
                and time.monotonic() - idle_since >= idle_timeout_s
            ):
                break
            time.sleep(poll_interval_s)
            continue
        process_job(spool, job_id)
        processed += 1
        idle_since = time.monotonic()
    return processed
