"""In-process serial execution — the reference backend.

Runs every spec in the calling process, one after the other.  This is the
path the equivalence tests treat as ground truth: the other backends must be
bit-identical to it.  A run that raises becomes a per-spec failure outcome;
the rest of the batch continues.

``timeout_s`` is *not* enforced here: preempting arbitrary Python in the
calling process would require signals (unavailable off the main thread, e.g.
under the results service) and could corrupt in-progress state.  Campaigns
that need hard timeouts use the ``process-pool`` or ``work-queue`` backends,
whose runs live in killable processes.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence, Tuple

from repro.experiments.backends.base import (
    ExecutionBackend,
    failure_outcome,
    register_execution_backend,
)
from repro.experiments.parallel import RunOutcome, RunSpec, execute_spec


class SerialBackend(ExecutionBackend):
    """One-at-a-time execution in the calling process."""

    name = "serial"

    def execute(
        self, items: Sequence[Tuple[int, RunSpec]]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        for index, spec in items:
            start = time.perf_counter()
            try:
                outcome = execute_spec(spec)
            except Exception as exc:
                outcome = failure_outcome(spec, exc, time.perf_counter() - start)
            yield index, outcome


register_execution_backend("serial", lambda options: SerialBackend())
