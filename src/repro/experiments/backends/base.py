"""The pluggable execution-backend seam of the campaign engine.

An :class:`ExecutionBackend` answers one question — *where do pending runs
execute?* — and nothing else.  Caching, retry, backoff and completeness
accounting all live in :class:`~repro.experiments.parallel.SweepExecutor`,
which makes every backend interchangeable: the executor hands a batch of
``(index, spec)`` items to :meth:`ExecutionBackend.execute` and consumes
``(index, outcome)`` pairs *as runs finish*, in any order.  A run that fails
becomes a failure outcome (:func:`failure_outcome`) instead of an exception,
so one crashed run can never abort the batch or lose its siblings' results.

Backends are registered by name, exactly like the radio/mobility/routing/
engine subsystems: :func:`register_execution_backend` admits external
implementations, and the built-in ``serial`` / ``process-pool`` /
``work-queue`` backends register themselves through the same door.
"""

from __future__ import annotations

import traceback
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel → backends)
    from repro.experiments.parallel import RunOutcome, RunSpec
    from repro.experiments.store import ResultStore


@dataclass(frozen=True)
class RetryPolicy:
    """Per-run failure handling of a campaign.

    ``retries`` is the number of *additional* attempts after the first
    failure; the delay before attempt ``n`` grows exponentially from
    ``backoff_base_s`` but never exceeds ``backoff_cap_s`` (bounded backoff —
    a long campaign must not sleep unboundedly between rounds).
    ``timeout_s`` is the wall-clock budget of one dispatched run; how strictly
    it is enforced is backend-specific (the work-queue lease, the pool's
    abandonment deadline; the in-process serial path cannot preempt a run).
    """

    retries: int = 0
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def delay_for(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based), bounded."""
        if attempt < 1 or self.backoff_base_s == 0.0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * 2.0 ** (attempt - 1))


@dataclass(frozen=True)
class BackendOptions:
    """Everything the executor knows that a backend factory might need.

    A structured options object (rather than ``**kwargs``) keeps factory
    signatures uniform so external backends receive the same information as
    the built-ins.
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    spool_dir: Optional[Union[str, Path]] = None
    poll_interval_s: float = 0.1


class ExecutionBackend(ABC):
    """Executes batches of run specs; yields outcomes as they complete."""

    #: Registry name of the backend (set by subclasses).
    name: ClassVar[str] = "abstract"

    #: A backend that owns durable result storage (the work-queue spool)
    #: exposes it here so the executor can adopt it as its cache store.
    store: Optional["ResultStore"] = None

    @abstractmethod
    def execute(
        self, items: Sequence[Tuple[int, "RunSpec"]]
    ) -> Iterator[Tuple[int, "RunOutcome"]]:
        """Run every item, yielding ``(index, outcome)`` as each finishes.

        Must yield exactly one outcome per item, in any order.  Failures are
        reported as failure outcomes (``outcome.error`` set, ``metrics``
        ``None``) — implementations must not raise for a failed *run*, only
        for backend misconfiguration.
        """


def failure_outcome(
    spec: "RunSpec", error: Union[str, BaseException], wall_time_s: float = 0.0
) -> "RunOutcome":
    """A per-spec failure outcome (the batch-abort replacement).

    Exceptions are rendered with their type name so ``repro`` output and the
    results service can distinguish a timeout from a crash at a glance.
    """
    from repro.experiments.parallel import RunOutcome

    if isinstance(error, BaseException):
        message = f"{type(error).__name__}: {error}"
        detail = traceback.format_exception_only(type(error), error)[-1].strip()
        if detail != message:  # pragma: no cover - exotic __str__ overrides
            message = detail
    else:
        message = str(error)
    return RunOutcome(
        spec=spec, metrics=None, wall_time_s=wall_time_s, error=message
    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
#: A factory maps the executor's options to a fresh backend instance.
BackendFactory = Callable[[BackendOptions], ExecutionBackend]

_FACTORIES: Dict[str, BackendFactory] = {}


def register_execution_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory; names are unique."""
    if name in _FACTORIES:
        raise ValueError(f"duplicate execution backend name {name!r}")
    _FACTORIES[name] = factory


def execution_backend_names() -> List[str]:
    """The registered backend names (sorted)."""
    return sorted(_FACTORIES)


def build_execution_backend(
    name: str, options: BackendOptions = BackendOptions()
) -> ExecutionBackend:
    """Build a fresh backend from its registry name and the executor options."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {execution_backend_names()}"
        ) from None
    return factory(options)
