"""Single-machine fan-out over a :class:`ProcessPoolExecutor`.

Outcomes are yielded as futures complete (not in submission order), so the
executor can cache each finished run immediately — a worker crashing later in
the batch can no longer lose results that already finished.  A crashed
worker process (``BrokenProcessPool``) fails only the runs that were in
flight; everything already completed has been yielded, and the executor's
retry loop re-dispatches the casualties on a fresh pool.

When ``timeout_s`` is set, a run whose future has not resolved within its
wall-clock budget (measured from submission, so queueing time counts toward
it) is abandoned with a ``timeout`` failure outcome.  A genuinely running
task cannot be killed through :mod:`concurrent.futures`; the pool is shut
down without waiting so the batch finishes promptly, and the orphaned worker
process exits on its own when (if) the run completes.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.experiments.backends.base import (
    ExecutionBackend,
    failure_outcome,
    register_execution_backend,
)
from repro.experiments.parallel import RunOutcome, RunSpec, execute_spec


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used for worker pools.

    Fork keeps the parent's ``sys.path`` (the tests and benchmarks rely on a
    conftest path insert rather than an installed package); fall back to the
    platform default where fork does not exist.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ProcessPoolBackend(ExecutionBackend):
    """Fan-out over ``workers`` local processes."""

    name = "process-pool"

    def __init__(self, workers: int = 2, timeout_s: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.timeout_s = timeout_s

    def execute(
        self, items: Sequence[Tuple[int, RunSpec]]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        items = list(items)
        if not items:
            return
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)), mp_context=pool_context()
        )
        timed_out = False
        try:
            submitted_at = time.monotonic()
            future_map: Dict[Future, Tuple[int, RunSpec]] = {
                pool.submit(execute_spec, spec): (index, spec)
                for index, spec in items
            }
            outstanding = set(future_map)
            while outstanding:
                poll = None
                if self.timeout_s is not None:
                    poll = max(
                        0.05, self.timeout_s - (time.monotonic() - submitted_at)
                    )
                done, outstanding = wait(
                    outstanding, timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, spec = future_map[future]
                    try:
                        yield index, future.result()
                    except Exception as exc:
                        yield index, failure_outcome(spec, exc)
                if (
                    self.timeout_s is not None
                    and not done
                    and time.monotonic() - submitted_at >= self.timeout_s
                ):
                    timed_out = True
                    for future in outstanding:
                        future.cancel()
                        index, spec = future_map[future]
                        yield index, failure_outcome(
                            spec,
                            f"timeout: run exceeded {self.timeout_s:g}s wall-clock budget",
                            wall_time_s=time.monotonic() - submitted_at,
                        )
                    outstanding = set()
        finally:
            # After a timeout we must not block on abandoned runs; otherwise
            # draining normally is the clean shutdown.
            pool.shutdown(wait=not timed_out, cancel_futures=True)


register_execution_backend(
    "process-pool",
    lambda options: ProcessPoolBackend(
        workers=options.workers, timeout_s=options.timeout_s
    ),
)
