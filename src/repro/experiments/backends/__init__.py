"""Pluggable execution backends for the campaign engine.

* :mod:`repro.experiments.backends.base` — the :class:`ExecutionBackend`
  contract, :class:`RetryPolicy`/:class:`BackendOptions`, per-spec failure
  outcomes and the open backend registry.
* :mod:`repro.experiments.backends.serial` — in-process reference execution.
* :mod:`repro.experiments.backends.process_pool` — single-machine fan-out
  over a fork-based process pool.
* :mod:`repro.experiments.backends.work_queue` — multi-worker (multi-host)
  execution over a shared filesystem spool, driven by ``repro worker``.

All backends are bit-identical on results: a run is fully determined by its
:class:`~repro.experiments.config.ScenarioConfig`, so *where* it executes can
never change *what* it computes (pinned by
``tests/experiments/test_backends.py``).
"""

from repro.experiments.backends.base import (
    BackendOptions,
    ExecutionBackend,
    RetryPolicy,
    build_execution_backend,
    execution_backend_names,
    failure_outcome,
    register_execution_backend,
)
from repro.experiments.backends.serial import SerialBackend
from repro.experiments.backends.process_pool import ProcessPoolBackend
from repro.experiments.backends.work_queue import (
    WorkQueueBackend,
    claim_next_job,
    process_job,
    run_worker,
)

__all__ = [
    "BackendOptions",
    "ExecutionBackend",
    "RetryPolicy",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "build_execution_backend",
    "claim_next_job",
    "execution_backend_names",
    "failure_outcome",
    "process_job",
    "register_execution_backend",
    "run_worker",
]
