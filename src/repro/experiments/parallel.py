"""Process-parallel sweep execution with deterministic seeds and caching.

Every figure of the paper's evaluation is a batch of independent simulation
runs (scheme × gateway count × device range × seed).  :class:`SweepExecutor`
is the single execution path for such batches: it takes picklable
:class:`RunSpec` objects, runs them serially (``workers=1``) or over a
``ProcessPoolExecutor``, optionally caches finished :class:`RunMetrics` on
disk keyed by a configuration hash, and returns :class:`RunOutcome` objects
in spec order.

Parallelism never changes results: each run is fully described by its
:class:`~repro.experiments.config.ScenarioConfig` (including the master seed
every random stream derives from), so the same spec produces bit-identical
metrics no matter which process executes it.  ``tests/experiments/
test_parallel.py`` pins this equivalence.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import RunMetrics
from repro.engine.config import EngineConfig
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.mobility.config import MobilityConfig
from repro.radio.config import RadioConfig
from repro.routing.config import RoutingConfig

#: The default radio/mobility/routing/engine sections, excluded from digests
#: for cache stability (configurations that predate each subsystem keep
#: their digests).
_DEFAULT_RADIO_DICT = asdict(RadioConfig())
_DEFAULT_MOBILITY_DICT = asdict(MobilityConfig())
_DEFAULT_ROUTING_DICT = asdict(RoutingConfig())
_DEFAULT_ENGINE_DICT = asdict(EngineConfig())

#: Derived seeds stay in the positive signed-64-bit range.
_SEED_SPACE = 2**63

#: Environment knob for the default worker count of :meth:`SweepExecutor.from_env`.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Part of every cache key.  Bump whenever simulation behaviour changes in a
#: way that makes archived RunMetrics stale for an unchanged configuration —
#: the configuration digest alone cannot see code changes.
CACHE_SCHEMA_VERSION = 1


def derive_run_seed(
    master_seed: int,
    scheme: str,
    num_gateways: int,
    device_range_m: float,
    replicate: int = 0,
) -> int:
    """A deterministic per-run seed from the sweep's master seed and run key.

    Hash-derived (not sequential) so that adding or reordering runs in a sweep
    never shifts the seed of an unrelated run, and distinct run keys get
    statistically independent streams.
    """
    payload = f"{int(master_seed)}:{scheme}:{int(num_gateways)}:{float(device_range_m)!r}:{int(replicate)}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_SPACE


def _trace_file_content_digest(path: str) -> str:
    """SHA-256 of a mobility trace file's bytes (cache key material).

    A trace-file scenario is only fully described by the *contents* of the
    replayed file — the path alone would let an edited file silently replay
    stale cached metrics.  An unreadable file gets a sentinel; the run itself
    will fail loudly later.
    """
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return "unreadable"


def config_digest(config: ScenarioConfig) -> str:
    """A stable hex digest of every field of ``config`` (cache key material).

    The ``radio``, ``mobility`` and ``routing`` sections are omitted while
    they hold their defaults (one channel fixed SF7; the London bus network;
    the hardcoded pre-refactor scheme parameters and FIFO tail-drop buffer)
    so that every configuration that existed before each subsystem keeps its
    historical digest — archived sweep caches stay valid and the "same
    digest → same RunMetrics" equivalence holds across the refactors.
    Non-default radio, mobility or routing settings change simulation
    behaviour and therefore the digest; a ``trace-file`` mobility section
    additionally digests the trace file's contents, since those *are* the
    scenario's mobility.
    """
    payload_dict = asdict(config)
    if payload_dict.get("radio") == _DEFAULT_RADIO_DICT:
        del payload_dict["radio"]
    if payload_dict.get("routing") == _DEFAULT_ROUTING_DICT:
        del payload_dict["routing"]
    if payload_dict.get("engine") == _DEFAULT_ENGINE_DICT:
        del payload_dict["engine"]
    mobility = payload_dict.get("mobility")
    if mobility == _DEFAULT_MOBILITY_DICT:
        del payload_dict["mobility"]
    elif mobility and mobility.get("model") == "trace-file":
        mobility["trace_file_sha256"] = _trace_file_content_digest(
            mobility["trace_file"]
        )
    payload = json.dumps(payload_dict, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of sweep work.

    ``nominal_gateways`` carries the paper's x-axis label when the deployed
    count in ``config`` is scaled down (see ``run_gateway_sweep``); the
    executor writes it back onto the resulting metrics.  ``replicate``
    distinguishes replications of otherwise identical configurations.
    """

    config: ScenarioConfig
    nominal_gateways: Optional[int] = None
    replicate: int = 0

    @property
    def key(self) -> Tuple[str, int, float, int]:
        """(scheme, reported gateway count, device range, replicate)."""
        gateways = (
            self.nominal_gateways
            if self.nominal_gateways is not None
            else self.config.num_gateways
        )
        return (self.config.scheme, gateways, self.config.device_range_m, self.replicate)

    def cache_key(self) -> str:
        """Filename-safe identity of this spec's result."""
        gateways = "n" if self.nominal_gateways is None else str(self.nominal_gateways)
        return (
            f"v{CACHE_SCHEMA_VERSION}-{config_digest(self.config)}"
            f"-{gateways}-{self.replicate}"
        )


@dataclass
class RunOutcome:
    """A finished (or cache-served) run."""

    spec: RunSpec
    metrics: RunMetrics
    wall_time_s: float
    from_cache: bool = False


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec in the current process (module-level, hence picklable)."""
    start = time.perf_counter()
    metrics = run_scenario(spec.config)
    if spec.nominal_gateways is not None:
        metrics.num_gateways = spec.nominal_gateways
    return RunOutcome(spec=spec, metrics=metrics, wall_time_s=time.perf_counter() - start)


def _pool_context() -> multiprocessing.context.BaseContext:
    # Fork keeps the parent's sys.path (the tests and benchmarks rely on a
    # conftest path insert rather than an installed package); fall back to the
    # platform default where fork does not exist.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class SweepExecutor:
    """Runs batches of :class:`RunSpec` serially or process-parallel.

    Parameters
    ----------
    workers:
        ``1`` executes in-process (the reference path used by equivalence
        tests); ``n > 1`` fans runs out over ``n`` worker processes.
    cache_dir:
        When set, finished metrics are pickled into this directory keyed by
        :meth:`RunSpec.cache_key`, and later executions of the same spec are
        served from disk.
    """

    def __init__(
        self, workers: int = 1, cache_dir: Optional[Union[str, Path]] = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir is not None else None
        )

    @classmethod
    def from_env(
        cls, default_workers: int = 1, cache_dir: Optional[Union[str, Path]] = None
    ) -> "SweepExecutor":
        """An executor sized by the ``REPRO_SWEEP_WORKERS`` environment variable."""
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        if raw.strip():
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = default_workers
        return cls(workers=workers, cache_dir=cache_dir)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[RunSpec]) -> List[RunOutcome]:
        """Execute every spec and return outcomes in spec order."""
        specs = list(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is not None:
                outcomes[index] = cached
            else:
                pending.append(index)

        if pending and self.workers == 1:
            for index in pending:
                outcomes[index] = execute_spec(specs[index])
        elif pending:
            pool_size = min(self.workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=_pool_context()
            ) as pool:
                futures = [(index, pool.submit(execute_spec, specs[index])) for index in pending]
                for index, future in futures:
                    outcomes[index] = future.result()

        for index in pending:
            self._store_cached(outcomes[index])
        return [outcome for outcome in outcomes if outcome is not None]

    def run_metrics(self, specs: Sequence[RunSpec]) -> List[RunMetrics]:
        """Like :meth:`run` but returning only the metrics."""
        return [outcome.metrics for outcome in self.run(specs)]

    # ------------------------------------------------------------------ #
    # Caching
    # ------------------------------------------------------------------ #
    def _cache_path(self, spec: RunSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.cache_key()}.pkl"

    def _load_cached(self, spec: RunSpec) -> Optional[RunOutcome]:
        path = self._cache_path(spec)
        if path is None or not path.is_file():
            return None
        try:
            with path.open("rb") as handle:
                metrics = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, OSError):
            return None
        if not isinstance(metrics, RunMetrics):
            return None
        return RunOutcome(spec=spec, metrics=metrics, wall_time_s=0.0, from_cache=True)

    def _store_cached(self, outcome: Optional[RunOutcome]) -> None:
        if outcome is None:
            return
        path = self._cache_path(outcome.spec)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Writer-unique temp name: concurrent sessions sharing a cache_dir
        # may finish the same spec at once, and a shared temp file would let
        # their writes interleave before the atomic rename.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("wb") as handle:
            pickle.dump(outcome.metrics, handle)
        tmp.replace(path)


# --------------------------------------------------------------------- #
# Spec builders
# --------------------------------------------------------------------- #
def sweep_specs(
    base_config: ScenarioConfig,
    gateway_counts: Sequence[int],
    schemes: Sequence[str],
    device_ranges_m: Sequence[float],
    gateway_scale: float = 1.0,
) -> List[RunSpec]:
    """The run specs of a (scheme × gateway count × device range) sweep.

    Mirrors the nesting order the serial sweep historically used so that
    executors preserve run-for-run comparability with older results.
    """
    if gateway_scale <= 0:
        raise ValueError("gateway_scale must be positive")
    specs: List[RunSpec] = []
    for device_range in device_ranges_m:
        for nominal_count in gateway_counts:
            actual_count = max(1, round(nominal_count * gateway_scale))
            for scheme in schemes:
                config = (
                    base_config.with_scheme(scheme)
                    .with_gateways(actual_count)
                    .with_device_range(device_range)
                )
                specs.append(RunSpec(config=config, nominal_gateways=nominal_count))
    return specs


def replication_specs(config: ScenarioConfig, num_replications: int) -> List[RunSpec]:
    """Specs for ``num_replications`` runs of one configuration.

    Each replicate's seed is derived with :func:`derive_run_seed`, so the set
    of seeds is a pure function of the configuration's master seed and key.
    """
    if num_replications < 1:
        raise ValueError(f"num_replications must be >= 1, got {num_replications}")
    specs: List[RunSpec] = []
    for replicate in range(num_replications):
        seed = derive_run_seed(
            config.seed,
            config.scheme,
            config.num_gateways,
            config.device_range_m,
            replicate,
        )
        specs.append(RunSpec(config=config.with_seed(seed), replicate=replicate))
    return specs
