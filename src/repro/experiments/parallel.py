"""Campaign execution with deterministic seeds, durable caching and retry.

Every figure of the paper's evaluation is a batch of independent simulation
runs (scheme × gateway count × device range × seed).  :class:`SweepExecutor`
is the single execution path for such batches: it takes picklable
:class:`RunSpec` objects, dispatches the ones that are not already in its
:class:`~repro.experiments.store.ResultStore` to a pluggable
:class:`~repro.experiments.backends.ExecutionBackend` (``serial``,
``process-pool``, or the multi-host ``work-queue``), persists each
:class:`RunMetrics` *the moment its run finishes*, retries failures with
bounded backoff, and returns :class:`RunOutcome` objects in spec order.

Three properties make campaigns safe at scale:

* **Parallelism never changes results** — each run is fully described by its
  :class:`~repro.experiments.config.ScenarioConfig` (including the master
  seed every random stream derives from), so the same spec produces
  bit-identical metrics no matter which backend, process or host executes
  it.  ``tests/experiments/test_backends.py`` pins the full equivalence
  matrix.
* **A crash loses nothing finished** — outcomes are stored as they complete,
  so a failing sibling (or a dying submitter) never discards completed work;
  re-running the same specs resumes from the store.
* **Failures are per-spec, never batch-wide** — a run that still fails after
  its retries becomes a failure outcome (``outcome.error``); by default
  :meth:`SweepExecutor.run` raises :class:`SweepExecutionError` *after* the
  rest of the batch completed and was cached.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.metrics import RunMetrics
from repro.engine.config import EngineConfig
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.experiments.serialization import scenario_from_dict, scenario_to_dict
from repro.experiments.store import ResultStore
from repro.mobility.config import MobilityConfig
from repro.radio.config import RadioConfig
from repro.routing.config import RoutingConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends → parallel)
    from repro.experiments.backends.base import ExecutionBackend, RetryPolicy

#: The default radio/mobility/routing/engine sections, excluded from digests
#: for cache stability (configurations that predate each subsystem keep
#: their digests).
_DEFAULT_RADIO_DICT = asdict(RadioConfig())
_DEFAULT_MOBILITY_DICT = asdict(MobilityConfig())
_DEFAULT_ROUTING_DICT = asdict(RoutingConfig())
_DEFAULT_ENGINE_DICT = asdict(EngineConfig())

#: Derived seeds stay in the positive signed-64-bit range.
_SEED_SPACE = 2**63

#: Environment knob for the default worker count of :meth:`SweepExecutor.from_env`.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Environment knob for the default backend of :meth:`SweepExecutor.from_env`.
BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"

#: Part of every cache key.  Bump whenever simulation behaviour changes in a
#: way that makes archived RunMetrics stale for an unchanged configuration —
#: the configuration digest alone cannot see code changes.
CACHE_SCHEMA_VERSION = 1


def derive_run_seed(
    master_seed: int,
    scheme: str,
    num_gateways: int,
    device_range_m: float,
    replicate: int = 0,
) -> int:
    """A deterministic per-run seed from the sweep's master seed and run key.

    Hash-derived (not sequential) so that adding or reordering runs in a sweep
    never shifts the seed of an unrelated run, and distinct run keys get
    statistically independent streams.
    """
    payload = f"{int(master_seed)}:{scheme}:{int(num_gateways)}:{float(device_range_m)!r}:{int(replicate)}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_SPACE


def _trace_file_content_digest(path: str) -> str:
    """SHA-256 of a mobility trace file's bytes (cache key material).

    A trace-file scenario is only fully described by the *contents* of the
    replayed file — the path alone would let an edited file silently replay
    stale cached metrics.  An unreadable file gets a per-path sentinel (two
    different broken paths must not collide on one cache key); the run itself
    will fail loudly later.
    """
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return f"unreadable:{path}"


def config_digest(config: ScenarioConfig) -> str:
    """A stable hex digest of every field of ``config`` (cache key material).

    The ``radio``, ``mobility`` and ``routing`` sections are omitted while
    they hold their defaults (one channel fixed SF7; the London bus network;
    the hardcoded pre-refactor scheme parameters and FIFO tail-drop buffer)
    so that every configuration that existed before each subsystem keeps its
    historical digest — archived sweep caches stay valid and the "same
    digest → same RunMetrics" equivalence holds across the refactors.
    Non-default radio, mobility or routing settings change simulation
    behaviour and therefore the digest; a ``trace-file`` mobility section
    additionally digests the trace file's contents, since those *are* the
    scenario's mobility.
    """
    payload_dict = asdict(config)
    if payload_dict.get("radio") == _DEFAULT_RADIO_DICT:
        del payload_dict["radio"]
    if payload_dict.get("routing") == _DEFAULT_ROUTING_DICT:
        del payload_dict["routing"]
    if payload_dict.get("engine") == _DEFAULT_ENGINE_DICT:
        del payload_dict["engine"]
    mobility = payload_dict.get("mobility")
    if mobility == _DEFAULT_MOBILITY_DICT:
        del payload_dict["mobility"]
    elif mobility and mobility.get("model") == "trace-file":
        mobility["trace_file_sha256"] = _trace_file_content_digest(
            mobility["trace_file"]
        )
    payload = json.dumps(payload_dict, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of sweep work.

    ``nominal_gateways`` carries the paper's x-axis label when the deployed
    count in ``config`` is scaled down (see ``run_gateway_sweep``); the
    executor writes it back onto the resulting metrics.  ``replicate``
    distinguishes replications of otherwise identical configurations.
    """

    config: ScenarioConfig
    nominal_gateways: Optional[int] = None
    replicate: int = 0

    @property
    def key(self) -> Tuple[str, int, float, int]:
        """(scheme, reported gateway count, device range, replicate)."""
        gateways = (
            self.nominal_gateways
            if self.nominal_gateways is not None
            else self.config.num_gateways
        )
        return (self.config.scheme, gateways, self.config.device_range_m, self.replicate)

    def cache_key(self) -> str:
        """Filename-safe identity of this spec's result."""
        gateways = "n" if self.nominal_gateways is None else str(self.nominal_gateways)
        return (
            f"v{CACHE_SCHEMA_VERSION}-{config_digest(self.config)}"
            f"-{gateways}-{self.replicate}"
        )


def spec_to_dict(spec: RunSpec) -> Dict[str, Any]:
    """The JSON wire format of a spec (work-queue jobs, the HTTP service).

    Built on the digest-stable scenario serialization, so a spec that crosses
    a process or host boundary resolves to the same cache key on both sides.
    """
    return {
        "scenario": scenario_to_dict(spec.config),
        "nominal_gateways": spec.nominal_gateways,
        "replicate": spec.replicate,
    }


def spec_from_dict(data: Mapping[str, Any]) -> RunSpec:
    """Rebuild a :class:`RunSpec` from :func:`spec_to_dict` output."""
    if "scenario" not in data:
        raise ValueError("run spec payload is missing the 'scenario' table")
    nominal = data.get("nominal_gateways")
    return RunSpec(
        config=scenario_from_dict(data["scenario"]),
        nominal_gateways=None if nominal is None else int(nominal),
        replicate=int(data.get("replicate", 0)),
    )


@dataclass
class RunOutcome:
    """A finished, cache-served or failed run.

    ``metrics`` is ``None`` exactly when ``error`` is set; :attr:`ok`
    distinguishes the two without null checks at call sites.  ``attempts``
    counts dispatches of this spec in the producing execution (1 = first try).
    """

    spec: RunSpec
    metrics: Optional[RunMetrics]
    wall_time_s: float
    from_cache: bool = False
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True for a run that produced metrics (fresh or cached)."""
        return self.error is None and self.metrics is not None


class SweepExecutionError(RuntimeError):
    """Raised when runs still fail after retries (the batch itself finished).

    Every *successful* sibling was stored before this is raised, so re-running
    the same specs resumes from the cache and recomputes nothing.
    """

    def __init__(self, failures: Sequence[RunOutcome], total: int) -> None:
        self.failures = list(failures)
        preview = "; ".join(
            f"{outcome.spec.key}: {outcome.error}" for outcome in self.failures[:3]
        )
        suffix = " …" if len(self.failures) > 3 else ""
        super().__init__(
            f"{len(self.failures)} of {total} runs failed after "
            f"{self.failures[0].attempts} attempt(s): {preview}{suffix} "
            "(completed runs are cached; re-running resumes without recomputation)"
        )


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec in the current process (module-level, hence picklable)."""
    start = time.perf_counter()
    metrics = run_scenario(spec.config)
    if spec.nominal_gateways is not None:
        metrics.num_gateways = spec.nominal_gateways
    return RunOutcome(spec=spec, metrics=metrics, wall_time_s=time.perf_counter() - start)


class SweepExecutor:
    """Runs batches of :class:`RunSpec` over a pluggable execution backend.

    Parameters
    ----------
    workers:
        Sizes the default backend: ``1`` executes in-process over the
        ``serial`` backend (the reference path used by equivalence tests);
        ``n > 1`` fans runs out over a ``process-pool`` of ``n`` workers.
    cache_dir:
        When set, finished metrics live in a content-addressed
        :class:`ResultStore` under this directory, keyed by
        :meth:`RunSpec.cache_key`; later executions of the same spec are
        served from disk.  When unset and the backend owns durable storage
        (the work-queue spool), that store is adopted instead.
    backend:
        A registry name (``serial`` / ``process-pool`` / ``work-queue`` /
        anything registered via
        :func:`~repro.experiments.backends.register_execution_backend`) or a
        ready :class:`ExecutionBackend` instance.  ``None`` picks from
        ``workers`` as above.
    retry:
        A :class:`~repro.experiments.backends.RetryPolicy`; the default makes
        no retries and sets no timeout.  Failures that survive their retries
        become failure outcomes, and :meth:`run` raises
        :class:`SweepExecutionError` unless ``allow_failures=True``.
    spool_dir:
        The shared spool directory of the ``work-queue`` backend (ignored by
        backends that do not need one).
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        retry: Optional["RetryPolicy"] = None,
        spool_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        from repro.experiments.backends.base import (
            BackendOptions,
            ExecutionBackend,
            RetryPolicy,
            build_execution_backend,
        )

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.retry = RetryPolicy() if retry is None else retry
        if backend is None:
            backend = "serial" if self.workers == 1 else "process-pool"
        if isinstance(backend, str):
            backend = build_execution_backend(
                backend,
                BackendOptions(
                    workers=self.workers,
                    timeout_s=self.retry.timeout_s,
                    spool_dir=spool_dir,
                ),
            )
        if not isinstance(backend, ExecutionBackend):
            raise TypeError(
                f"backend must be a registry name or an ExecutionBackend, "
                f"got {type(backend).__name__}"
            )
        self.backend = backend
        if cache_dir is not None:
            self.store: Optional[ResultStore] = ResultStore(cache_dir)
        else:
            self.store = backend.store
        self.cache_dir = self.store.root if self.store is not None else None

    @classmethod
    def from_env(
        cls,
        default_workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        retry: Optional["RetryPolicy"] = None,
        spool_dir: Optional[Union[str, Path]] = None,
    ) -> "SweepExecutor":
        """An executor sized by ``REPRO_SWEEP_WORKERS``/``REPRO_SWEEP_BACKEND``."""
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        if raw.strip():
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = default_workers
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
        return cls(
            workers=workers,
            cache_dir=cache_dir,
            backend=backend,
            retry=retry,
            spool_dir=spool_dir,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self, specs: Sequence[RunSpec], *, allow_failures: bool = False
    ) -> List[RunOutcome]:
        """Execute every spec and return outcomes in spec order.

        Every successful run is stored the moment it completes, before any
        failure is reported.  When runs still fail after the retry policy is
        exhausted, raises :class:`SweepExecutionError` — or, with
        ``allow_failures=True``, returns their failure outcomes in place.
        """
        specs = list(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        for index, outcome in self._execute(specs):
            if outcomes[index] is not None:
                raise RuntimeError(
                    f"executor bookkeeping error: spec {index} produced two outcomes"
                )
            outcomes[index] = outcome
        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            # A bookkeeping bug must fail loudly: silently returning fewer
            # outcomes than specs would let downstream zips misalign results.
            raise RuntimeError(
                f"executor bookkeeping error: {len(missing)} of {len(specs)} specs "
                f"produced no outcome (first missing indices: {missing[:5]})"
            )
        complete = [outcome for outcome in outcomes if outcome is not None]
        failures = [outcome for outcome in complete if not outcome.ok]
        if failures and not allow_failures:
            raise SweepExecutionError(failures, total=len(specs))
        return complete

    def run_metrics(self, specs: Sequence[RunSpec]) -> List[RunMetrics]:
        """Like :meth:`run` but returning only the metrics (raises on failure)."""
        return [outcome.metrics for outcome in self.run(specs)]

    def iter_outcomes(
        self, specs: Sequence[RunSpec], *, allow_failures: bool = False
    ) -> Iterator[RunOutcome]:
        """Yield outcomes *as runs complete* (cache hits first, then by finish).

        The streaming counterpart of :meth:`run` for aggregations that must
        not hold a whole campaign in memory: consumers see each outcome once,
        in completion order rather than spec order.  Failure outcomes are
        collected and raised as one :class:`SweepExecutionError` after the
        batch drains (they are yielded instead under ``allow_failures=True``).
        """
        specs = list(specs)
        seen = 0
        failures: List[RunOutcome] = []
        for _, outcome in self._execute(specs):
            seen += 1
            if outcome.ok or allow_failures:
                yield outcome
            else:
                failures.append(outcome)
        if seen != len(specs):
            raise RuntimeError(
                f"executor bookkeeping error: saw {seen} outcomes for {len(specs)} specs"
            )
        if failures:
            raise SweepExecutionError(failures, total=len(specs))

    def iter_run_metrics(self, specs: Sequence[RunSpec]) -> Iterator[RunMetrics]:
        """Stream metrics in completion order (raises on any failure)."""
        for outcome in self.iter_outcomes(specs):
            yield outcome.metrics

    def _execute(
        self, specs: Sequence[RunSpec]
    ) -> Iterator[Tuple[int, RunOutcome]]:
        """Cache-check, dispatch, store-on-completion and retry loop.

        Yields ``(index, outcome)`` pairs: cache hits immediately, fresh runs
        as their backend completes them (each stored *before* it is yielded),
        and — only after the retry budget is spent — per-spec failure
        outcomes.  A crash in one run therefore never discards a sibling's
        finished result.
        """
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is not None:
                yield index, cached
            else:
                pending.append(index)

        attempt = 1
        while pending:
            failed: Dict[int, RunOutcome] = {}
            for index, outcome in self.backend.execute(
                [(index, specs[index]) for index in pending]
            ):
                outcome.attempts = attempt
                if outcome.ok:
                    self._store_cached(outcome)
                    yield index, outcome
                else:
                    failed[index] = outcome
            if not failed:
                return
            if attempt > self.retry.retries:
                for index in sorted(failed):
                    yield index, failed[index]
                return
            time.sleep(self.retry.delay_for(attempt))
            attempt += 1
            pending = sorted(failed)

    # ------------------------------------------------------------------ #
    # Caching
    # ------------------------------------------------------------------ #
    def _load_cached(self, spec: RunSpec) -> Optional[RunOutcome]:
        if self.store is None:
            return None
        metrics = self.store.load(spec.cache_key())
        if metrics is None:
            return None
        return RunOutcome(spec=spec, metrics=metrics, wall_time_s=0.0, from_cache=True)

    def _store_cached(self, outcome: Optional[RunOutcome]) -> None:
        if outcome is None or not outcome.ok or self.store is None:
            return
        self.store.store(outcome.spec.cache_key(), outcome.metrics)


# --------------------------------------------------------------------- #
# Spec builders
# --------------------------------------------------------------------- #
def sweep_specs(
    base_config: ScenarioConfig,
    gateway_counts: Sequence[int],
    schemes: Sequence[str],
    device_ranges_m: Sequence[float],
    gateway_scale: float = 1.0,
) -> List[RunSpec]:
    """The run specs of a (scheme × gateway count × device range) sweep.

    Mirrors the nesting order the serial sweep historically used so that
    executors preserve run-for-run comparability with older results.
    """
    if gateway_scale <= 0:
        raise ValueError("gateway_scale must be positive")
    specs: List[RunSpec] = []
    for device_range in device_ranges_m:
        for nominal_count in gateway_counts:
            actual_count = max(1, round(nominal_count * gateway_scale))
            for scheme in schemes:
                config = (
                    base_config.with_scheme(scheme)
                    .with_gateways(actual_count)
                    .with_device_range(device_range)
                )
                specs.append(RunSpec(config=config, nominal_gateways=nominal_count))
    return specs


def replication_specs(config: ScenarioConfig, num_replications: int) -> List[RunSpec]:
    """Specs for ``num_replications`` runs of one configuration.

    Each replicate's seed is derived with :func:`derive_run_seed`, so the set
    of seeds is a pure function of the configuration's master seed and key.
    """
    if num_replications < 1:
        raise ValueError(f"num_replications must be >= 1, got {num_replications}")
    specs: List[RunSpec] = []
    for replicate in range(num_replications):
        seed = derive_run_seed(
            config.seed,
            config.scheme,
            config.num_gateways,
            config.device_range_m,
            replicate,
        )
        specs.append(RunSpec(config=config.with_seed(seed), replicate=replicate))
    return specs
