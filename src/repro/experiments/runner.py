"""The event-driven MLoRa-SS simulation engine.

The engine mirrors the evaluation setup of Sec. VII-A:

* every bus carries a LoRa device that generates a 20-byte message every
  3 minutes while it is in service and stores it in a FIFO queue;
* at every message generation (and at retransmission opportunities after a
  failed uplink) the device bundles up to 12 queued messages, appends its
  RCA-ETX value (and queue length for ROBC) and transmits with its assigned
  spreading factor and channel (the paper's setting: everyone on SF7, one
  channel), subject to the 1 % duty cycle;
* gateways within range decode the frame unless a same-SF same-channel
  collision without capture destroys it; the network server deduplicates and
  acknowledges instantly, clearing the acknowledged messages from the queue;
* every *listening* device within device-to-device range overhears the frame
  and consults the forwarding scheme; a positive decision triggers a
  device-to-device handover frame (also duty-cycle constrained) that moves —
  or, for the DTN baselines, copies — part of the overhearing device's queue
  onto the transmitter;
* failed uplinks are retried up to eight times, each retry waiting out the
  duty-cycle off-time.

Everything radio — airtime per SF, sensitivity per SF, the collision/capture
model, channel orthogonality, collision-registry pruning — lives in
:class:`~repro.radio.medium.RadioMedium`; this module is pure orchestration:
it decides *when* frames are sent and what the MAC/routing layers do with the
outcomes, never *how* the medium treats them.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, Optional

from repro.analysis.metrics import RunMetrics, compute_run_metrics
from repro.experiments.config import ScenarioConfig
from repro.experiments.scenario import BuiltScenario, build_scenario
from repro.mac.device import EndDevice
from repro.mac.frames import DataMessage, UplinkPacket
from repro.mac.network_server import NetworkServer
from repro.phy.collision import Transmission
from repro.radio.medium import RadioMedium
from repro.sim.events import ATTEMPT_PRIORITY, COMPLETION_PRIORITY
from repro.sim.kernel import Simulator


class MLoRaSimulation:
    """One complete simulation run of a built scenario."""

    def __init__(
        self, scenario: BuiltScenario, medium: Optional[RadioMedium] = None
    ) -> None:
        self.scenario = scenario
        self.config = scenario.config
        self.simulator = Simulator()
        self.server = NetworkServer()
        self.medium = medium or RadioMedium(
            config=self.config.radio,
            reception_rng=scenario.streams.stream("reception"),
        )
        self._attempt_scheduled: Dict[str, bool] = {
            device_id: False for device_id in scenario.devices
        }
        # Hoisted once: consulted on every uplink; when False the neighbour
        # overhear fan-out (range query + per-neighbour listening checks) is
        # skipped entirely — plain LoRaWAN pays nothing for the routing hook.
        self._uses_forwarding = scenario.scheme.uses_forwarding
        self._handover_count = 0
        self._handed_over_messages = 0

    # ------------------------------------------------------------------ #
    # Run control
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        """Execute the scenario and return the run metrics."""
        self._schedule_generation_processes()
        self.simulator.run(until=self.config.duration_s)
        self._account_idle_energy()
        return compute_run_metrics(
            scheme=self.config.scheme,
            num_gateways=self.config.num_gateways,
            device_range_m=self.config.device_range_m,
            duration_s=self.config.duration_s,
            devices=list(self.scenario.devices.values()),
            server=self.server,
        )

    # ------------------------------------------------------------------ #
    # Message generation
    # ------------------------------------------------------------------ #
    def _schedule_generation_processes(self) -> None:
        interval = self.config.device.message_interval_s
        for device_id, trace in self.scenario.traces.items():
            start = max(trace.start_time, 0.0)
            if start >= self.config.duration_s:
                continue
            time = start
            end = min(trace.end_time, self.config.duration_s)
            while time < end:
                self.simulator.schedule(
                    time,
                    self._on_generation_tick,
                    payload=device_id,
                    priority=ATTEMPT_PRIORITY,
                )
                time += interval

    def _on_generation_tick(self, device_id: str) -> None:
        device = self.scenario.devices[device_id]
        now = self.simulator.now
        trace = self.scenario.traces[device_id]
        if not trace.is_active(now):
            return
        device.generate_message(now)
        self._attempt_uplink(device_id)

    # ------------------------------------------------------------------ #
    # Uplink attempts
    # ------------------------------------------------------------------ #
    def _schedule_attempt(self, device_id: str, time: float) -> None:
        if self._attempt_scheduled.get(device_id):
            return
        if time >= self.config.duration_s:
            return
        self._attempt_scheduled[device_id] = True
        self.simulator.schedule(
            max(time, self.simulator.now),
            self._on_scheduled_attempt,
            payload=device_id,
            priority=ATTEMPT_PRIORITY,
        )

    def _on_scheduled_attempt(self, device_id: str) -> None:
        self._attempt_scheduled[device_id] = False
        self._attempt_uplink(device_id)

    def _attempt_uplink(self, device_id: str) -> None:
        device = self.scenario.devices[device_id]
        now = self.simulator.now
        trace = self.scenario.traces[device_id]
        if not trace.is_active(now):
            return
        # TTL buffer policies expire stale messages here, so a queue holding
        # only expired data reads as empty (no-op for the default policy).
        device.queue.expire(now)
        if not device.has_data():
            return
        if not device.can_transmit(now):
            self._schedule_attempt(device_id, device.next_transmission_time)
            return
        self._transmit_uplink(device)

    def _transmit_uplink(self, device: EndDevice) -> None:
        now = self.simulator.now
        topology = self.scenario.topology
        scheme = self.scenario.scheme

        # The transmission slot doubles as the RCA-ETX observation point: the
        # device measures its current sink capacity and refreshes its RPST.
        gateways_in_range = topology.gateways_in_range(device.device_id, now)
        sink_capacity = max(
            (link.capacity_bps for _, link in gateways_in_range), default=0.0
        )
        device.rca_etx.observe_transmission_slot(now, sink_capacity, wait_s=0.0)
        # Stateful schemes (PRoPHET delivery predictabilities) observe the
        # same slot; the default implementation is a no-op.
        scheme.observe_transmission_slot(device.device_id, sink_capacity > 0.0, now)

        packet = device.build_uplink(now, include_queue_length=scheme.requires_queue_length)
        airtime_s = self.medium.airtime_s(packet.payload_bytes, device.spreading_factor)
        device.record_uplink(now, airtime_s)

        rssi_by_receiver: Dict[str, float] = {}
        for gateway_id, link in gateways_in_range:
            if self.scenario.gateways[gateway_id].listens_on(device.channel):
                rssi_by_receiver[gateway_id] = link.rssi_dbm
        overhearers: Dict[str, float] = {}
        if self._uses_forwarding:
            for neighbour_id, link in topology.neighbours(device.device_id, now):
                neighbour = self.scenario.devices[neighbour_id]
                # A single-radio neighbour only hears frames on its own
                # commissioned channel and spreading factor (trivially true in
                # the paper's shared-SF7 single-channel setting).
                if (
                    neighbour.channel == device.channel
                    and neighbour.spreading_factor == device.spreading_factor
                    and neighbour.is_listening(now)
                ):
                    rssi_by_receiver[neighbour_id] = link.rssi_dbm
                    overhearers[neighbour_id] = link.rssi_dbm

        transmission = self.medium.transmit(
            sender=device.device_id,
            now=now,
            payload_bytes=packet.payload_bytes,
            rssi_by_receiver=rssi_by_receiver,
            spreading_factor=device.spreading_factor,
            channel=device.channel,
            airtime_s=airtime_s,
        )
        self.simulator.schedule(
            now + airtime_s,
            self._on_uplink_complete,
            payload=(device.device_id, packet, transmission, overhearers),
            priority=COMPLETION_PRIORITY,
        )

    # ------------------------------------------------------------------ #
    # Uplink resolution
    # ------------------------------------------------------------------ #
    def _on_uplink_complete(self, payload) -> None:
        device_id, packet, transmission, overhearers = payload
        device = self.scenario.devices[device_id]
        now = self.simulator.now

        delivered_gateway = self.medium.resolve_gateway_reception(
            transmission, self.scenario.gateways
        )
        if delivered_gateway is not None:
            ack = self.server.process_uplink(packet, delivered_gateway, now)
            self.scenario.gateways[delivered_gateway].receive(packet)
            device.on_acknowledged(ack.acked_message_ids)
            # Keep draining the backlog: a device with more queued data uses
            # its next duty-cycle opportunity instead of waiting for the next
            # generation tick.
            if device.has_data():
                self._schedule_attempt(device_id, device.next_transmission_time)
        else:
            retry_allowed = device.on_uplink_failed()
            if retry_allowed and device.has_data():
                self._schedule_attempt(device_id, device.next_transmission_time)

        if self._uses_forwarding:
            self._resolve_overhearing(device, packet, transmission, overhearers)

        self.medium.prune(now)

    # ------------------------------------------------------------------ #
    # Overhearing and handovers
    # ------------------------------------------------------------------ #
    def _resolve_overhearing(
        self,
        sender: EndDevice,
        packet: UplinkPacket,
        transmission: Transmission,
        overhearers: Dict[str, float],
    ) -> None:
        now = self.simulator.now
        scheme = self.scenario.scheme
        capacity_model = self.scenario.topology.capacity_model_for(sender.device_id)
        for neighbour_id, rssi in overhearers.items():
            neighbour = self.scenario.devices[neighbour_id]
            if not self.medium.is_decodable(transmission, neighbour_id):
                continue
            decision = scheme.on_overhear(neighbour, packet, rssi, capacity_model, now)
            if not decision.forward:
                continue
            self._perform_handover(neighbour, sender, decision.message_limit, decision.copy)

    def _perform_handover(
        self, giver: EndDevice, taker: EndDevice, limit: int, copy: bool
    ) -> None:
        now = self.simulator.now
        if not giver.can_transmit(now):
            # The duty cycle forbids an immediate handover frame; the
            # opportunity is simply lost, as it would be on hardware.
            return
        if not self.scenario.topology.in_contact(giver.device_id, taker.device_id, now):
            return
        messages = giver.transferable_messages(taker.device_id, limit, now=now)
        if not messages:
            return

        payload_bytes = 13 + sum(m.size_bytes for m in messages)
        airtime_s = self.medium.airtime_s(payload_bytes, giver.spreading_factor)
        giver.record_handover_transmission(now, airtime_s)

        # The handover frame occupies the giver's uplink channel, so it
        # interferes with any gateway that can hear the giver on it.  This is
        # the congestion cost of device-to-device forwarding.
        handover_rssi = {
            gateway_id: link.rssi_dbm
            for gateway_id, link in self.scenario.topology.gateways_in_range(
                giver.device_id, now
            )
            if self.scenario.gateways[gateway_id].listens_on(giver.channel)
        }
        if handover_rssi:
            self.medium.transmit(
                sender=giver.device_id,
                now=now,
                payload_bytes=payload_bytes,
                rssi_by_receiver=handover_rssi,
                spreading_factor=giver.spreading_factor,
                channel=giver.channel,
                airtime_s=airtime_s,
            )

        if copy:
            transferred = [self._clone_message(m) for m in messages]
        else:
            transferred = giver.release_messages(m.message_id for m in messages)
        accepted = taker.accept_handover(transferred, giver.device_id, now=now)
        self._handover_count += 1
        self._handed_over_messages += accepted
        # The new carrier uploads at its next opportunity; make sure one exists
        # even if its own generation tick is far away.
        self._schedule_attempt(taker.device_id, taker.next_transmission_time)

    @staticmethod
    def _clone_message(message: DataMessage) -> DataMessage:
        """An independent copy of a message (replication keeps ids, so the
        server still deduplicates; hop counts evolve per copy)."""
        return dataclass_replace(message)

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #
    def _account_idle_energy(self) -> None:
        account_idle_energy(self.scenario, self.config.duration_s)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def handover_count(self) -> int:
        """Number of device-to-device handover frames sent."""
        return self._handover_count

    @property
    def handed_over_messages(self) -> int:
        """Number of messages that changed carrier at least once via this engine."""
        return self._handed_over_messages


def account_idle_energy(scenario: BuiltScenario, duration_s: float) -> None:
    """Charge every device for its in-window idle (non-transmitting) time.

    Shared by both engines: a device is powered while its trace is in service
    and inside the simulated window; whatever part of that it did not spend
    transmitting splits between listening and sleep according to its device
    class.

    The recorded airtime can overshoot the window: a frame whose transmission
    starts just before ``duration_s`` keeps transmitting past it, and the full
    airtime is on the duty-cycle books.  Only the *last* frame can straddle
    the boundary (the mandatory off-time after any frame dwarfs the frame
    itself, so a device's own frames never overlap), so the overshoot is
    exactly ``last_uplink_end - active_end`` and is clipped from the TX time
    charged against the active interval.
    """
    for device_id, device in scenario.devices.items():
        trace = scenario.traces[device_id]
        active_start = min(trace.start_time, duration_s)
        active_end = min(trace.end_time, duration_s)
        active = max(active_end - active_start, 0.0)
        tx_time = device.duty_cycle.total_airtime_s
        overshoot = max(device.last_uplink_end - active_end, 0.0)
        device.account_idle_period(max(active - (tx_time - overshoot), 0.0))


def run_scenario(config: ScenarioConfig) -> RunMetrics:
    """Build and run a scenario in one call.

    The engine comes from the configuration's ``engine`` section, with the
    ``REPRO_ENGINE`` environment variable overriding the default (see
    :func:`repro.engine.resolve_engine_name`).
    """
    from repro.engine import resolve_engine_name

    scenario = build_scenario(config)
    if resolve_engine_name(config) == "array":
        from repro.engine.array_engine import ArrayMLoRaSimulation

        return ArrayMLoRaSimulation(scenario).run()
    return MLoRaSimulation(scenario).run()
