"""Named scenario presets and figure sweeps — the single catalogue the
``repro`` CLI, the examples and the docs are all built from.

Two registries live here:

* **Scenario presets** (:class:`ScenarioPreset`): one fully-specified
  :class:`~repro.experiments.config.ScenarioConfig` per paper setting (urban,
  rural, the full-scale Sec. VII-A scenario, device-class and placement
  ablation points) plus synthetic variants that go beyond the paper (denser
  gateway deployments, larger fleets, the DTN baseline schemes).  Presets are
  plain configurations — ``repro run <name>`` and
  ``run_scenario(get_preset(name).config)`` are the same experiment by
  construction.
* **Sweep presets** (:class:`SweepPreset`): one entry per paper figure
  (Figs. 7–13) and per ablation (α, device class, gateway placement).  Each
  wraps the corresponding :mod:`repro.experiments.figures` pipeline and
  returns a uniform :class:`SweepArtifact` (printable text + tabular rows)
  so the CLI and reporting layer can treat every figure alike.

``render_scenarios_markdown`` generates ``docs/scenarios.md`` from these
registries; a test pins the file to the generated text so the documentation
cannot drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    BENCHMARK_SCALE,
    CAMPAIGN_SCALE,
    SMOKE_SCALE,
    ReproductionScale,
    ablation_alpha,
    ablation_device_class,
    ablation_gateway_placement,
    figure07_bus_network,
    figure08_delay,
    figure09_throughput,
    figure10_urban_timeseries,
    figure11_rural_timeseries,
    figure12_hops,
    figure13_overhead,
    run_density_sweep,
    run_mobility_sweep,
    run_multisf_sweep,
    run_routing_sweep,
)
from repro.experiments.parallel import SweepExecutor
from repro.experiments.reporting import (
    format_bus_network,
    format_figure_rows,
    format_metric_comparison,
    format_timeseries,
)
from repro.experiments.sweeps import RURAL_DEVICE_RANGE_M, URBAN_DEVICE_RANGE_M
from repro.mobility.config import MobilityConfig
from repro.mobility.london import DAY_SECONDS
from repro.radio.config import RadioConfig
from repro.routing.config import BufferConfig, RoutingConfig

#: Named execution scales for ``repro sweep --scale <name>``.
SCALE_PRESETS: Dict[str, ReproductionScale] = {
    "smoke": SMOKE_SCALE,
    "benchmark": BENCHMARK_SCALE,
    "campaign": CAMPAIGN_SCALE,
}


# --------------------------------------------------------------------- #
# Scenario presets
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioPreset:
    """A named, documented, ready-to-run scenario configuration."""

    name: str
    description: str
    config: ScenarioConfig
    #: Which paper figure/section this reproduces ("" for synthetic variants).
    figure: str = ""
    tags: Tuple[str, ...] = ()


_PRESETS: Dict[str, ScenarioPreset] = {}


def register_preset(preset: ScenarioPreset) -> ScenarioPreset:
    """Add ``preset`` to the registry; names are unique."""
    if preset.name in _PRESETS:
        raise ValueError(f"duplicate scenario preset name {preset.name!r}")
    if preset.config.name != preset.name:
        raise ValueError(
            f"preset {preset.name!r} wraps a config named {preset.config.name!r}; "
            "the two must match so run artifacts are traceable to the preset"
        )
    _PRESETS[preset.name] = preset
    return preset


def get_preset(name: str) -> ScenarioPreset:
    """Look a preset up by name; raises ``KeyError`` with the catalogue."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario preset {name!r}; available: {preset_names()}"
        ) from None


def preset_names() -> List[str]:
    """All registered preset names, sorted."""
    return sorted(_PRESETS)


def iter_presets() -> List[ScenarioPreset]:
    """All registered presets in name order."""
    return [_PRESETS[name] for name in preset_names()]


def _paper_point(
    name: str,
    *,
    spatial_scale: float,
    duration_s: float,
    nominal_gateways: int,
    device_range_m: float,
    scheme: str = "robc",
    seed: int = 7,
    **overrides: Any,
) -> ScenarioConfig:
    """One operating point of the paper's evaluation grid.

    Mirrors :meth:`ReproductionScale.base_config` + ``sweep_specs`` exactly:
    the full-size scenario is density-preservingly shrunk and the nominal
    (paper x-axis) gateway count is scaled the same way, so a preset run is
    identical to the matching point of a figure sweep up to the scenario
    ``name`` field (which does not influence simulation).  The sync between
    the two code paths is pinned by ``tests/experiments/test_registry.py::
    TestPresets::test_paper_points_match_sweep_spec_configs``.
    """
    full = ScenarioConfig(name=name, seed=seed, duration_s=duration_s)
    config = full.scaled(spatial_scale) if spatial_scale < 1.0 else full
    return replace(
        config,
        num_gateways=max(1, round(nominal_gateways * spatial_scale)),
        device_range_m=device_range_m,
        scheme=scheme,
        **overrides,
    )


def _smoke_point(name: str, device_range_m: float) -> ScenarioConfig:
    """A sub-second scenario for CI and the CLI smoke/equivalence tests."""
    return ScenarioConfig(
        name=name,
        seed=11,
        duration_s=1800.0,
        area_km2=20.0,
        num_gateways=3,
        num_routes=4,
        trips_per_route=2,
        stops_per_route=5,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=device_range_m,
        scheme="robc",
    )


# Paper settings ------------------------------------------------------- #
register_preset(ScenarioPreset(
    name="urban",
    description=(
        "The paper's urban setting (500 m device-to-device range) at benchmark "
        "scale: a 60 km² slice of the full scenario, 4 simulated hours, the "
        "70-gateway operating point, ROBC forwarding.  Runs in seconds."
    ),
    figure="Figs. 8/9 urban curve, 70-gateway point",
    tags=("paper", "urban"),
    config=_paper_point(
        "urban", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
    ),
))

register_preset(ScenarioPreset(
    name="rural",
    description=(
        "The paper's rural setting (1000 m device-to-device range) at benchmark "
        "scale; otherwise identical to the `urban` preset."
    ),
    figure="Figs. 8/9 rural curve, 70-gateway point",
    tags=("paper", "rural"),
    config=_paper_point(
        "rural", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=RURAL_DEVICE_RANGE_M,
    ),
))

register_preset(ScenarioPreset(
    name="urban-full",
    description=(
        "The full-scale Sec. VII-A scenario, urban setting: 600 km², the whole "
        "synthetic London bus fleet, 60 gateways, 24 simulated hours.  "
        "Cluster-sized — expect a long run; prefer `urban` for interactive use."
    ),
    figure="Sec. VII-A full-scale scenario (urban)",
    tags=("paper", "urban", "full-scale"),
    config=_paper_point(
        "urban-full", spatial_scale=1.0, duration_s=DAY_SECONDS,
        nominal_gateways=60, device_range_m=URBAN_DEVICE_RANGE_M,
    ),
))

register_preset(ScenarioPreset(
    name="rural-full",
    description=(
        "The full-scale Sec. VII-A scenario, rural setting (1000 m range); "
        "otherwise identical to `urban-full`."
    ),
    figure="Sec. VII-A full-scale scenario (rural)",
    tags=("paper", "rural", "full-scale"),
    config=_paper_point(
        "rural-full", spatial_scale=1.0, duration_s=DAY_SECONDS,
        nominal_gateways=60, device_range_m=RURAL_DEVICE_RANGE_M,
    ),
))

# Ablation points ------------------------------------------------------ #
register_preset(ScenarioPreset(
    name="urban-class-a",
    description=(
        "The `urban` preset with Queue-based Class-A devices instead of "
        "Modified Class-C: the energy/performance trade-off of Sec. VII-C."
    ),
    figure="Sec. VII-C queue-based Class-A ablation",
    tags=("paper", "urban", "ablation"),
    config=replace(
        _paper_point(
            "urban-class-a", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        device_class="queue-based-class-a",
    ),
))

register_preset(ScenarioPreset(
    name="urban-random-placement",
    description=(
        "The `urban` preset with uniform-random gateway placement instead of "
        "the paper's grid: the placement sensitivity discussion of Sec. VII-C."
    ),
    figure="Sec. VII-C gateway-placement ablation",
    tags=("paper", "urban", "ablation"),
    config=replace(
        _paper_point(
            "urban-random-placement", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        gateway_placement="random",
    ),
))

# Synthetic variants beyond the paper ---------------------------------- #
register_preset(ScenarioPreset(
    name="dense-gateways",
    description=(
        "Urban setting with double the paper's maximum gateway density "
        "(nominal 140 gateways over the full area): where extra infrastructure "
        "stops paying off."
    ),
    tags=("synthetic", "urban"),
    config=_paper_point(
        "dense-gateways", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=140, device_range_m=URBAN_DEVICE_RANGE_M,
    ),
))

register_preset(ScenarioPreset(
    name="sparse-gateways",
    description=(
        "Urban setting with half the paper's minimum gateway density "
        "(nominal 20 gateways): a severely disconnected deployment where "
        "store-carry-forward does most of the work."
    ),
    tags=("synthetic", "urban"),
    config=_paper_point(
        "sparse-gateways", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=20, device_range_m=URBAN_DEVICE_RANGE_M,
    ),
))

register_preset(ScenarioPreset(
    name="mega-fleet",
    description=(
        "Urban setting with double the bus-route density (and hence fleet "
        "size): more contact opportunities per message, heavier channel load."
    ),
    tags=("synthetic", "urban"),
    config=_paper_point(
        "mega-fleet", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        num_routes=24,
    ),
))

register_preset(ScenarioPreset(
    name="epidemic-urban",
    description=(
        "Urban setting under the classic epidemic DTN baseline (unbounded "
        "message copying) instead of the paper's schemes."
    ),
    tags=("synthetic", "urban", "dtn"),
    config=_paper_point(
        "epidemic-urban", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        scheme="epidemic",
    ),
))

register_preset(ScenarioPreset(
    name="spray-and-wait-urban",
    description=(
        "Urban setting under binary spray-and-wait (bounded-copy DTN "
        "baseline) instead of the paper's schemes."
    ),
    tags=("synthetic", "urban", "dtn"),
    config=_paper_point(
        "spray-and-wait-urban", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        scheme="spray-and-wait",
    ),
))

register_preset(ScenarioPreset(
    name="urban-multisf",
    description=(
        "The `urban` preset on a realistic EU868-style radio plan: three "
        "uplink channels and distance-based spreading factors (SF7 near a "
        "gateway through SF12 at the cell edge) instead of the paper's "
        "single shared SF7 channel.  Cross-channel and cross-SF frames no "
        "longer collide, but far devices pay SF12 airtime and duty-cycle "
        "off-time."
    ),
    tags=("synthetic", "urban", "multi-sf"),
    config=replace(
        _paper_point(
            "urban-multisf", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        radio=RadioConfig(num_channels=3, sf_policy="distance-based"),
    ),
))

register_preset(ScenarioPreset(
    name="urban-rwp",
    description=(
        "The `urban` preset under classic random-waypoint mobility instead of "
        "the bus network: the same fleet size roams the same area without "
        "routes or a diurnal timetable, isolating how much of each scheme's "
        "gain is owed to the bus network's contact structure."
    ),
    tags=("synthetic", "urban", "mobility"),
    config=replace(
        _paper_point(
            "urban-rwp", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        mobility=MobilityConfig(model="random-waypoint"),
    ),
))

register_preset(ScenarioPreset(
    name="urban-manhattan",
    description=(
        "The `urban` preset on a Manhattan street grid (streets every 500 m): "
        "route-constrained like the buses but without radial geometry or a "
        "timetable — the classic urban VANET workload."
    ),
    tags=("synthetic", "urban", "mobility"),
    config=replace(
        _paper_point(
            "urban-manhattan", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        mobility=MobilityConfig(model="grid-manhattan"),
    ),
))

register_preset(ScenarioPreset(
    name="urban-prophet",
    description=(
        "Urban setting under PRoPHET-style delivery-predictability forwarding "
        "(Lindgren et al.): messages replicate onto neighbours whose history "
        "of gateway contacts makes them likelier to deliver.  The third DTN "
        "baseline, between epidemic's unbounded copying and spray-and-wait's "
        "fixed ticket budget."
    ),
    tags=("synthetic", "urban", "dtn"),
    config=_paper_point(
        "urban-prophet", spatial_scale=0.10, duration_s=4 * 3600.0,
        nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        scheme="prophet",
    ),
))

register_preset(ScenarioPreset(
    name="urban-buffer-pressure",
    description=(
        "The `urban` preset under severe buffer pressure: an 8-message queue "
        "(vs the paper's 64) with the drop-oldest eviction policy.  "
        "Exercises the buffer-management layer — compare "
        "`messages_dropped_full` vs `messages_rejected_duplicate` against "
        "the `urban` preset, or sweep the whole axis with `repro sweep "
        "routing`."
    ),
    tags=("synthetic", "urban", "buffer"),
    config=replace(
        _paper_point(
            "urban-buffer-pressure", spatial_scale=0.10, duration_s=4 * 3600.0,
            nominal_gateways=70, device_range_m=URBAN_DEVICE_RANGE_M,
        ),
        routing=RoutingConfig(buffer=BufferConfig(policy="drop-oldest", capacity=8)),
    ),
))

register_preset(ScenarioPreset(
    name="quickstart",
    description=(
        "A small friendly first run: 30 km², 4 gateways, 24 buses, 2 simulated "
        "hours of ROBC forwarding.  The README quickstart and "
        "examples/quickstart.py both run this preset."
    ),
    tags=("synthetic",),
    config=ScenarioConfig(
        name="quickstart", seed=42, duration_s=2 * 3600.0, area_km2=30.0,
        num_gateways=4, num_routes=6, trips_per_route=4,
        device_range_m=1000.0, scheme="robc",
    ),
))

# CI smoke points ------------------------------------------------------ #
register_preset(ScenarioPreset(
    name="urban-smoke",
    description=(
        "A sub-second urban (500 m) scenario used by the CLI smoke and "
        "CLI-vs-API equivalence tests.  Too small for meaningful metrics."
    ),
    tags=("ci", "urban"),
    config=_smoke_point("urban-smoke", URBAN_DEVICE_RANGE_M),
))

register_preset(ScenarioPreset(
    name="megacity-10k",
    description=(
        "A 10,000-bus megacity stress scenario: 1250 routes × 8 trips over "
        "6250 km² with 625 gateways (urban density preserved), 30 simulated "
        "minutes of plain LoRaWAN.  Sized beyond what the object engine can "
        "run interactively, the preset selects the array engine in its "
        "configuration; it exists to exercise and benchmark the batched "
        "path at scale (`repro run megacity-10k`)."
    ),
    tags=("synthetic", "urban", "engine", "stress"),
    config=ScenarioConfig(
        name="megacity-10k",
        seed=7,
        duration_s=1800.0,
        area_km2=6250.0,
        num_gateways=625,
        num_routes=1250,
        trips_per_route=8,
        device_range_m=URBAN_DEVICE_RANGE_M,
        scheme="no-routing",
    ).with_engine("array"),
))

register_preset(ScenarioPreset(
    name="rural-smoke",
    description=(
        "A sub-second rural (1000 m) scenario used by the CLI smoke and "
        "CLI-vs-API equivalence tests.  Too small for meaningful metrics."
    ),
    tags=("ci", "rural"),
    config=_smoke_point("rural-smoke", RURAL_DEVICE_RANGE_M),
))


# --------------------------------------------------------------------- #
# Overrides (parameterized synthetic variants)
# --------------------------------------------------------------------- #
def apply_overrides(
    config: ScenarioConfig,
    *,
    scale: Optional[float] = None,
    scheme: Optional[str] = None,
    device_class: Optional[str] = None,
    num_gateways: Optional[int] = None,
    device_range_m: Optional[float] = None,
    gateway_placement: Optional[str] = None,
    num_routes: Optional[int] = None,
    trips_per_route: Optional[int] = None,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    num_channels: Optional[int] = None,
    sf_policy: Optional[str] = None,
    mobility: Optional[str] = None,
    mobility_nodes: Optional[int] = None,
    trace_file: Optional[str] = None,
    scheme_params: Optional[Mapping[str, Any]] = None,
    buffer: Optional[str] = None,
    buffer_capacity: Optional[int] = None,
    buffer_ttl_s: Optional[float] = None,
    engine: Optional[str] = None,
    engine_tick_s: Optional[float] = None,
) -> ScenarioConfig:
    """Derive a variant of ``config`` from CLI-style overrides.

    ``scale`` (density-preserving shrink, applied first) composes with the
    explicit field overrides, so e.g. ``scale=0.5, num_gateways=12`` means
    "half the area and fleet, then exactly 12 gateways".
    """
    if scale is not None:
        config = config.scaled(scale)
    if num_channels is not None or sf_policy is not None:
        config = config.with_radio(num_channels=num_channels, sf_policy=sf_policy)
    if mobility is not None or mobility_nodes is not None or trace_file is not None:
        config = config.with_mobility(
            model=mobility, num_nodes=mobility_nodes, trace_file=trace_file
        )
    if scheme_params:
        config = config.with_routing(**dict(scheme_params))
    if buffer is not None or buffer_capacity is not None or buffer_ttl_s is not None:
        config = config.with_buffer(
            policy=buffer, capacity=buffer_capacity, ttl_s=buffer_ttl_s
        )
    if engine is not None or engine_tick_s is not None:
        config = config.with_engine(engine=engine, tick_s=engine_tick_s)
    fields: Dict[str, Any] = {}
    if scheme is not None:
        fields["scheme"] = scheme
    if device_class is not None:
        fields["device_class"] = device_class
    if num_gateways is not None:
        fields["num_gateways"] = num_gateways
    if device_range_m is not None:
        fields["device_range_m"] = device_range_m
    if gateway_placement is not None:
        fields["gateway_placement"] = gateway_placement
    if num_routes is not None:
        fields["num_routes"] = num_routes
    if trips_per_route is not None:
        fields["trips_per_route"] = trips_per_route
    if duration_s is not None:
        fields["duration_s"] = duration_s
    if seed is not None:
        fields["seed"] = seed
    return replace(config, **fields) if fields else config


def resolve_scenario(target: str) -> ScenarioConfig:
    """A scenario from a preset name or a ``.json``/``.toml`` file path."""
    if target in _PRESETS:
        return _PRESETS[target].config
    if target.lower().endswith((".json", ".toml")):
        from repro.experiments.serialization import load_scenario

        return load_scenario(target)
    raise KeyError(
        f"{target!r} is neither a registered preset ({preset_names()}) "
        "nor a .json/.toml scenario file"
    )


# --------------------------------------------------------------------- #
# Sweep presets (figures and ablations)
# --------------------------------------------------------------------- #
@dataclass
class SweepArtifact:
    """Uniform result of a figure sweep: printable text + tabular rows."""

    name: str
    text: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: The native result object (SweepResult, dicts of RunMetrics, …) for
    #: programmatic consumers and the equivalence tests.
    raw: Any = None


SweepRunner = Callable[[ReproductionScale, Optional[SweepExecutor]], SweepArtifact]


@dataclass(frozen=True)
class SweepPreset:
    """A named figure/ablation pipeline runnable at any ReproductionScale."""

    name: str
    description: str
    runner: SweepRunner
    figure: str = ""


_SWEEPS: Dict[str, SweepPreset] = {}


def register_sweep(preset: SweepPreset) -> SweepPreset:
    if preset.name in _SWEEPS:
        raise ValueError(f"duplicate sweep preset name {preset.name!r}")
    _SWEEPS[preset.name] = preset
    return preset


def get_sweep(name: str) -> SweepPreset:
    """Look a sweep up by name (``fig08`` and ``fig8`` both resolve)."""
    key = name.lower()
    if key.startswith("fig") and key[3:].isdigit():
        key = f"fig{int(key[3:])}"
    try:
        return _SWEEPS[key]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; available: {sweep_names()}") from None


def _sweep_order(name: str) -> tuple:
    # Figures in paper order (fig7 before fig10), then the ablations by name.
    if name.startswith("fig") and name[3:].isdigit():
        return (0, int(name[3:]), name)
    return (1, 0, name)


def sweep_names() -> List[str]:
    """All registered sweep names, figures first in paper order."""
    return sorted(_SWEEPS, key=_sweep_order)


def iter_sweeps() -> List[SweepPreset]:
    """All registered sweeps in catalogue order."""
    return [_SWEEPS[name] for name in sweep_names()]


def _figure_rows(rows: Sequence[Any]) -> List[Dict[str, Any]]:
    return [
        {
            "environment": row.environment,
            "num_gateways": row.num_gateways,
            "scheme": row.scheme,
            "value": row.value,
        }
        for row in rows
    ]


def _density_artifact(name: str, title: str, extractor, metric_unit: str) -> SweepRunner:
    def runner(scale: ReproductionScale, executor: Optional[SweepExecutor]) -> SweepArtifact:
        sweep = run_density_sweep(scale, executor=executor)
        rows = extractor(sweep)
        return SweepArtifact(
            name=name,
            text=format_figure_rows(title, rows, metric_unit),
            rows=_figure_rows(rows),
            raw=sweep,
        )

    return runner


def _timeseries_artifact(name: str, title: str, figure_fn) -> SweepRunner:
    def runner(scale: ReproductionScale, executor: Optional[SweepExecutor]) -> SweepArtifact:
        series = figure_fn(scale, executor=executor)
        rows = [
            {"time_s": start, "scheme": scheme, "delivered": value}
            for scheme in sorted(series.series_by_scheme)
            for start, value in zip(series.bin_starts_s, series.series_by_scheme[scheme])
        ]
        return SweepArtifact(
            name=name, text=format_timeseries(title, series), rows=rows, raw=series
        )

    return runner


def _metrics_rows(results: Mapping[Any, Any], key_name: str) -> List[Dict[str, Any]]:
    rows = []
    for key in sorted(results, key=str):
        metrics = results[key]
        rows.append(
            {
                key_name: key,
                "mean_delay_s": metrics.mean_delay_s,
                "throughput_messages": metrics.throughput_messages,
                "delivery_ratio": metrics.delivery_ratio,
                "mean_hop_count": metrics.mean_hop_count,
                "mean_messages_sent_per_node": metrics.mean_messages_sent_per_node,
                "mean_energy_joules": metrics.mean_energy_joules,
            }
        )
    return rows


_ABLATION_METRICS = (
    "mean_delay_s",
    "throughput_messages",
    "delivery_ratio",
    "mean_energy_joules",
)


def _fig7_runner(scale: ReproductionScale, executor: Optional[SweepExecutor]) -> SweepArtifact:
    del executor  # one mobility generation, nothing to parallelise
    properties = figure07_bus_network(scale)
    rows = [
        {"bin_start_s": start, "active_buses": count}
        for start, count in zip(properties.bin_starts_s, properties.active_buses)
    ]
    return SweepArtifact(
        name="fig7",
        text=format_bus_network("Fig. 7 — bus network properties", properties),
        rows=rows,
        raw=properties,
    )


def _alpha_runner(scale: ReproductionScale, executor: Optional[SweepExecutor]) -> SweepArtifact:
    results = ablation_alpha(scale, executor=executor)
    return SweepArtifact(
        name="alpha",
        text=format_metric_comparison(
            "α ablation — EWMA weight of Eq. (4), RCA-ETX", results, _ABLATION_METRICS
        ),
        rows=_metrics_rows(results, "alpha"),
        raw=results,
    )


def _device_class_runner(
    scale: ReproductionScale, executor: Optional[SweepExecutor]
) -> SweepArtifact:
    results = ablation_device_class(scale, executor=executor)
    return SweepArtifact(
        name="device-class",
        text=format_metric_comparison(
            "Device-class ablation — Modified Class-C vs Queue-based Class-A",
            results,
            _ABLATION_METRICS,
        ),
        rows=_metrics_rows(results, "device_class"),
        raw=results,
    )


def _multisf_runner(
    scale: ReproductionScale, executor: Optional[SweepExecutor]
) -> SweepArtifact:
    results = run_multisf_sweep(scale, executor=executor)
    flat = {
        f"{channels}ch/{scheme}": metrics
        for (channels, scheme), metrics in results.items()
    }
    rows = [
        {
            "num_channels": channels,
            "scheme": scheme,
            "mean_delay_s": metrics.mean_delay_s,
            "throughput_messages": metrics.throughput_messages,
            "delivery_ratio": metrics.delivery_ratio,
            "mean_hop_count": metrics.mean_hop_count,
            "mean_messages_sent_per_node": metrics.mean_messages_sent_per_node,
            "mean_energy_joules": metrics.mean_energy_joules,
        }
        for (channels, scheme), metrics in sorted(results.items())
    ]
    return SweepArtifact(
        name="multisf",
        text=format_metric_comparison(
            "Multi-SF radio sweep — uplink channels × scheme, distance-based SFs",
            flat,
            _ABLATION_METRICS,
        ),
        rows=rows,
        raw=results,
    )


def _mobility_runner(
    scale: ReproductionScale, executor: Optional[SweepExecutor]
) -> SweepArtifact:
    results = run_mobility_sweep(scale, executor=executor)
    flat = {
        f"{model}/{scheme}": metrics
        for (model, scheme), metrics in sorted(results.items())
    }
    rows = [
        {
            "mobility_model": model,
            "scheme": scheme,
            "mean_delay_s": metrics.mean_delay_s,
            "throughput_messages": metrics.throughput_messages,
            "delivery_ratio": metrics.delivery_ratio,
            "mean_hop_count": metrics.mean_hop_count,
            "mean_messages_sent_per_node": metrics.mean_messages_sent_per_node,
            "mean_energy_joules": metrics.mean_energy_joules,
        }
        for (model, scheme), metrics in sorted(results.items())
    ]
    return SweepArtifact(
        name="mobility",
        text=format_metric_comparison(
            "Mobility sweep — trace model × scheme, bus-network contact "
            "structure vs synthetic mobility",
            flat,
            _ABLATION_METRICS,
        ),
        rows=rows,
        raw=results,
    )


def _routing_runner(
    scale: ReproductionScale, executor: Optional[SweepExecutor]
) -> SweepArtifact:
    results = run_routing_sweep(scale, executor=executor)
    flat = {
        f"{scheme}/{policy}/cap{capacity}": metrics
        for (scheme, policy, capacity), metrics in sorted(results.items())
    }
    rows = [
        {
            "scheme": scheme,
            "buffer_policy": policy,
            "buffer_capacity": capacity,
            "mean_delay_s": metrics.mean_delay_s,
            "throughput_messages": metrics.throughput_messages,
            "delivery_ratio": metrics.delivery_ratio,
            "messages_dropped_full": metrics.messages_dropped_full,
            "messages_rejected_duplicate": metrics.messages_rejected_duplicate,
            "mean_hop_count": metrics.mean_hop_count,
            "mean_messages_sent_per_node": metrics.mean_messages_sent_per_node,
            "mean_energy_joules": metrics.mean_energy_joules,
        }
        for (scheme, policy, capacity), metrics in sorted(results.items())
    ]
    return SweepArtifact(
        name="routing",
        text=format_metric_comparison(
            "Routing sweep — scheme × buffer policy × capacity",
            flat,
            # The buffer counters are this sweep's headline comparison (loss
            # vs handover dedup), so they belong in the printed table too.
            _ABLATION_METRICS
            + ("messages_dropped_full", "messages_rejected_duplicate"),
        ),
        rows=rows,
        raw=results,
    )


def _placement_runner(
    scale: ReproductionScale, executor: Optional[SweepExecutor]
) -> SweepArtifact:
    results = ablation_gateway_placement(scale, executor=executor)
    flat = {
        f"{placement}/{scheme}": metrics
        for placement, by_scheme in results.items()
        for scheme, metrics in by_scheme.items()
    }
    return SweepArtifact(
        name="placement",
        text=format_metric_comparison(
            "Placement ablation — grid vs uniform-random gateways",
            flat,
            _ABLATION_METRICS,
        ),
        rows=_metrics_rows(flat, "placement_scheme"),
        raw=results,
    )


register_sweep(SweepPreset(
    name="fig7",
    description="Active buses over 24 h and the trip-duration distribution.",
    figure="Fig. 7",
    runner=_fig7_runner,
))
register_sweep(SweepPreset(
    name="fig8",
    description="Mean end-to-end delay vs gateway count, urban and rural.",
    figure="Fig. 8",
    runner=_density_artifact(
        "fig8", "Fig. 8 — mean end-to-end delay", figure08_delay, "s"
    ),
))
register_sweep(SweepPreset(
    name="fig9",
    description="Total delivered messages vs gateway count, urban and rural.",
    figure="Fig. 9",
    runner=_density_artifact(
        "fig9", "Fig. 9 — delivered messages", figure09_throughput, "messages"
    ),
))
register_sweep(SweepPreset(
    name="fig10",
    description="Messages delivered per 10-minute bin over the day, urban.",
    figure="Fig. 10",
    runner=_timeseries_artifact(
        "fig10", "Fig. 10 — throughput over the day", figure10_urban_timeseries
    ),
))
register_sweep(SweepPreset(
    name="fig11",
    description="Messages delivered per 10-minute bin over the day, rural.",
    figure="Fig. 11",
    runner=_timeseries_artifact(
        "fig11", "Fig. 11 — throughput over the day", figure11_rural_timeseries
    ),
))
register_sweep(SweepPreset(
    name="fig12",
    description="Mean delivery hop count vs gateway count, urban and rural.",
    figure="Fig. 12",
    runner=_density_artifact(
        "fig12", "Fig. 12 — mean delivery hop count", figure12_hops, "hops"
    ),
))
register_sweep(SweepPreset(
    name="fig13",
    description="Frames transmitted per node (energy proxy) vs gateway count.",
    figure="Fig. 13",
    runner=_density_artifact(
        "fig13", "Fig. 13 — frames sent per node", figure13_overhead, "frames"
    ),
))
register_sweep(SweepPreset(
    name="alpha",
    description="EWMA weight α of the RCA-ETX estimator (Eq. 4), five values.",
    figure="α ablation",
    runner=_alpha_runner,
))
register_sweep(SweepPreset(
    name="device-class",
    description="Modified Class-C vs Queue-based Class-A listening policies.",
    figure="Sec. VII-C",
    runner=_device_class_runner,
))
register_sweep(SweepPreset(
    name="placement",
    description="Grid vs uniform-random gateway placement, all schemes.",
    figure="Sec. VII-C",
    runner=_placement_runner,
))
register_sweep(SweepPreset(
    name="mobility",
    description=(
        "Mobility model (london-bus / random-waypoint / grid-manhattan) × "
        "scheme — how much of each scheme's gain the bus-network contact "
        "structure is responsible for."
    ),
    runner=_mobility_runner,
))
register_sweep(SweepPreset(
    name="routing",
    description=(
        "Forwarding scheme × buffer policy (drop-new / drop-oldest / "
        "priority-age) × buffer capacity (8 / 64) — the DTN "
        "buffer-management axis, with loss separated from handover "
        "deduplication in the metrics."
    ),
    runner=_routing_runner,
))
register_sweep(SweepPreset(
    name="multisf",
    description=(
        "Uplink channels (1/3/8) × scheme under distance-based spreading "
        "factors — beyond the paper's single shared SF7 channel."
    ),
    runner=_multisf_runner,
))


def resolve_scale(value: Union[str, float, None]) -> ReproductionScale:
    """A ReproductionScale from a name (smoke/benchmark/campaign) or a float.

    A float is interpreted as a spatial scale applied to the benchmark
    profile (durations and gateway grid unchanged).
    """
    if value is None:
        return BENCHMARK_SCALE
    if isinstance(value, str):
        if value in SCALE_PRESETS:
            return SCALE_PRESETS[value]
        try:
            value = float(value)
        except ValueError:
            raise KeyError(
                f"unknown scale {value!r}; use one of {sorted(SCALE_PRESETS)} "
                "or a spatial-scale float in (0, 1]"
            ) from None
    if not 0 < float(value) <= 1:
        raise ValueError(f"spatial scale must be in (0, 1], got {value!r}")
    return replace(BENCHMARK_SCALE, spatial_scale=float(value))


# --------------------------------------------------------------------- #
# docs/scenarios.md generation
# --------------------------------------------------------------------- #
def _hours(seconds: float) -> str:
    return f"{seconds / 3600.0:g} h"


def _radio_label(config: ScenarioConfig) -> str:
    radio = config.radio
    if radio.is_default:
        return "1 ch, SF7"
    return f"{radio.num_channels} ch, {radio.sf_policy}"


def _mobility_label(config: ScenarioConfig) -> str:
    mobility = config.mobility
    if mobility.num_nodes > 0:
        return f"{mobility.model} ({mobility.num_nodes} nodes)"
    return mobility.model


def _buffer_label(config: ScenarioConfig) -> str:
    buffer = config.routing.buffer
    if buffer.is_default:
        return "`drop-new`, capacity device default"
    capacity = str(buffer.capacity) if buffer.capacity > 0 else "device default"
    label = f"`{buffer.policy}`, capacity {capacity}"
    if buffer.ttl_s > 0:
        label += f", TTL {buffer.ttl_s:g} s"
    return label


def render_scenarios_markdown() -> str:
    """The full text of ``docs/scenarios.md``, generated from the registries.

    ``tests/experiments/test_registry.py`` pins the committed file to this
    output; regenerate with ``repro docs --write`` after changing a preset.
    """
    lines: List[str] = [
        "# Scenario catalogue",
        "",
        "<!-- GENERATED FILE — do not edit by hand.",
        "     Regenerate with: PYTHONPATH=src python -m repro docs --write -->",
        "",
        "This catalogue is generated from `repro.experiments.registry`, the",
        "single source of truth the `repro` CLI runs from.  Run any preset with",
        "`repro run <name>`, inspect it with `repro describe <name>`, export it",
        "to a shareable file with `repro export <name> out.toml`, and derive",
        "variants with the override flags (`--scheme`, `--scheme-param`,",
        "`--buffer`, `--buffer-capacity`, `--gateways`, `--scale`,",
        "`--device-class`, `--range`, `--routes`, `--channels`, `--sf-policy`,",
        "`--mobility`, `--trace-file`, `--seed`, …).",
        "",
        "## Scenario presets",
        "",
        "| preset | scheme | gateways | D2D range | area | duration | radio | mobility | reproduces |",
        "| --- | --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for preset in iter_presets():
        cfg = preset.config
        lines.append(
            f"| `{preset.name}` | {cfg.scheme} | {cfg.num_gateways} "
            f"| {cfg.device_range_m:g} m | {cfg.area_km2:g} km² "
            f"| {_hours(cfg.duration_s)} | {_radio_label(cfg)} "
            f"| {_mobility_label(cfg)} "
            f"| {preset.figure or '—'} |"
        )
    lines.append("")
    for preset in iter_presets():
        cfg = preset.config
        lines.extend([
            f"### `{preset.name}`",
            "",
            preset.description,
            "",
            f"- tags: {', '.join(preset.tags) if preset.tags else '—'}",
            f"- fleet: {cfg.num_routes} routes × {cfg.trips_per_route} trips "
            f"= {cfg.num_routes * cfg.trips_per_route} buses",
            f"- device class: `{cfg.device_class}`, placement: `{cfg.gateway_placement}`, "
            f"seed: {cfg.seed}",
            f"- radio: {cfg.radio.num_channels} channel(s), "
            f"`{cfg.radio.sf_policy}` SF policy",
            f"- mobility: `{cfg.mobility.model}`",
            f"- buffer: {_buffer_label(cfg)}",
            "",
        ])
    lines.extend([
        "## Figure sweeps (`repro sweep <name>`)",
        "",
        "Each sweep accepts `--scale smoke|benchmark|campaign` (or a spatial-",
        "scale float), `--workers N` for process-parallel execution and",
        "`--cache DIR` to reuse finished runs across invocations.",
        "",
        "| sweep | reproduces | what it runs |",
        "| --- | --- | --- |",
    ])
    for sweep in iter_sweeps():
        lines.append(f"| `{sweep.name}` | {sweep.figure or '—'} | {sweep.description} |")
    lines.extend([
        "",
        "## Execution scales",
        "",
        "| name | spatial scale | duration | gateway counts |",
        "| --- | --- | --- | --- |",
    ])
    for name in sorted(SCALE_PRESETS):
        scale = SCALE_PRESETS[name]
        counts = ", ".join(str(c) for c in scale.gateway_counts)
        lines.append(
            f"| `{name}` | {scale.spatial_scale:g} | {_hours(scale.duration_s)} "
            f"| {counts} |"
        )
    lines.append("")
    return "\n".join(lines)
