"""Scenario configuration.

One :class:`ScenarioConfig` fully describes a simulation run: the service
area and bus network, the gateway deployment, the radio geometry, the device
protocol parameters, the forwarding scheme and the device class.  The paper's
full-scale scenario (600 km², all London buses, 24 h) is cluster-sized, so the
configuration exposes a ``scale`` factor that shrinks the area, the bus fleet
and the gateway count together, preserving spatial densities — the quantity
that actually determines contact structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.engine.config import EngineConfig
from repro.mac.device import DeviceConfig
from repro.mobility.config import MobilityConfig
from repro.mobility.london import DAY_SECONDS, LondonBusNetworkConfig
from repro.radio.config import RadioConfig
from repro.routing.config import RoutingConfig


@dataclass(frozen=True)
class ScenarioConfig:
    """Full description of one MLoRa-SS simulation run."""

    # Identification / reproducibility
    name: str = "mlora-ss"
    seed: int = 1

    # Time
    duration_s: float = DAY_SECONDS

    # Space and gateways
    area_km2: float = 600.0
    num_gateways: int = 60
    gateway_placement: str = "grid"
    gateway_range_m: float = 1000.0
    device_range_m: float = 500.0

    # Mobility (bus network)
    num_routes: int = 120
    trips_per_route: int = 8
    stops_per_route: int = 12
    min_block_repeats: int = 4
    max_block_repeats: int = 12
    #: Which mobility model generates the traces; the default (``london-bus``)
    #: is the paper's synthetic bus network and is bit-compatible with the
    #: pre-mobility-refactor engine.
    mobility: MobilityConfig = field(default_factory=MobilityConfig)

    # Radio / protocol
    shadowing: bool = False
    device: DeviceConfig = field(default_factory=DeviceConfig)
    #: Channel plan and SF allocation; the default (one channel, fixed SF7)
    #: is the paper's setting and is bit-compatible with the pre-radio engine.
    radio: RadioConfig = field(default_factory=RadioConfig)

    # Forwarding scheme and device class
    scheme: str = "no-routing"
    #: Parameters of the named scheme plus the buffer-management section; the
    #: default is the paper's hardcoded setting (12-message handovers, FIFO
    #: tail-drop buffer) and is bit-compatible with the pre-routing engine.
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    device_class: str = "modified-class-c"

    #: Which simulation engine executes the run; the default (the
    #: event-driven object engine) is the bit-exact oracle, and the array
    #: engine is required to reproduce it identically.
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.area_km2 <= 0:
            raise ValueError("area_km2 must be positive")
        if self.num_gateways <= 0:
            raise ValueError("num_gateways must be positive")
        if self.gateway_placement not in ("grid", "random"):
            raise ValueError(
                f"gateway_placement must be 'grid' or 'random', got {self.gateway_placement!r}"
            )
        if self.gateway_range_m <= 0 or self.device_range_m <= 0:
            raise ValueError("communication ranges must be positive")
        if self.num_routes <= 0 or self.trips_per_route <= 0:
            raise ValueError("num_routes and trips_per_route must be positive")
        if not 1 <= self.min_block_repeats <= self.max_block_repeats:
            raise ValueError("block repeats must satisfy 1 <= min <= max")

    # ------------------------------------------------------------------ #
    # Derived configurations
    # ------------------------------------------------------------------ #
    def scaled(self, scale: float) -> "ScenarioConfig":
        """A density-preserving shrunken copy of this scenario.

        ``scale`` multiplies the area, the gateway count and the number of
        routes (and hence the fleet size, since trips per route are kept).
        Communication ranges, the message workload and the simulated duration
        are left untouched, so both the gateway density (gateways/km²) and the
        bus density (buses/km²) — the quantities that set contact statistics —
        remain comparable to the full-size scenario.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale > 1:
            raise ValueError("scale is a shrink factor and must be <= 1")
        mobility = self.mobility
        if mobility.num_nodes > 0:
            # An explicit synthetic fleet shrinks with the area too; the
            # derived default (num_nodes == 0) already follows num_routes.
            mobility = mobility.with_num_nodes(max(1, round(mobility.num_nodes * scale)))
        return replace(
            self,
            area_km2=self.area_km2 * scale,
            num_gateways=max(1, round(self.num_gateways * scale)),
            num_routes=max(1, round(self.num_routes * scale)),
            mobility=mobility,
        )

    def with_scheme(self, scheme: str) -> "ScenarioConfig":
        """A copy of this configuration running a different forwarding scheme."""
        return replace(self, scheme=scheme)

    def with_routing(self, **params) -> "ScenarioConfig":
        """A copy with different routing parameters (RoutingConfig fields)."""
        return replace(self, routing=self.routing.with_params(**params))

    def with_buffer(
        self,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> "ScenarioConfig":
        """A copy with a different buffer-management policy/capacity/TTL."""
        return replace(
            self,
            routing=self.routing.with_buffer(
                policy=policy, capacity=capacity, ttl_s=ttl_s
            ),
        )

    def with_gateways(self, num_gateways: int) -> "ScenarioConfig":
        """A copy with a different gateway count (Fig. 8/9 sweeps)."""
        return replace(self, num_gateways=num_gateways)

    def with_device_range(self, device_range_m: float) -> "ScenarioConfig":
        """A copy with a different device-to-device range (urban 500 m / rural 1000 m)."""
        return replace(self, device_range_m=device_range_m)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """A copy with a different master seed (replications)."""
        return replace(self, seed=seed)

    def with_radio(
        self,
        num_channels: Optional[int] = None,
        sf_policy: Optional[str] = None,
    ) -> "ScenarioConfig":
        """A copy with a different channel plan and/or SF allocation policy."""
        radio = self.radio
        if num_channels is not None:
            radio = radio.with_channels(num_channels)
        if sf_policy is not None:
            radio = radio.with_sf_policy(sf_policy)
        return replace(self, radio=radio)

    def with_engine(
        self,
        engine: Optional[str] = None,
        tick_s: Optional[float] = None,
        strict_equivalence: Optional[bool] = None,
    ) -> "ScenarioConfig":
        """A copy running on a different simulation engine."""
        section = self.engine
        if engine is not None:
            section = section.with_engine(engine)
        if tick_s is not None:
            section = section.with_tick(tick_s)
        if strict_equivalence is not None:
            section = section.with_strict_equivalence(strict_equivalence)
        return replace(self, engine=section)

    def with_mobility(
        self,
        model: Optional[str] = None,
        num_nodes: Optional[int] = None,
        trace_file: Optional[str] = None,
    ) -> "ScenarioConfig":
        """A copy running a different mobility model (and/or fleet sizing)."""
        if trace_file is not None and model is not None and model != "trace-file":
            raise ValueError(
                f"cannot combine a trace file with mobility model {model!r}; "
                "a trace file implies the trace-file model"
            )
        mobility = self.mobility
        if trace_file is not None:
            # Before any model switch: selecting model="trace-file" is only
            # valid once the path is in place.
            mobility = mobility.with_trace_file(trace_file)
        if model is not None:
            mobility = mobility.with_model(model)
        if num_nodes is not None:
            mobility = mobility.with_num_nodes(num_nodes)
        return replace(self, mobility=mobility)

    def mobility_spec(self):
        """The :class:`~repro.mobility.models.MobilitySpec` of this scenario."""
        from repro.mobility.models import MobilitySpec

        return MobilitySpec(
            mobility=self.mobility,
            network=self.mobility_config(),
            duration_s=self.duration_s,
        )

    def mobility_config(self, horizon_s: Optional[float] = None) -> LondonBusNetworkConfig:
        """The bus-network generator configuration implied by this scenario.

        When the simulated duration is shorter than a full day, the diurnal
        day window is compressed proportionally so that trip start times still
        fall inside the simulated horizon.
        """
        horizon = horizon_s if horizon_s is not None else max(self.duration_s, 1.0)
        defaults = LondonBusNetworkConfig()
        if horizon >= defaults.horizon_s:
            day_start, day_end = defaults.day_start_s, defaults.day_end_s
        else:
            ratio = horizon / defaults.horizon_s
            day_start = defaults.day_start_s * ratio
            day_end = defaults.day_end_s * ratio
        return LondonBusNetworkConfig(
            area_km2=self.area_km2,
            num_routes=self.num_routes,
            trips_per_route=self.trips_per_route,
            stops_per_route=self.stops_per_route,
            min_repeats=self.min_block_repeats,
            max_repeats=self.max_block_repeats,
            day_start_s=day_start,
            day_end_s=day_end,
            horizon_s=horizon,
        )
