"""Per-figure experiment definitions (Figs. 7–13 plus ablations).

Each ``figureNN`` function runs the simulations needed for one paper figure
and returns a plain data structure (rows or series) that the reporting layer,
the benchmark harness and the ``repro sweep`` CLI print.  All of them take a
:class:`ReproductionScale` so the same code serves CI smoke runs
(:data:`SMOKE_SCALE`), quick benchmark runs (:data:`BENCHMARK_SCALE`) and
larger offline campaigns (:data:`CAMPAIGN_SCALE`), and an optional
:class:`SweepExecutor` for backend-parallel (process-pool or multi-host
work-queue), cache-served execution.  The executor guarantees outcome
completeness — the ``zip(keys, executor.run_metrics(specs))`` pattern used
throughout is safe because ``run_metrics`` raises instead of ever returning
fewer results than specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import RunMetrics
from repro.analysis.timeseries import bin_events
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor
from repro.experiments.sweeps import (
    PAPER_GATEWAY_COUNTS,
    PAPER_SCHEMES,
    RURAL_DEVICE_RANGE_M,
    URBAN_DEVICE_RANGE_M,
    SweepResult,
    run_gateway_sweep,
)
from repro.mobility.london import DAY_SECONDS, LondonBusNetworkGenerator
from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class ReproductionScale:
    """How much of the paper's full scenario to simulate.

    ``spatial_scale`` multiplies the area, fleet and gateway count together
    (density preserving).  ``gateway_counts`` are the *nominal* paper values
    reported on the x-axis; the actual deployed number is
    ``round(nominal * spatial_scale)``.
    """

    spatial_scale: float = 0.10
    duration_s: float = 6 * 3600.0
    timeseries_duration_s: float = DAY_SECONDS
    gateway_counts: Tuple[int, ...] = PAPER_GATEWAY_COUNTS
    schemes: Tuple[str, ...] = PAPER_SCHEMES
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.spatial_scale <= 1:
            raise ValueError("spatial_scale must be in (0, 1]")
        if self.duration_s <= 0 or self.timeseries_duration_s <= 0:
            raise ValueError("durations must be positive")

    def base_config(self, duration_s: float = 0.0) -> ScenarioConfig:
        """The scaled base scenario shared by every figure."""
        full = ScenarioConfig(
            seed=self.seed,
            duration_s=duration_s if duration_s > 0 else self.duration_s,
        )
        return full.scaled(self.spatial_scale)


#: The scale used by the benchmark harness: small enough for CI, large enough
#: for the qualitative trends of the paper to be visible.
BENCHMARK_SCALE = ReproductionScale(
    spatial_scale=0.10,
    duration_s=4 * 3600.0,
    timeseries_duration_s=DAY_SECONDS,
    gateway_counts=(40, 70, 100),
)

#: A fuller (slower) scale for offline campaigns.
CAMPAIGN_SCALE = ReproductionScale(
    spatial_scale=0.25,
    duration_s=DAY_SECONDS,
    gateway_counts=PAPER_GATEWAY_COUNTS,
)

#: A seconds-not-minutes scale for CI smoke tests and the CLI equivalence
#: tests: qualitative only, but it exercises every code path of a sweep.
SMOKE_SCALE = ReproductionScale(
    spatial_scale=0.05,
    duration_s=900.0,
    timeseries_duration_s=3600.0,
    gateway_counts=(40, 100),
)


# --------------------------------------------------------------------- #
# Fig. 7 — properties of the bus network
# --------------------------------------------------------------------- #
@dataclass
class BusNetworkProperties:
    """The two panels of Fig. 7."""

    bin_starts_s: List[float]
    active_buses: List[int]
    active_durations_s: List[float]

    @property
    def peak_active_buses(self) -> int:
        """Maximum concurrently active buses (daytime plateau)."""
        return max(self.active_buses) if self.active_buses else 0

    @property
    def night_active_buses(self) -> int:
        """Minimum concurrently active buses (night trough)."""
        return min(self.active_buses) if self.active_buses else 0


def figure07_bus_network(scale: ReproductionScale = BENCHMARK_SCALE) -> BusNetworkProperties:
    """Fig. 7: number of active buses over 24 h and the active-duration distribution."""
    config = scale.base_config(duration_s=DAY_SECONDS)
    generator = LondonBusNetworkGenerator(
        config.mobility_config(DAY_SECONDS), RandomStreams(scale.seed).stream("mobility")
    )
    timetable = generator.generate()
    bin_width = 1800.0
    profile = timetable.active_bus_profile(bin_width, DAY_SECONDS)
    starts = [index * bin_width for index in range(len(profile))]
    return BusNetworkProperties(
        bin_starts_s=starts,
        active_buses=profile,
        active_durations_s=timetable.active_durations(),
    )


# --------------------------------------------------------------------- #
# Figs. 8, 9, 12, 13 — gateway-density sweeps
# --------------------------------------------------------------------- #
def run_density_sweep(
    scale: ReproductionScale = BENCHMARK_SCALE,
    device_ranges_m: Sequence[float] = (URBAN_DEVICE_RANGE_M, RURAL_DEVICE_RANGE_M),
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """The shared sweep Figs. 8, 9, 12 and 13 are all derived from."""
    base = scale.base_config()
    return run_gateway_sweep(
        base,
        gateway_counts=scale.gateway_counts,
        schemes=scale.schemes,
        device_ranges_m=device_ranges_m,
        gateway_scale=scale.spatial_scale,
        executor=executor,
    )


@dataclass(frozen=True)
class FigureRow:
    """One row of a figure's data table."""

    environment: str
    num_gateways: int
    scheme: str
    value: float


def _environment_name(device_range_m: float) -> str:
    return "urban" if device_range_m <= 750.0 else "rural"


def _sweep_rows(sweep: SweepResult, metric: str) -> List[FigureRow]:
    rows: List[FigureRow] = []
    for device_range in sweep.device_ranges():
        for count in sweep.gateway_counts():
            for scheme in sweep.schemes():
                key = (scheme, count, device_range)
                if key not in sweep.runs:
                    continue
                rows.append(
                    FigureRow(
                        environment=_environment_name(device_range),
                        num_gateways=count,
                        scheme=scheme,
                        value=float(getattr(sweep.runs[key], metric)),
                    )
                )
    return rows


def figure08_delay(sweep: SweepResult) -> List[FigureRow]:
    """Fig. 8: average end-to-end delay per scheme, gateway count and environment."""
    return _sweep_rows(sweep, "mean_delay_s")


def figure09_throughput(sweep: SweepResult) -> List[FigureRow]:
    """Fig. 9: total messages delivered per scheme, gateway count and environment."""
    return _sweep_rows(sweep, "throughput_messages")


def figure12_hops(sweep: SweepResult) -> List[FigureRow]:
    """Fig. 12: average delivery hop count per scheme and gateway count."""
    return _sweep_rows(sweep, "mean_hop_count")


def figure13_overhead(sweep: SweepResult) -> List[FigureRow]:
    """Fig. 13: average number of frames sent per node (energy-overhead proxy)."""
    return _sweep_rows(sweep, "mean_messages_sent_per_node")


# --------------------------------------------------------------------- #
# Figs. 10 and 11 — throughput over the day
# --------------------------------------------------------------------- #
@dataclass
class ThroughputTimeSeries:
    """Messages delivered per time bin for every scheme (one environment)."""

    environment: str
    bin_starts_s: List[float]
    series_by_scheme: Dict[str, List[float]] = field(default_factory=dict)

    def total(self, scheme: str) -> float:
        """Total messages delivered by ``scheme`` over the horizon."""
        return float(np.sum(self.series_by_scheme.get(scheme, [])))


def _timeseries_for_range(
    scale: ReproductionScale,
    device_range_m: float,
    nominal_gateways: int,
    bin_width_s: float,
    executor: Optional[SweepExecutor] = None,
) -> ThroughputTimeSeries:
    base = scale.base_config(duration_s=scale.timeseries_duration_s)
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    specs = [
        RunSpec(
            config=(
                base.with_scheme(scheme)
                .with_gateways(actual_gateways)
                .with_device_range(device_range_m)
            ),
            nominal_gateways=nominal_gateways,
        )
        for scheme in scale.schemes
    ]
    executor = executor or SweepExecutor()
    bin_starts: List[float] = []
    series: Dict[str, List[float]] = {}
    for scheme, metrics in zip(scale.schemes, executor.run_metrics(specs)):
        starts, counts = bin_events(
            metrics.delivery_times_s, bin_width_s, scale.timeseries_duration_s
        )
        bin_starts = [float(s) for s in starts]
        series[scheme] = [float(c) for c in counts]
    return ThroughputTimeSeries(
        environment=_environment_name(device_range_m),
        bin_starts_s=bin_starts,
        series_by_scheme=series,
    )


def figure10_urban_timeseries(
    scale: ReproductionScale = BENCHMARK_SCALE,
    nominal_gateways: int = 100,
    bin_width_s: float = 600.0,
    executor: Optional[SweepExecutor] = None,
) -> ThroughputTimeSeries:
    """Fig. 10: messages delivered every 10 minutes over the day, urban (500 m) setting."""
    return _timeseries_for_range(
        scale, URBAN_DEVICE_RANGE_M, nominal_gateways, bin_width_s, executor
    )


def figure11_rural_timeseries(
    scale: ReproductionScale = BENCHMARK_SCALE,
    nominal_gateways: int = 100,
    bin_width_s: float = 600.0,
    executor: Optional[SweepExecutor] = None,
) -> ThroughputTimeSeries:
    """Fig. 11: messages delivered every 10 minutes over the day, rural (1000 m) setting."""
    return _timeseries_for_range(
        scale, RURAL_DEVICE_RANGE_M, nominal_gateways, bin_width_s, executor
    )


# --------------------------------------------------------------------- #
# Beyond the paper: multi-channel / multi-SF radio sweep
# --------------------------------------------------------------------- #
def run_multisf_sweep(
    scale: ReproductionScale = BENCHMARK_SCALE,
    channel_counts: Sequence[int] = (1, 3, 8),
    sf_policy: str = "distance-based",
    nominal_gateways: int = 70,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Tuple[int, str], RunMetrics]:
    """A (channel count × scheme) grid under a multi-SF radio plan.

    The paper fixes one shared SF7 channel; this sweep opens the radio layer
    the way real EU868 deployments are provisioned — several orthogonal
    uplink channels and spreading factors allocated by ``sf_policy`` — and
    measures how much of the store-carry-forward gain survives when the
    channel itself decongests.  Keys are ``(num_channels, scheme)``.
    """
    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    keys: List[Tuple[int, str]] = [
        (channels, scheme)
        for channels in channel_counts
        for scheme in scale.schemes
    ]
    specs = [
        RunSpec(
            config=base.with_scheme(scheme)
            .with_gateways(actual_gateways)
            .with_radio(num_channels=channels, sf_policy=sf_policy)
        )
        for channels, scheme in keys
    ]
    executor = executor or SweepExecutor()
    return dict(zip(keys, executor.run_metrics(specs)))


# --------------------------------------------------------------------- #
# Beyond the paper: mobility-model sweep
# --------------------------------------------------------------------- #
def run_mobility_sweep(
    scale: ReproductionScale = BENCHMARK_SCALE,
    models: Sequence[str] = ("london-bus", "random-waypoint", "grid-manhattan"),
    nominal_gateways: int = 70,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Tuple[str, str], RunMetrics]:
    """A (mobility model × scheme) grid at the paper's 70-gateway point.

    The paper evaluates one mobility source — the synthetic London bus
    network; this sweep swaps the trace generator while holding everything
    else fixed, measuring how much of each scheme's gain is owed to the
    bus network's centre-dense, route-constrained contact structure rather
    than to mobility per se.  Keys are ``(model, scheme)``.
    """
    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    keys: List[Tuple[str, str]] = [
        (model, scheme) for model in models for scheme in scale.schemes
    ]
    specs = [
        RunSpec(
            config=base.with_scheme(scheme)
            .with_gateways(actual_gateways)
            .with_mobility(model=model)
        )
        for model, scheme in keys
    ]
    executor = executor or SweepExecutor()
    return dict(zip(keys, executor.run_metrics(specs)))


# --------------------------------------------------------------------- #
# Beyond the paper: routing scheme × buffer-management sweep
# --------------------------------------------------------------------- #
def run_routing_sweep(
    scale: ReproductionScale = BENCHMARK_SCALE,
    schemes: Sequence[str] = ("robc", "prophet"),
    buffer_policies: Sequence[str] = ("drop-new", "drop-oldest", "priority-age"),
    buffer_capacities: Sequence[int] = (8, 64),
    nominal_gateways: int = 70,
    executor: Optional[SweepExecutor] = None,
) -> Dict[Tuple[str, str, int], RunMetrics]:
    """A (scheme × buffer policy × capacity) grid at the 70-gateway point.

    The paper fixes a 64-message FIFO tail-drop buffer; this sweep opens the
    buffer-management axis the DTN literature treats as first-class — what to
    evict under pressure, and how much pressure a small buffer creates —
    while the new :class:`~repro.analysis.metrics.RunMetrics` counters
    (``messages_dropped_full`` vs ``messages_rejected_duplicate``) separate
    real loss from handover deduplication.  Keys are
    ``(scheme, buffer_policy, capacity)``.
    """
    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    keys: List[Tuple[str, str, int]] = [
        (scheme, policy, capacity)
        for scheme in schemes
        for policy in buffer_policies
        for capacity in buffer_capacities
    ]
    specs = [
        RunSpec(
            config=base.with_scheme(scheme)
            .with_gateways(actual_gateways)
            .with_buffer(policy=policy, capacity=capacity)
        )
        for scheme, policy, capacity in keys
    ]
    executor = executor or SweepExecutor()
    return dict(zip(keys, executor.run_metrics(specs)))


# --------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------- #
def ablation_alpha(
    scale: ReproductionScale = BENCHMARK_SCALE,
    alphas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    nominal_gateways: int = 70,
    executor: Optional[SweepExecutor] = None,
) -> Dict[float, RunMetrics]:
    """Sweep the EWMA weight α of Eq. (4) for the RCA-ETX scheme."""
    from dataclasses import replace

    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    specs = [
        RunSpec(
            config=replace(
                base.with_scheme("rca-etx").with_gateways(actual_gateways),
                device=replace(base.device, ewma_alpha=alpha),
            ),
        )
        for alpha in alphas
    ]
    executor = executor or SweepExecutor()
    return dict(zip(alphas, executor.run_metrics(specs)))


def ablation_device_class(
    scale: ReproductionScale = BENCHMARK_SCALE,
    nominal_gateways: int = 70,
    scheme: str = "robc",
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, RunMetrics]:
    """Modified Class-C versus Queue-based Class-A (performance and energy, Sec. VII-C)."""
    from dataclasses import replace

    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    device_classes = ("modified-class-c", "queue-based-class-a")
    specs = [
        RunSpec(
            config=replace(
                base.with_scheme(scheme).with_gateways(actual_gateways),
                device_class=device_class,
            )
        )
        for device_class in device_classes
    ]
    executor = executor or SweepExecutor()
    return dict(zip(device_classes, executor.run_metrics(specs)))


def ablation_gateway_placement(
    scale: ReproductionScale = BENCHMARK_SCALE,
    nominal_gateways: int = 70,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, Dict[str, RunMetrics]]:
    """Grid versus uniform-random gateway placement (Sec. VII-C discussion)."""
    from dataclasses import replace

    base = scale.base_config()
    actual_gateways = max(1, round(nominal_gateways * scale.spatial_scale))
    keys: List[Tuple[str, str]] = [
        (placement, scheme)
        for placement in ("grid", "random")
        for scheme in scale.schemes
    ]
    specs = [
        RunSpec(
            config=replace(
                base.with_scheme(scheme).with_gateways(actual_gateways),
                gateway_placement=placement,
            )
        )
        for placement, scheme in keys
    ]
    executor = executor or SweepExecutor()
    results: Dict[str, Dict[str, RunMetrics]] = {}
    for (placement, scheme), metrics in zip(keys, executor.run_metrics(specs)):
        results.setdefault(placement, {})[scheme] = metrics
    return results
