"""repro: a reproduction of "Contact-Aware Opportunistic Data Forwarding in
Disconnected LoRaWAN Mobile Networks" (Chen et al., ICDCS 2020).

The package provides:

* the paper's metrics and protocols — RCA-ETX, ROBC, Modified Class-C and
  Queue-based Class-A (:mod:`repro.core`, :mod:`repro.routing`,
  :mod:`repro.mac`);
* the full simulation substrate they are evaluated on — a discrete-event
  kernel, a LoRa PHY, a LoRaWAN MAC, a synthetic London bus network and a
  time-varying contact topology (:mod:`repro.sim`, :mod:`repro.phy`,
  :mod:`repro.mobility`, :mod:`repro.network`);
* an experiment harness reproducing every figure of the paper's evaluation,
  with a scenario-preset registry and the ``repro`` CLI on top
  (:mod:`repro.experiments`, :mod:`repro.analysis`).

Quickstart::

    from repro.experiments import get_preset, run_scenario

    metrics = run_scenario(get_preset("urban").config)
    print(metrics.mean_delay_s, metrics.throughput_messages)

or, from a shell, the bit-identical ``repro run urban`` (see ``repro list``
for the full catalogue, and docs/scenarios.md for what each preset
reproduces).
"""

from repro.analysis import RunMetrics
from repro.experiments import ScenarioConfig, run_scenario
from repro.routing import SCHEME_REGISTRY, make_scheme

__version__ = "1.0.0"

__all__ = [
    "RunMetrics",
    "ScenarioConfig",
    "run_scenario",
    "SCHEME_REGISTRY",
    "make_scheme",
    "__version__",
]
