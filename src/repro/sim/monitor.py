"""Light-weight statistics probes.

The simulator itself stays metric-agnostic; model code attaches probes where
it wants measurements.  Three probe styles cover everything the evaluation
needs:

* :class:`CounterProbe` — monotonically increasing named counters
  (messages sent, collisions, ...).
* :class:`TallyProbe` — collects samples and reports summary statistics
  (end-to-end delay, hop counts, ...).
* :class:`SeriesProbe` — records ``(time, value)`` pairs and can re-bin them
  into fixed-width windows (throughput over the day, Figs. 10–11).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


class CounterProbe:
    """A set of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to counter ``name``."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._counts[name] += amount

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counts)


@dataclass(frozen=True)
class TallySummary:
    """Summary statistics of a tally."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float

    @staticmethod
    def empty() -> "TallySummary":
        nan = float("nan")
        return TallySummary(0, nan, nan, nan, nan, nan, nan)


class TallyProbe:
    """Collects scalar samples and summarises them."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        """Append one sample."""
        if math.isnan(value):
            raise ValueError("cannot record NaN samples")
        self._samples.append(float(value))

    def extend(self, values: Sequence[float]) -> None:
        """Append many samples."""
        for value in values:
            self.record(value)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def summary(self) -> TallySummary:
        """Return count/mean/std/min/max/median/p95 of the samples."""
        if not self._samples:
            return TallySummary.empty()
        arr = np.asarray(self._samples, dtype=float)
        return TallySummary(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
        )


class SeriesProbe:
    """Records time-stamped values and supports fixed-width re-binning."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float = 1.0) -> None:
        """Append a ``(time, value)`` observation; times need not be ordered."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def points(self) -> List[Tuple[float, float]]:
        """A copy of the raw ``(time, value)`` observations."""
        return list(zip(self._times, self._values))

    def binned(self, bin_width: float, horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Sum values into consecutive bins of ``bin_width`` seconds up to ``horizon``.

        Returns ``(bin_start_times, bin_sums)``.  Observations beyond the
        horizon are dropped; this mirrors how the paper reports "messages
        received every 10 minutes over 24 hours".
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        n_bins = int(math.ceil(horizon / bin_width))
        edges = np.arange(n_bins + 1, dtype=float) * bin_width
        sums = np.zeros(n_bins, dtype=float)
        for time, value in zip(self._times, self._values):
            if time >= horizon:
                continue
            index = min(int(time // bin_width), n_bins - 1)
            sums[index] += value
        return edges[:-1], sums
