"""The simulation clock, process scheduler and run loop.

:class:`Simulator` owns the clock and the event queue.  Model code can either
schedule plain callbacks (:meth:`Simulator.schedule`,
:meth:`Simulator.schedule_in`) or run generator-based :class:`Process` objects
that ``yield Timeout(delay)`` to suspend themselves — the same coding style as
SimPy, which keeps protocol state machines readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.events import Event, EventQueue


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process generator to sleep for ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"Timeout delay must be non-negative, got {self.delay}")


class Process:
    """A generator-driven simulation process.

    The wrapped generator yields :class:`Timeout` objects; each yield suspends
    the process and schedules its resumption.  When the generator returns the
    process is marked finished.
    """

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "") -> None:
        self._simulator = simulator
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self._resume_event: Optional[Event] = None

    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first step of the process ``delay`` seconds from now."""
        self._resume_event = self._simulator.schedule_in(delay, self._step, priority=5)
        return self

    def stop(self) -> None:
        """Cancel the pending resumption and close the generator."""
        if self._resume_event is not None and self._resume_event.pending:
            self._resume_event.cancel()
        if not self.finished:
            self._generator.close()
            self.finished = True

    def _step(self, _payload: Any = None) -> None:
        if self.finished:
            return
        try:
            yielded = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(yielded, Timeout):
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; expected Timeout"
            )
        self._resume_event = self._simulator.schedule_in(yielded.delay, self._step, priority=5)


class Simulator:
    """Discrete-event simulator: clock, event queue and run loop."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processes: List[Process] = []
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        callback: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < now={self._now}")
        return self._queue.schedule(time, callback, payload, priority)

    def schedule_in(
        self,
        delay: float,
        callback: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds after the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, payload, priority)

    def process(self, generator: Generator, name: str = "", delay: float = 0.0) -> Process:
        """Register and start a generator-based :class:`Process`."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc.start(delay)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` still fire).  ``None`` runs until the queue drains.
        max_events:
            Safety valve for tests; stop after this many events.

        Returns
        -------
        int
            The number of events fired.
        """
        fired = 0
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                self._now = event.time
                event.fire()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            # The run covered everything scheduled up to ``until``: land the
            # clock exactly there.  When ``max_events`` stopped us with events
            # still due at or before ``until``, the clock stays at the last
            # fired event so a follow-up run() resumes without time travel.
            if until is not None and self._now < until:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            self._running = False
        return fired

    def stop_all_processes(self) -> None:
        """Stop every registered process (used for clean teardown)."""
        for proc in self._processes:
            proc.stop()

    def drain(self) -> None:
        """Drop all pending events without firing them."""
        self._queue.clear()


def every(
    simulator: Simulator,
    interval: float,
    callback: Callable[[float], None],
    start: float = 0.0,
    jitter: Iterable[float] = (),
) -> Process:
    """Run ``callback(now)`` every ``interval`` seconds, starting at ``start``.

    ``jitter`` is an optional iterable of per-tick offsets added to the
    interval (e.g. drawn from a random stream) so that periodic transmitters do
    not stay phase-locked forever.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    jitter_iter = iter(jitter)

    def _loop() -> Generator:
        while True:
            callback(simulator.now)
            extra = next(jitter_iter, 0.0)
            yield Timeout(interval + extra)

    return simulator.process(_loop(), name="every", delay=start)
