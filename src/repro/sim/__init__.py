"""Discrete-event simulation kernel.

This package provides the minimal but complete discrete-event machinery the
rest of the library is built on: a simulation clock and event heap
(:mod:`repro.sim.events`), generator-based processes
(:mod:`repro.sim.kernel`), named deterministic random streams
(:mod:`repro.sim.randomness`) and light-weight statistics probes
(:mod:`repro.sim.monitor`).

The kernel intentionally mirrors the small subset of SimPy semantics used by
LoRa simulators (timeouts, process scheduling, interrupt-free waits) so the
higher layers read like conventional network-simulator code while keeping the
dependency surface to the standard library plus NumPy.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Process, Simulator, Timeout
from repro.sim.monitor import CounterProbe, SeriesProbe, TallyProbe
from repro.sim.randomness import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "Simulator",
    "Timeout",
    "CounterProbe",
    "SeriesProbe",
    "TallyProbe",
    "RandomStreams",
]
