"""Named deterministic random streams.

Every stochastic component of the simulator (shadowing, message jitter, bus
timetable generation, gateway placement noise, ...) draws from its own named
stream derived from a single master seed.  This keeps experiments reproducible
and — importantly for fair scheme comparisons — ensures that changing one
component (say, the forwarding scheme) does not perturb the random numbers
consumed by an unrelated component (say, the mobility trace).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed the streams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically on first use."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child :class:`RandomStreams` whose master seed depends on ``name``.

        Useful for giving each replication of a sweep its own family of
        streams while staying reproducible from the top-level seed.
        """
        return RandomStreams(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
