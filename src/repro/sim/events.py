"""Event primitives and the time-ordered event queue.

The simulator schedules :class:`Event` objects on an :class:`EventQueue`, a
binary heap keyed by ``(time, priority, sequence)``.  The sequence number makes
ordering total and deterministic: two events scheduled for the same time and
priority always fire in the order they were scheduled, regardless of the
callback identity.  Determinism here is what makes whole-network simulations
reproducible from a single seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


#: Canonical secondary-ordering priorities for simulation engines built on
#: this queue.  Transmission completions must resolve before new transmission
#: attempts scheduled for the same instant (a device whose uplink just ended
#: sees the acknowledgement before it decides to retransmit), so completions
#: get the lower (earlier) priority.  Defined once here — the event queue owns
#: event ordering — rather than per engine.
COMPLETION_PRIORITY = 1
ATTEMPT_PRIORITY = 2


class EventCancelled(Exception):
    """Raised when interacting with an event that has been cancelled."""


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    callback:
        Callable invoked with ``payload`` when the event fires.  ``None`` is
        allowed for pure synchronisation events.
    payload:
        Arbitrary object handed to the callback.
    priority:
        Secondary ordering key; lower priorities fire first at equal times.
    """

    time: float
    callback: Optional[Callable[[Any], None]] = None
    payload: Any = None
    priority: int = 0
    sequence: int = field(default=-1, compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.fired:
            raise EventCancelled("cannot cancel an event that already fired")
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (if any) exactly once."""
        if self.cancelled:
            raise EventCancelled("cannot fire a cancelled event")
        if self.fired:
            raise EventCancelled("event already fired")
        self.fired = True
        if self.callback is not None:
            self.callback(self.payload)

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.fired and not self.cancelled


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for _, _, _, event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for _, _, _, event in self._heap)

    def push(self, event: Event) -> Event:
        """Schedule ``event`` and return it (for chaining/cancellation)."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, (event.time, event.priority, event.sequence, event))
        return event

    def schedule(
        self,
        time: float,
        callback: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Convenience wrapper building and pushing an :class:`Event`."""
        return self.push(Event(time=time, callback=callback, payload=payload, priority=priority))

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)[3]

    def clear(self) -> None:
        """Drop every scheduled event."""
        self._heap.clear()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
