"""Exponentially weighted moving average (paper Eq. 4).

``E[µ'(t)] = (1 − α) · E[µ'(t − ∆t)] + α · µ'(t)`` with ``E[µ'(0)] = µ'(0)``.
A higher α adapts faster to the most recent Real-time PST sample but makes
scheduling less stable; the paper's evaluation fixes α = 0.5 and the
``ablation_alpha`` benchmark sweeps it.
"""

from __future__ import annotations

import math
from typing import Optional


class ExponentialMovingAverage:
    """A single-valued EWMA estimator with the paper's initialisation rule."""

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._samples = 0

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or ``None`` before the first sample."""
        return self._value

    @property
    def sample_count(self) -> int:
        """Number of samples folded in so far."""
        return self._samples

    @property
    def initialised(self) -> bool:
        """True once at least one sample has been observed."""
        return self._value is not None

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the estimate and return the new value."""
        if math.isnan(sample) or math.isinf(sample):
            raise ValueError(f"EWMA samples must be finite, got {sample}")
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = (1.0 - self.alpha) * self._value + self.alpha * float(sample)
        self._samples += 1
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None
        self._samples = 0
