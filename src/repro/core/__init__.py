"""The paper's primary contribution: RCA-ETX and ROBC.

* :mod:`repro.core.ewma` — the exponentially weighted moving average of
  Eq. (4).
* :mod:`repro.core.pst` — Packet Service Time and Real-time PST (Eqs. 2–3),
  maintained per device from its own transmission history.
* :mod:`repro.core.rca_etx` — the RCA-ETX metric (node-to-sink and
  node-to-node, Eqs. 5–6) and the greedy handover rule of Eq. (1).
* :mod:`repro.core.rgq` — Real-time Gateway Quality ϕ with stability bounds.
* :mod:`repro.core.robc` — ROBC weights and partial-handover amounts
  (Eq. 10) plus the Queue-based Class-A receive-window rule (Eq. 11).
* :mod:`repro.core.etx` / :mod:`repro.core.ca_etx` — the classic ETX and
  Contact-Aware ETX baselines RCA-ETX is built from.
"""

from repro.core.ca_etx import CAETXEstimator
from repro.core.ewma import ExponentialMovingAverage
from repro.core.etx import ETXEstimator
from repro.core.pst import RealTimePacketServiceTime, SinkContactTracker
from repro.core.rca_etx import (
    RCAETXState,
    link_rca_etx,
    should_forward_greedy,
)
from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import (
    queue_based_class_a_window_fraction,
    robc_transfer_amount,
    robc_weight,
)

__all__ = [
    "CAETXEstimator",
    "ExponentialMovingAverage",
    "ETXEstimator",
    "RealTimePacketServiceTime",
    "SinkContactTracker",
    "RCAETXState",
    "link_rca_etx",
    "should_forward_greedy",
    "RealTimeGatewayQuality",
    "queue_based_class_a_window_fraction",
    "robc_transfer_amount",
    "robc_weight",
]
