"""RCA-ETX: the node-to-node link metric and the greedy handover rule.

* Eq. (5): the RSSI→capacity mapping (implemented in
  :class:`repro.phy.link.LinkCapacityModel`).
* Eq. (6): ``RCA-ETX_{x,y}(t) = packet_bits / c_{x,y}(t)`` — the time to push
  one packet over the overheard device-to-device link.
* Eq. (1): device ``x`` hands its queue to ``y`` when its own route to the
  sinks is more expensive than going through ``y``:
  ``RCA-ETX_{x,S} > RCA-ETX_{y,S} + RCA-ETX_{x,y}``.

The node-to-sink term ``RCA-ETX_{x,S}`` is maintained by
:class:`repro.core.pst.RealTimePacketServiceTime`; this module combines the
pieces into the per-device state object the MAC layer carries around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pst import DEFAULT_MAX_SERVICE_TIME_S, RealTimePacketServiceTime
from repro.phy.link import LinkCapacityModel


def link_rca_etx(
    rssi_dbm: float,
    capacity_model: LinkCapacityModel,
    packet_bits: float = 8.0 * 51.0,
    max_value: float = DEFAULT_MAX_SERVICE_TIME_S,
) -> float:
    """RCA-ETX of a device-to-device link from the RSSI of an overheard frame.

    Implements Eq. (6) on top of the Eq. (5) capacity mapping: the expected
    time to transfer one packet over the link, capped at ``max_value`` when
    the link has zero capacity.
    """
    if packet_bits <= 0:
        raise ValueError(f"packet_bits must be positive, got {packet_bits}")
    capacity = capacity_model.capacity_bps(rssi_dbm)
    if capacity <= 0:
        return max_value
    return min(packet_bits / capacity, max_value)


def should_forward_greedy(
    own_sink_metric: float,
    neighbour_sink_metric: float,
    link_metric: float,
) -> bool:
    """The handover rule of Eq. (1).

    Device ``x`` forwards to ``y`` only when doing so strictly lowers the
    expected delivery cost: ``RCA-ETX_{x,S} > RCA-ETX_{y,S} + RCA-ETX_{x,y}``.
    """
    for name, value in (
        ("own_sink_metric", own_sink_metric),
        ("neighbour_sink_metric", neighbour_sink_metric),
        ("link_metric", link_metric),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    return own_sink_metric > neighbour_sink_metric + link_metric


@dataclass
class RCAETXState:
    """Per-device RCA-ETX state: the smoothed node-to-sink metric plus helpers.

    This is the object a device embeds; the MAC calls
    :meth:`observe_transmission_slot` at every uplink opportunity and
    :meth:`sink_metric` whenever it needs the advertised value.
    """

    alpha: float = 0.5
    packet_bits: float = 8.0 * 51.0
    max_service_time_s: float = DEFAULT_MAX_SERVICE_TIME_S
    estimator: RealTimePacketServiceTime = field(init=False)

    def __post_init__(self) -> None:
        self.estimator = RealTimePacketServiceTime(
            alpha=self.alpha,
            packet_bits=self.packet_bits,
            max_service_time_s=self.max_service_time_s,
        )

    def observe_transmission_slot(
        self, now: float, sink_capacity_bps: float, wait_s: float = 0.0
    ) -> float:
        """Record a transmission-slot observation; returns the fresh RPST sample."""
        return self.estimator.observe_slot(now, sink_capacity_bps, wait_s)

    def sink_metric(self) -> float:
        """Current RCA-ETX_{x,S} (smoothed expected service time, seconds)."""
        return self.estimator.expected

    def link_metric(
        self, rssi_dbm: float, capacity_model: LinkCapacityModel
    ) -> float:
        """RCA-ETX_{x,y} for an overheard frame at ``rssi_dbm``."""
        return link_rca_etx(
            rssi_dbm,
            capacity_model,
            packet_bits=self.packet_bits,
            max_value=self.max_service_time_s,
        )

    def should_forward_to(
        self,
        neighbour_sink_metric: float,
        rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        own_sink_metric: Optional[float] = None,
    ) -> bool:
        """Apply Eq. (1) against a neighbour's advertised sink metric."""
        own = self.sink_metric() if own_sink_metric is None else own_sink_metric
        link = self.link_metric(rssi_dbm, capacity_model)
        return should_forward_greedy(own, neighbour_sink_metric, link)
