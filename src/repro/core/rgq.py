"""Real-time Gateway Quality (RGQ), ``ϕ_x(t) = 1 / RCA-ETX_{x,S}(t)``.

ROBC uses ϕ as a correction factor on queue lengths: a large backlog matters
less on a device that drains quickly towards the sinks.  For the backpressure
stability argument to hold, ϕ must stay inside fixed positive bounds
``0 < ϕ_min ≤ ϕ ≤ ϕ_max < ∞`` (Sec. V-B1); this class owns that clamping.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RealTimeGatewayQuality:
    """Computes bounded ϕ values from RCA-ETX sink metrics."""

    phi_min: float = 1e-6
    phi_max: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.phi_min <= self.phi_max:
            raise ValueError(
                f"bounds must satisfy 0 < phi_min <= phi_max, got "
                f"({self.phi_min}, {self.phi_max})"
            )

    def phi(self, sink_metric_s: float) -> float:
        """ϕ for a node whose RCA-ETX_{x,S} is ``sink_metric_s`` seconds."""
        if sink_metric_s < 0:
            raise ValueError(f"sink metric must be non-negative, got {sink_metric_s}")
        if sink_metric_s == 0:
            return self.phi_max
        return min(max(1.0 / sink_metric_s, self.phi_min), self.phi_max)

    def corrected_queue(self, queue_length: float, sink_metric_s: float) -> float:
        """The ϕ-corrected backlog ``Q / ϕ`` used in the ROBC weight."""
        if queue_length < 0:
            raise ValueError(f"queue length must be non-negative, got {queue_length}")
        return queue_length / self.phi(sink_metric_s)
