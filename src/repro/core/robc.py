"""ROBC: Real-time Opportunistic Backpressure Collection (Sec. V).

A device ``y`` appends its RCA-ETX and queue length to every uplink.  A device
``x`` that overhears the packet computes the weight

``ω_{x,y}(t) = Q_x(t)/ϕ_x(t) − Q_y(t)/ϕ_y(t)``            (Eq. 10)

and, when it is positive, hands over

``δ_{x,y}(t) = Q_x(t) − Q_y(t) · ϕ_x/ϕ_y``

messages (clamped to what it actually holds).  Unlike textbook backpressure,
only the δ amount is transferred (not the full link capacity) to avoid packets
ping-ponging between devices under sparse, low-duty-cycle links; the receiving
device also never returns data to the device it got it from (loop guard,
implemented in the routing layer).

The Queue-based Class-A receive-window rule of Eq. (11) lives here too since
it is derived from the same quantities (queue length and ϕ).
"""

from __future__ import annotations

from repro.core.rgq import RealTimeGatewayQuality


def robc_weight(
    own_queue: float,
    own_sink_metric_s: float,
    neighbour_queue: float,
    neighbour_sink_metric_s: float,
    rgq: RealTimeGatewayQuality = RealTimeGatewayQuality(),
) -> float:
    """The ROBC weight ω_{x,y} of Eq. (10); positive means "push towards y"."""
    return rgq.corrected_queue(own_queue, own_sink_metric_s) - rgq.corrected_queue(
        neighbour_queue, neighbour_sink_metric_s
    )


def robc_transfer_amount(
    own_queue: float,
    own_sink_metric_s: float,
    neighbour_queue: float,
    neighbour_sink_metric_s: float,
    rgq: RealTimeGatewayQuality = RealTimeGatewayQuality(),
) -> float:
    """How much data ``x`` should hand to ``y``: ``δ = Q_x − Q_y · ϕ_x/ϕ_y``.

    Returns 0 when the weight is not positive.  The result is clamped to
    ``[0, own_queue]`` — a device cannot transfer more than it holds.
    """
    weight = robc_weight(
        own_queue, own_sink_metric_s, neighbour_queue, neighbour_sink_metric_s, rgq
    )
    if weight <= 0:
        return 0.0
    phi_own = rgq.phi(own_sink_metric_s)
    phi_neighbour = rgq.phi(neighbour_sink_metric_s)
    delta = own_queue - neighbour_queue * (phi_own / phi_neighbour)
    return float(min(max(delta, 0.0), own_queue))


def queue_based_class_a_window_fraction(
    queue_length: float,
    max_queue_length: float,
    sink_metric_s: float,
    rgq: RealTimeGatewayQuality = RealTimeGatewayQuality(),
) -> float:
    """The Queue-based Class-A receive-window fraction γ_x(t) of Eq. (11).

    ``γ_x(t) = ϕ_max · Q_x(t) / (ϕ_x(t) · Q_max)`` clamped to ``[0, 1]``: a
    device with a large backlog and a poor gateway link keeps its receiver
    open longer to raise the odds of finding a helper, whereas a device that
    drains easily can sleep.
    """
    if max_queue_length <= 0:
        raise ValueError(f"max_queue_length must be positive, got {max_queue_length}")
    if queue_length < 0:
        raise ValueError(f"queue_length must be non-negative, got {queue_length}")
    phi = rgq.phi(sink_metric_s)
    fraction = rgq.phi_max * queue_length / (phi * max_queue_length)
    return float(min(max(fraction, 0.0), 1.0))
