"""Packet Service Time (PST) and Real-time PST (RPST), paper Eqs. (2)–(3).

The virtual link between a device ``x`` and the set of sinks ``S`` is treated
as a queue whose service time is the time needed to push one packet through.
When the device is in contact with a gateway the service time is just the
transmission time ``packet_bits / c_{x,S}(t)``; when it is disconnected, the
(unknowable) wait until the next contact has to be estimated.  The paper's
real-time estimator replaces the unavailable future contact time with the time
elapsed since the *last* contact plus the residual wait before the device may
transmit again (Eq. 3), and smooths the resulting samples with an EWMA
(Eq. 4).  The smoothed value is the node-to-sink RCA-ETX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.ewma import ExponentialMovingAverage

#: Ceiling applied to service-time estimates when a device has never seen a
#: gateway; keeps comparisons well-defined without infinities.
DEFAULT_MAX_SERVICE_TIME_S = 24 * 3600.0


@dataclass
class SinkContactTracker:
    """Remembers what a device learned from its own transmission slots.

    ``observe(time, capacity)`` is called at every device-to-sink
    communication opportunity.  The tracker keeps the capacity seen at the
    most recent slot and the time/capacity of the last slot at which the
    device was actually connected (the end of its n-th contact, ``ẗⁿ`` in the
    paper's notation, as seen through the slotted sampling the duty cycle
    allows).
    """

    last_slot_time: Optional[float] = None
    last_slot_capacity_bps: float = 0.0
    last_contact_time: Optional[float] = None
    last_contact_capacity_bps: float = 0.0
    contact_count: int = 0

    def observe(self, time: float, capacity_bps: float) -> None:
        """Record the sink capacity observed at a communication slot."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        if capacity_bps < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bps}")
        if self.last_slot_time is not None and time < self.last_slot_time:
            raise ValueError("observations must be made in non-decreasing time order")
        was_connected = self.last_slot_capacity_bps > 0.0
        self.last_slot_time = time
        self.last_slot_capacity_bps = capacity_bps
        if capacity_bps > 0.0:
            if not was_connected:
                self.contact_count += 1
            self.last_contact_time = time
            self.last_contact_capacity_bps = capacity_bps

    @property
    def has_contact_history(self) -> bool:
        """True once the device has been connected to a sink at least once."""
        return self.last_contact_time is not None


class RealTimePacketServiceTime:
    """Computes RPST samples (Eq. 3) and maintains their EWMA (Eq. 4).

    Parameters
    ----------
    alpha:
        EWMA weight of Eq. (4); the paper uses 0.5.
    packet_bits:
        Size of the packet whose service time is being estimated; RPST scales
        linearly with it.  Using the actual LoRaWAN packet size keeps RCA-ETX
        in seconds-per-packet, the unit the handover rule compares.
    max_service_time_s:
        Ceiling used when the device has no contact history at all.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        packet_bits: float = 8.0 * 51.0,
        max_service_time_s: float = DEFAULT_MAX_SERVICE_TIME_S,
    ) -> None:
        if packet_bits <= 0:
            raise ValueError(f"packet_bits must be positive, got {packet_bits}")
        if max_service_time_s <= 0:
            raise ValueError("max_service_time_s must be positive")
        self.packet_bits = packet_bits
        self.max_service_time_s = max_service_time_s
        self.tracker = SinkContactTracker()
        self._ewma = ExponentialMovingAverage(alpha=alpha)

    # ------------------------------------------------------------------ #
    # Instantaneous estimates
    # ------------------------------------------------------------------ #
    def transmission_time(self, capacity_bps: float) -> float:
        """Time to push one packet through a link of ``capacity_bps`` (capped)."""
        if capacity_bps <= 0:
            return self.max_service_time_s
        return min(self.packet_bits / capacity_bps, self.max_service_time_s)

    def rpst(self, now: float, wait_s: float = 0.0) -> float:
        """Real-time PST µ'_{x,S}(now) per Eq. (3).

        ``wait_s`` is ``t^∆_x``: the residual time before the device is next
        allowed to transmit towards the sinks (duty-cycle or slot wait).
        """
        if wait_s < 0:
            raise ValueError(f"wait_s must be non-negative, got {wait_s}")
        tracker = self.tracker
        if tracker.last_slot_time is None or not tracker.has_contact_history:
            return self.max_service_time_s
        if tracker.last_slot_capacity_bps > 0.0:
            # Connected at the most recent slot: service time is the
            # transmission time at that capacity plus the residual wait.
            service = self.transmission_time(tracker.last_slot_capacity_bps) + wait_s
        else:
            # Disconnected: fall back to the capacity seen at the end of the
            # last contact and add the time elapsed since then.
            elapsed = max(now - float(tracker.last_contact_time), 0.0)
            service = (
                self.transmission_time(tracker.last_contact_capacity_bps) + elapsed + wait_s
            )
        return min(service, self.max_service_time_s)

    # ------------------------------------------------------------------ #
    # Slot updates / smoothed metric
    # ------------------------------------------------------------------ #
    def observe_slot(self, now: float, capacity_bps: float, wait_s: float = 0.0) -> float:
        """Record a communication-slot observation and fold the RPST sample into the EWMA.

        Returns the RPST sample computed *after* the observation, i.e. the
        value the device would advertise in the packet it sends at this slot.
        """
        self.tracker.observe(now, capacity_bps)
        sample = self.rpst(now, wait_s)
        self._ewma.update(sample)
        return sample

    @property
    def expected(self) -> float:
        """The smoothed node-to-sink service time E[µ'_{x,S}] — RCA-ETX_{x,S}."""
        if not self._ewma.initialised:
            return self.max_service_time_s
        return float(self._ewma.value)

    @property
    def sample_count(self) -> int:
        """Number of slot observations folded into the EWMA."""
        return self._ewma.sample_count

    def reset(self) -> None:
        """Forget all contact history and smoothing state."""
        self.tracker = SinkContactTracker()
        self._ewma.reset()
