"""Contact-Aware ETX (CA-ETX, Yang et al.), the metric RCA-ETX descends from.

CA-ETX targets WSNs with *static sensors and mobile sinks*.  It models the
sensor-to-sink service time from the long-run history of contact durations
and inter-contact gaps: the expected service time combines the historical
mean transmission time with the mean residual wait until the next contact,
computed from the empirical mean µ and variance σ² of the inter-contact
process.  The reasons it degrades in MLoRa-SS (Sec. III-C) — stale statistics
under 1 % duty cycle and sensor-side mobility — are exactly what the
experiments of the paper exploit, so the baseline is kept faithful to the
original long-term-average formulation rather than the real-time one.
"""

from __future__ import annotations

from typing import List


class CAETXEstimator:
    """Long-term-statistics estimator of the node-to-sink service time.

    The estimator ingests completed contact episodes: each episode provides a
    transmission time observed during the contact and the inter-contact gap
    that preceded it.  The CA-ETX value is::

        E[service] = E[tx_time] + E[residual wait]
                   = mean(tx) + (mean(gap)² + var(gap)) / (2 · mean(gap))

    The residual-wait term is the standard renewal-theory mean residual life
    of the inter-contact process, which is how CA-ETX folds mobility into an
    ETX-style cost using only the first two moments (µ, σ).
    """

    def __init__(self, max_value_s: float = 24 * 3600.0) -> None:
        if max_value_s <= 0:
            raise ValueError("max_value_s must be positive")
        self.max_value_s = max_value_s
        self._tx_times: List[float] = []
        self._gaps: List[float] = []

    def record_contact(self, transmission_time_s: float, preceding_gap_s: float) -> None:
        """Record one contact episode and the disconnected gap that preceded it."""
        if transmission_time_s < 0 or preceding_gap_s < 0:
            raise ValueError("times must be non-negative")
        self._tx_times.append(float(transmission_time_s))
        self._gaps.append(float(preceding_gap_s))

    @property
    def sample_count(self) -> int:
        """Number of contact episodes recorded."""
        return len(self._tx_times)

    @property
    def mean_transmission_time(self) -> float:
        """Historical mean transmission time (0 with no history)."""
        if not self._tx_times:
            return 0.0
        return sum(self._tx_times) / len(self._tx_times)

    @property
    def mean_gap(self) -> float:
        """Historical mean inter-contact gap (0 with no history)."""
        if not self._gaps:
            return 0.0
        return sum(self._gaps) / len(self._gaps)

    @property
    def gap_variance(self) -> float:
        """Population variance of the inter-contact gaps."""
        if len(self._gaps) < 2:
            return 0.0
        mean = self.mean_gap
        return sum((g - mean) ** 2 for g in self._gaps) / len(self._gaps)

    @property
    def value(self) -> float:
        """The CA-ETX expected service time in seconds (capped)."""
        if not self._tx_times:
            return self.max_value_s
        mean_gap = self.mean_gap
        if mean_gap <= 0:
            residual_wait = 0.0
        else:
            residual_wait = (mean_gap ** 2 + self.gap_variance) / (2.0 * mean_gap)
        return min(self.mean_transmission_time + residual_wait, self.max_value_s)
