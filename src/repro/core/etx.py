"""Classic ETX (De Couto et al.), the metric RCA-ETX generalises.

ETX estimates the expected number of transmissions needed to get a packet
across a link as ``1 / (d_f · d_r)`` where ``d_f``/``d_r`` are the forward and
reverse delivery ratios measured from probe packets.  It assumes a *static*
link probed frequently — exactly the assumptions that break in MLoRa-SS —
but it is the natural baseline for unit-level comparisons and is reused by the
CA-ETX baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class DeliveryRatioEstimator:
    """Sliding-window delivery-ratio estimator over the last ``window`` probes."""

    def __init__(self, window: int = 16) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._outcomes: Deque[bool] = deque(maxlen=window)

    def record(self, delivered: bool) -> None:
        """Record the outcome of one probe/data transmission."""
        self._outcomes.append(bool(delivered))

    @property
    def ratio(self) -> float:
        """Fraction of recent probes delivered (0 when no history)."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def sample_count(self) -> int:
        """Number of probes currently inside the window."""
        return len(self._outcomes)


class ETXEstimator:
    """Bidirectional ETX estimate from forward and reverse delivery ratios."""

    def __init__(self, window: int = 16, max_etx: float = 1000.0) -> None:
        if max_etx <= 1:
            raise ValueError("max_etx must exceed 1")
        self.forward = DeliveryRatioEstimator(window)
        self.reverse = DeliveryRatioEstimator(window)
        self.max_etx = max_etx

    def record_forward(self, delivered: bool) -> None:
        """Record a forward-direction probe outcome."""
        self.forward.record(delivered)

    def record_reverse(self, delivered: bool) -> None:
        """Record a reverse-direction probe outcome."""
        self.reverse.record(delivered)

    @property
    def value(self) -> float:
        """Current ETX ``1 / (d_f · d_r)``, capped at ``max_etx``."""
        product = self.forward.ratio * self.reverse.ratio
        if product <= 0:
            return self.max_etx
        return min(1.0 / product, self.max_etx)
