"""Forwarding schemes.

Each scheme is a strategy object the simulation engine consults whenever a
device overhears another device's uplink: "should I hand over part of my
queue to the transmitter, and how much?".  The three schemes evaluated in the
paper are NoRouting (plain LoRaWAN with an application-layer queue), the
greedy RCA-ETX scheme of Sec. IV and ROBC of Sec. V.  Two classic DTN
baselines — epidemic routing and binary spray-and-wait — are included as
extensions for comparison studies.
"""

from repro.routing.base import ForwardingDecision, ForwardingScheme
from repro.routing.epidemic import EpidemicScheme
from repro.routing.no_routing import NoRoutingScheme
from repro.routing.rca_etx_scheme import RCAETXScheme
from repro.routing.robc_scheme import ROBCScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme

SCHEME_REGISTRY = {
    scheme_class.name: scheme_class
    for scheme_class in (
        NoRoutingScheme,
        RCAETXScheme,
        ROBCScheme,
        EpidemicScheme,
        SprayAndWaitScheme,
    )
}


def make_scheme(name: str, **kwargs) -> ForwardingScheme:
    """Instantiate a forwarding scheme by its registry name."""
    try:
        scheme_class = SCHEME_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {sorted(SCHEME_REGISTRY)}"
        ) from None
    return scheme_class(**kwargs)


__all__ = [
    "ForwardingDecision",
    "ForwardingScheme",
    "EpidemicScheme",
    "NoRoutingScheme",
    "RCAETXScheme",
    "ROBCScheme",
    "SprayAndWaitScheme",
    "SCHEME_REGISTRY",
    "make_scheme",
]
