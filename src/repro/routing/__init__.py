"""Forwarding schemes.

Each scheme is a strategy object the simulation engine consults whenever a
device overhears another device's uplink: "should I hand over part of my
queue to the transmitter, and how much?".  The three schemes evaluated in the
paper are NoRouting (plain LoRaWAN with an application-layer queue), the
greedy RCA-ETX scheme of Sec. IV and ROBC of Sec. V.  Three classic DTN
baselines — epidemic routing, binary spray-and-wait and PRoPHET-style
delivery-predictability forwarding — are included as extensions for
comparison studies.

Schemes are parameterized by :class:`~repro.routing.config.RoutingConfig`
(a frozen section of every ``ScenarioConfig``) and built through the factory
registry in :mod:`repro.routing.registry`; ``make_scheme`` survives as the
constructor-kwargs convenience for direct/legacy use.
"""

from repro.routing.base import ForwardingDecision, ForwardingScheme
from repro.routing.config import BUFFER_POLICIES, BufferConfig, RoutingConfig
from repro.routing.epidemic import EpidemicScheme
from repro.routing.no_routing import NoRoutingScheme
from repro.routing.prophet import ProphetScheme
from repro.routing.rca_etx_scheme import RCAETXScheme
from repro.routing.registry import (
    SchemeFactory,
    build_scheme,
    register_scheme_factory,
    scheme_names,
)
from repro.routing.robc_scheme import ROBCScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme

SCHEME_REGISTRY = {
    scheme_class.name: scheme_class
    for scheme_class in (
        NoRoutingScheme,
        RCAETXScheme,
        ROBCScheme,
        EpidemicScheme,
        SprayAndWaitScheme,
        ProphetScheme,
    )
}


def make_scheme(name: str, **kwargs) -> ForwardingScheme:
    """Instantiate a forwarding scheme by name with constructor kwargs.

    Prefer :func:`~repro.routing.registry.build_scheme` with a
    :class:`RoutingConfig` for configuration-driven construction; this helper
    serves direct experimentation and name validation.
    """
    try:
        scheme_class = SCHEME_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {sorted(SCHEME_REGISTRY)}"
        ) from None
    return scheme_class(**kwargs)


__all__ = [
    "BUFFER_POLICIES",
    "BufferConfig",
    "ForwardingDecision",
    "ForwardingScheme",
    "EpidemicScheme",
    "NoRoutingScheme",
    "ProphetScheme",
    "RCAETXScheme",
    "ROBCScheme",
    "RoutingConfig",
    "SchemeFactory",
    "SprayAndWaitScheme",
    "SCHEME_REGISTRY",
    "build_scheme",
    "make_scheme",
    "register_scheme_factory",
    "scheme_names",
]
