"""The greedy RCA-ETX forwarding scheme (Sec. IV).

When device ``x`` overhears device ``y``'s uplink carrying ``RCA-ETX_{y,S}``,
it computes the link metric from the frame's RSSI (Eqs. 5–6) and applies the
handover rule of Eq. (1): forward its queued data to ``y`` whenever routing
through ``y`` is expected to be strictly cheaper than waiting for its own
gateway contact.
"""

from __future__ import annotations

from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import ForwardingDecision, ForwardingScheme


class RCAETXScheme(ForwardingScheme):
    """Greedy minimum-expected-delay handover using RCA-ETX."""

    name = "rca-etx"
    requires_queue_length = False
    uses_forwarding = True

    def __init__(self, max_handover_messages: int = 12) -> None:
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.max_handover_messages = max_handover_messages

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        if packet.rca_etx_s is None:
            return ForwardingDecision.no()
        if not receiver.has_data():
            return ForwardingDecision.no()
        forward = receiver.rca_etx.should_forward_to(
            neighbour_sink_metric=packet.rca_etx_s,
            rssi_dbm=link_rssi_dbm,
            capacity_model=capacity_model,
        )
        if not forward:
            return ForwardingDecision.no()
        limit = min(self.max_handover_messages, receiver.queue_length())
        return ForwardingDecision(forward=True, message_limit=limit)
