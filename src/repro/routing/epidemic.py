"""Epidemic routing (Vahdat & Becker), a classic DTN baseline.

Every overhearing opportunity is used to *replicate* queued messages onto the
transmitter, regardless of metrics.  Delivery delay is near-optimal but the
message overhead is unbounded, which is precisely the cost RCA-ETX/ROBC try to
avoid; the scheme is included as an extension so users can quantify that
trade-off in the same harness.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import NO_DECISION, ForwardingDecision, ForwardingScheme


class EpidemicScheme(ForwardingScheme):
    """Replicate everything to everyone heard."""

    name = "epidemic"
    requires_queue_length = False
    uses_forwarding = True

    def __init__(self, max_handover_messages: int = 12) -> None:
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.max_handover_messages = max_handover_messages

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        if not receiver.has_data():
            return ForwardingDecision.no()
        limit = min(self.max_handover_messages, receiver.queue_length())
        return ForwardingDecision(forward=True, message_limit=limit, copy=True)

    def on_overhear_batch(
        self,
        packets: Sequence[UplinkPacket],
        receivers: Sequence[EndDevice],
        rssi_dbm: Sequence[float],
        capacity_models: Sequence[LinkCapacityModel],
        nows: Sequence[float],
    ) -> List[ForwardingDecision]:
        """Batched :meth:`on_overhear`: epidemic replication reads only each
        receiver's queue length, so the batch is a plain hoisted loop."""
        max_handover = self.max_handover_messages
        decisions: List[ForwardingDecision] = []
        append = decisions.append
        for receiver in receivers:
            queued = len(receiver.queue)
            if queued:
                append(
                    ForwardingDecision(
                        forward=True,
                        message_limit=queued if queued < max_handover else max_handover,
                        copy=True,
                    )
                )
            else:
                append(NO_DECISION)
        return decisions
