"""NoRouting: plain LoRaWAN with an application-layer queue (Sec. VII-A7).

Devices keep unacknowledged messages in their queue and retry at their own
transmission opportunities, but never hand data to other devices.  This is
the baseline every figure compares against.
"""

from __future__ import annotations

from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import ForwardingDecision, ForwardingScheme


class NoRoutingScheme(ForwardingScheme):
    """Never forwards: the overheard packet is simply ignored."""

    name = "no-routing"
    requires_queue_length = False
    uses_forwarding = False

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        return ForwardingDecision.no()
