"""PRoPHET-style delivery-predictability forwarding (Lindgren et al.).

PRoPHET (Probabilistic Routing Protocol using History of Encounters and
Transitivity) maintains, per node, a delivery predictability for each
destination, grown on encounters and aged between them.  This simulation has
a single logical destination — the gateway/sink set — so the scheme keeps one
predictability ``P_x ∈ [0, 1)`` per device:

* **Direct update** — whenever device ``x`` takes a transmission slot with a
  gateway in range: ``P_x ← P_x + (1 − P_x) · p_init``.
* **Aging** — before any use: ``P_x ← P_x · γ^Δt`` with ``Δt`` the seconds
  since the last update (γ is a per-second base, close to 1).
* **Transitive update** — when ``x`` overhears ``y``'s uplink, ``x`` learns
  it can route via ``y``: ``P_x ← max(P_x, P_y · β)``.

Forwarding rule: on overhearing ``y``, device ``x`` replicates queued
messages onto ``y`` when ``P_y > P_x`` — the carrier more likely to meet a
gateway gets a copy, like the DTN baselines (the sender keeps its own
copies; the network server deduplicates).

The predictability table lives on the scheme object (one fresh instance per
built scenario), keyed by device id — the simulation shortcut for state that
firmware would keep per device, same as the spray-and-wait ticket attribute.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import NO_DECISION, ForwardingDecision, ForwardingScheme


class ProphetScheme(ForwardingScheme):
    """Replicate to neighbours with higher sink delivery predictability."""

    name = "prophet"
    requires_queue_length = False
    uses_forwarding = True

    def __init__(
        self,
        p_init: float = 0.75,
        beta: float = 0.25,
        gamma: float = 0.998,
        max_handover_messages: int = 12,
    ) -> None:
        if not 0 < p_init <= 1:
            raise ValueError("p_init must be in (0, 1]")
        if not 0 <= beta <= 1:
            raise ValueError("beta must be in [0, 1]")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.p_init = p_init
        self.beta = beta
        self.gamma = gamma
        self.max_handover_messages = max_handover_messages
        self._predictability: Dict[str, float] = {}
        self._last_update: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Predictability table
    # ------------------------------------------------------------------ #
    def predictability(self, device_id: str, now: float) -> float:
        """The aged delivery predictability of ``device_id`` at ``now``."""
        value = self._predictability.get(device_id, 0.0)
        last = self._last_update.get(device_id)
        if last is not None and now > last and value > 0.0:
            value *= self.gamma ** (now - last)
            self._predictability[device_id] = value
        self._last_update[device_id] = max(now, last if last is not None else now)
        return value

    def _set(self, device_id: str, value: float, now: float) -> None:
        self._predictability[device_id] = value
        self._last_update[device_id] = now

    def observe_transmission_slot(
        self, device_id: str, gateway_connected: bool, now: float
    ) -> None:
        """Direct update on gateway contact; pure aging otherwise."""
        current = self.predictability(device_id, now)
        if gateway_connected:
            self._set(device_id, current + (1.0 - current) * self.p_init, now)

    # ------------------------------------------------------------------ #
    # Forwarding decision
    # ------------------------------------------------------------------ #
    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        sender_pred = self.predictability(packet.sender, now)
        receiver_pred = self.predictability(receiver.device_id, now)
        # Transitive update: the receiver can now route via the sender.
        transitive = sender_pred * self.beta
        if transitive > receiver_pred:
            self._set(receiver.device_id, transitive, now)
        if not receiver.has_data():
            return ForwardingDecision.no()
        if sender_pred <= receiver_pred:
            return ForwardingDecision.no()
        limit = min(self.max_handover_messages, receiver.queue_length())
        return ForwardingDecision(forward=True, message_limit=limit, copy=True)

    def on_overhear_batch(
        self,
        packets: Sequence[UplinkPacket],
        receivers: Sequence[EndDevice],
        rssi_dbm: Sequence[float],
        capacity_models: Sequence[LinkCapacityModel],
        nows: Sequence[float],
    ) -> List[ForwardingDecision]:
        """Batched :meth:`on_overhear` preserving the exact table-update order.

        Pairs are processed in sequence order, so every aging/transitive
        update to the predictability table happens at the same ``now`` and in
        the same order as the scalar loop: the sender is aged once at its
        first pair (repeat pairs of the same transmission re-age with
        ``Δt = 0``, a no-op), and each receiver — which appears at most once
        per batch — gets its transitive update exactly where the scalar path
        applies it.
        """
        predictability = self.predictability
        beta = self.beta
        max_handover = self.max_handover_messages
        decisions: List[ForwardingDecision] = []
        append = decisions.append
        for packet, receiver, now in zip(packets, receivers, nows):
            sender_pred = predictability(packet.sender, now)
            receiver_id = receiver.device_id
            receiver_pred = predictability(receiver_id, now)
            transitive = sender_pred * beta
            if transitive > receiver_pred:
                self._predictability[receiver_id] = transitive
                self._last_update[receiver_id] = now
            queued = len(receiver.queue)
            if not queued or sender_pred <= receiver_pred:
                append(NO_DECISION)
                continue
            append(
                ForwardingDecision(
                    forward=True,
                    message_limit=min(max_handover, queued),
                    copy=True,
                )
            )
        return decisions
