"""The forwarding-scheme interface.

A scheme sees exactly what a real device would see: its own MAC state (queue,
RCA-ETX estimator) and the overheard packet with whatever metric fields the
transmitter piggybacked.  It returns a :class:`ForwardingDecision`, and the
simulation engine is responsible for checking whether the handover is
physically possible (duty cycle, link still up) and for moving the messages.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel


@dataclass(frozen=True)
class ForwardingDecision:
    """What a scheme wants to do after overhearing a neighbour's uplink.

    ``message_limit`` is the maximum number of messages to hand over;
    ``copy`` requests replication (the sender keeps its copies) instead of a
    move, which only the DTN baselines use.
    """

    forward: bool
    message_limit: int = 0
    copy: bool = False

    def __post_init__(self) -> None:
        if self.forward and self.message_limit <= 0:
            raise ValueError("a positive message_limit is required when forwarding")
        if self.message_limit < 0:
            raise ValueError("message_limit must be non-negative")

    @staticmethod
    def no() -> "ForwardingDecision":
        """The 'keep everything' decision."""
        return NO_DECISION


#: The shared 'keep everything' decision.  ForwardingDecision is frozen, so
#: one instance can serve every negative verdict — the overhear hot path
#: produces millions of them per large run.
NO_DECISION = ForwardingDecision(forward=False, message_limit=0)


class ForwardingScheme(ABC):
    """Strategy consulted by the engine on every overheard uplink."""

    #: Registry name; subclasses override.
    name: str = "base"

    #: Whether devices should piggyback their queue length on uplinks.
    requires_queue_length: bool = False

    #: Whether the scheme uses device-to-device forwarding at all (NoRouting
    #: disables overhearing work entirely, saving simulation time).
    uses_forwarding: bool = True

    @abstractmethod
    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        """Decide whether ``receiver`` should hand data to the packet's sender."""

    def on_overhear_batch(
        self,
        packets: Sequence[UplinkPacket],
        receivers: Sequence[EndDevice],
        rssi_dbm: Sequence[float],
        capacity_models: Sequence[LinkCapacityModel],
        nows: Sequence[float],
    ) -> List[ForwardingDecision]:
        """Decide a whole batch of overheard (sender, receiver) pairs at once.

        All five arguments are parallel sequences, one entry per overheard
        pair: ``packets[k]`` is the uplink ``receivers[k]`` overheard at RSSI
        ``rssi_dbm[k]`` (transmitter-side capacity model
        ``capacity_models[k]``) at time ``nows[k]``.  A batch spans one
        transmission — or, under relaxed-order slot batching, several
        *independent* same-tick transmissions — so a receiver appears at most
        once per transmission and decisions may be computed in any order.

        The engine only calls this hook when a scheme overrides it; schemes
        that do not are driven through :meth:`on_overhear` one pair at a
        time, interleaved with the resulting handovers exactly as before, so
        custom registered schemes keep working unchanged.  Override it when
        the scheme's decisions are independent across the receivers of one
        transmission (true for all built-in schemes); the override must leave
        scheme state exactly as the equivalent :meth:`on_overhear` loop
        would.  This default implementation is that loop.
        """
        return [
            self.on_overhear(receiver, packet, rssi, model, now)
            for packet, receiver, rssi, model, now in zip(
                packets, receivers, rssi_dbm, capacity_models, nows
            )
        ]

    def observe_transmission_slot(
        self, device_id: str, gateway_connected: bool, now: float
    ) -> None:
        """Optional hook: a device took a transmission slot at ``now``.

        Called by the engine at every uplink transmission, mirroring the
        RCA-ETX observation point: ``gateway_connected`` is whether any
        gateway was in range at the slot.  Stateful schemes (PRoPHET's
        delivery predictabilities) update per-device state here; the default
        is a no-op, so stateless schemes are unaffected.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
