"""ROBC: Real-time Opportunistic Backpressure Collection (Sec. V).

On overhearing ``y``'s uplink (which carries both ``RCA-ETX_{y,S}`` and
``Q_y``), device ``x`` computes the backpressure weight
``ω = Q_x/ϕ_x − Q_y/ϕ_y`` and, if positive, hands over
``δ = Q_x − Q_y · ϕ_x/ϕ_y`` messages.  The scheme additionally requires the
device-to-device link to be usable (non-zero capacity from the overheard
RSSI), which in practice is guaranteed by the fact the frame was overheard at
all but is kept explicit for unit-level robustness.
"""

from __future__ import annotations

import math

from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import robc_transfer_amount
from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import ForwardingDecision, ForwardingScheme


class ROBCScheme(ForwardingScheme):
    """Queue-differential (backpressure) forwarding with ϕ-corrected backlogs."""

    name = "robc"
    requires_queue_length = True
    uses_forwarding = True

    def __init__(
        self,
        rgq: RealTimeGatewayQuality = RealTimeGatewayQuality(),
        max_handover_messages: int = 12,
    ) -> None:
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.rgq = rgq
        self.max_handover_messages = max_handover_messages

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        if packet.rca_etx_s is None or packet.queue_length is None:
            return ForwardingDecision.no()
        if not receiver.has_data():
            return ForwardingDecision.no()
        if not capacity_model.is_connected(link_rssi_dbm):
            return ForwardingDecision.no()
        delta = robc_transfer_amount(
            own_queue=float(receiver.queue_length()),
            own_sink_metric_s=receiver.rca_etx.sink_metric(),
            neighbour_queue=float(packet.queue_length),
            neighbour_sink_metric_s=packet.rca_etx_s,
            rgq=self.rgq,
        )
        messages = int(math.floor(delta))
        if messages <= 0:
            return ForwardingDecision.no()
        limit = min(messages, self.max_handover_messages, receiver.queue_length())
        if limit <= 0:
            return ForwardingDecision.no()
        return ForwardingDecision(forward=True, message_limit=limit)
