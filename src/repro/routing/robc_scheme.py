"""ROBC: Real-time Opportunistic Backpressure Collection (Sec. V).

On overhearing ``y``'s uplink (which carries both ``RCA-ETX_{y,S}`` and
``Q_y``), device ``x`` computes the backpressure weight
``ω = Q_x/ϕ_x − Q_y/ϕ_y`` and, if positive, hands over
``δ = Q_x − Q_y · ϕ_x/ϕ_y`` messages.  The scheme additionally requires the
device-to-device link to be usable (non-zero capacity from the overheard
RSSI), which in practice is guaranteed by the fact the frame was overheard at
all but is kept explicit for unit-level robustness.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import robc_transfer_amount
from repro.mac.device import EndDevice
from repro.mac.frames import UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import NO_DECISION, ForwardingDecision, ForwardingScheme


class ROBCScheme(ForwardingScheme):
    """Queue-differential (backpressure) forwarding with ϕ-corrected backlogs."""

    name = "robc"
    requires_queue_length = True
    uses_forwarding = True

    def __init__(
        self,
        rgq: RealTimeGatewayQuality = RealTimeGatewayQuality(),
        max_handover_messages: int = 12,
    ) -> None:
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.rgq = rgq
        self.max_handover_messages = max_handover_messages

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        if packet.rca_etx_s is None or packet.queue_length is None:
            return ForwardingDecision.no()
        if not receiver.has_data():
            return ForwardingDecision.no()
        if not capacity_model.is_connected(link_rssi_dbm):
            return ForwardingDecision.no()
        delta = robc_transfer_amount(
            own_queue=float(receiver.queue_length()),
            own_sink_metric_s=receiver.rca_etx.sink_metric(),
            neighbour_queue=float(packet.queue_length),
            neighbour_sink_metric_s=packet.rca_etx_s,
            rgq=self.rgq,
        )
        messages = int(math.floor(delta))
        if messages <= 0:
            return ForwardingDecision.no()
        limit = min(messages, self.max_handover_messages, receiver.queue_length())
        if limit <= 0:
            return ForwardingDecision.no()
        return ForwardingDecision(forward=True, message_limit=limit)

    def on_overhear_batch(
        self,
        packets: Sequence[UplinkPacket],
        receivers: Sequence[EndDevice],
        rssi_dbm: Sequence[float],
        capacity_models: Sequence[LinkCapacityModel],
        nows: Sequence[float],
    ) -> List[ForwardingDecision]:
        """Batched :meth:`on_overhear`: same arithmetic, hoisted ϕ clamping.

        ROBC reads only the receiver's queue/estimator and the packet
        snapshot, so decisions are independent across the receivers of one
        transmission — exactly the batch-hook contract.  The ϕ bounds and the
        backpressure weight/δ are computed inline in the identical operation
        order as :func:`~repro.core.robc.robc_transfer_amount`, which keeps
        the verdicts bit-identical to the scalar path.
        """
        phi_min = self.rgq.phi_min
        phi_max = self.rgq.phi_max
        max_handover = self.max_handover_messages
        floor = math.floor
        decisions: List[ForwardingDecision] = []
        append = decisions.append
        for packet, receiver, rssi, model in zip(
            packets, receivers, rssi_dbm, capacity_models
        ):
            neighbour_metric = packet.rca_etx_s
            neighbour_queue = packet.queue_length
            if neighbour_metric is None or neighbour_queue is None:
                append(NO_DECISION)
                continue
            own_queue = len(receiver.queue)
            if not own_queue:
                append(NO_DECISION)
                continue
            if not model.is_connected(rssi):
                append(NO_DECISION)
                continue
            own_metric = receiver.rca_etx.sink_metric()
            phi_own = (
                phi_max
                if own_metric == 0
                else min(max(1.0 / own_metric, phi_min), phi_max)
            )
            phi_neighbour = (
                phi_max
                if neighbour_metric == 0
                else min(max(1.0 / neighbour_metric, phi_min), phi_max)
            )
            own_q = float(own_queue)
            neighbour_q = float(neighbour_queue)
            if own_q / phi_own - neighbour_q / phi_neighbour <= 0:
                append(NO_DECISION)
                continue
            delta = own_q - neighbour_q * (phi_own / phi_neighbour)
            messages = int(floor(min(max(delta, 0.0), own_q)))
            if messages <= 0:
                append(NO_DECISION)
                continue
            limit = min(messages, max_handover, own_queue)
            if limit <= 0:
                append(NO_DECISION)
                continue
            append(ForwardingDecision(forward=True, message_limit=limit))
        return decisions
