"""Binary Spray-and-Wait (Spyropoulos et al.), a bounded-replication DTN baseline.

Each message starts with ``initial_copies`` logical copy tickets.  During the
*spray* phase a carrier with more than one ticket hands half of them to any
device it overhears; once a carrier is down to a single ticket it enters the
*wait* phase and only delivers directly to a gateway.  Replication overhead is
therefore bounded by ``initial_copies`` per message.

Ticket bookkeeping rides on :class:`~repro.mac.frames.DataMessage` via an
attribute set lazily by this scheme, so the core frame format stays free of
baseline-specific fields.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mac.device import EndDevice
from repro.mac.frames import DataMessage, UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing.base import NO_DECISION, ForwardingDecision, ForwardingScheme

_TICKET_ATTRIBUTE = "spray_tickets"


def get_tickets(message: DataMessage, initial_copies: int) -> int:
    """Current spray tickets of ``message`` (initialised lazily)."""
    tickets = getattr(message, _TICKET_ATTRIBUTE, None)
    if tickets is None:
        tickets = initial_copies
        setattr(message, _TICKET_ATTRIBUTE, tickets)
    return tickets


def set_tickets(message: DataMessage, tickets: int) -> None:
    """Set the remaining spray tickets of ``message``."""
    if tickets < 1:
        raise ValueError("a carried message always retains at least one ticket")
    setattr(message, _TICKET_ATTRIBUTE, tickets)


class SprayAndWaitScheme(ForwardingScheme):
    """Binary spray-and-wait with per-message ticket halving."""

    name = "spray-and-wait"
    requires_queue_length = False
    uses_forwarding = True

    def __init__(self, initial_copies: int = 4, max_handover_messages: int = 12) -> None:
        if initial_copies < 1:
            raise ValueError("initial_copies must be at least 1")
        if max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        self.initial_copies = initial_copies
        self.max_handover_messages = max_handover_messages

    def sprayable_messages(self, receiver: EndDevice) -> int:
        """How many queued messages still hold more than one ticket."""
        return sum(
            1
            for message in receiver.queue.peek_all()
            if get_tickets(message, self.initial_copies) > 1
        )

    def split_tickets(self, message: DataMessage) -> int:
        """Halve the tickets of ``message``; returns the tickets given to the copy."""
        tickets = get_tickets(message, self.initial_copies)
        if tickets <= 1:
            return 0
        given = tickets // 2
        set_tickets(message, tickets - given)
        return given

    def on_overhear(
        self,
        receiver: EndDevice,
        packet: UplinkPacket,
        link_rssi_dbm: float,
        capacity_model: LinkCapacityModel,
        now: float,
    ) -> ForwardingDecision:
        sprayable = self.sprayable_messages(receiver)
        if sprayable <= 0:
            return ForwardingDecision.no()
        limit = min(sprayable, self.max_handover_messages)
        return ForwardingDecision(forward=True, message_limit=limit, copy=True)

    def on_overhear_batch(
        self,
        packets: Sequence[UplinkPacket],
        receivers: Sequence[EndDevice],
        rssi_dbm: Sequence[float],
        capacity_models: Sequence[LinkCapacityModel],
        nows: Sequence[float],
    ) -> List[ForwardingDecision]:
        """Batched :meth:`on_overhear` with the ticket scan inlined.

        Each decision reads (and lazily initialises) tickets only on the
        receiver's own queued messages, so decisions are independent across
        the receivers of one transmission.  Ticket *splitting* happens later,
        in the handover itself, exactly as on the scalar path.
        """
        initial = self.initial_copies
        max_handover = self.max_handover_messages
        decisions: List[ForwardingDecision] = []
        append = decisions.append
        for receiver in receivers:
            sprayable = 0
            for message in receiver.queue.peek_all():
                tickets = getattr(message, _TICKET_ATTRIBUTE, None)
                if tickets is None:
                    tickets = initial
                    setattr(message, _TICKET_ATTRIBUTE, tickets)
                if tickets > 1:
                    sprayable += 1
            if sprayable <= 0:
                append(NO_DECISION)
            else:
                append(
                    ForwardingDecision(
                        forward=True,
                        message_limit=min(sprayable, max_handover),
                        copy=True,
                    )
                )
        return decisions
