"""The forwarding-scheme factory registry.

Schemes are built from a name plus the scenario's
:class:`~repro.routing.config.RoutingConfig` — the same shape as the mobility
and radio registries: ``build_scheme("robc", config.routing)`` replaces the
inline ``ROBCScheme(...)`` constructions that used to live in
``experiments/scenario.py``, so scheme parameters become sweepable
configuration instead of code.

The registry is open: :func:`register_scheme_factory` admits external
factories (see ``examples/custom_forwarding_scheme.py`` for the object-level
alternative), and the PRoPHET baseline is registered here exactly like the
paper's schemes — nothing inside the engine special-cases any scheme name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.rgq import RealTimeGatewayQuality
from repro.routing.base import ForwardingScheme
from repro.routing.config import RoutingConfig
from repro.routing.epidemic import EpidemicScheme
from repro.routing.no_routing import NoRoutingScheme
from repro.routing.prophet import ProphetScheme
from repro.routing.rca_etx_scheme import RCAETXScheme
from repro.routing.robc_scheme import ROBCScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme

#: A factory maps the routing configuration to a fresh scheme instance.
SchemeFactory = Callable[[RoutingConfig], ForwardingScheme]

_FACTORIES: Dict[str, SchemeFactory] = {}


def register_scheme_factory(name: str, factory: SchemeFactory) -> None:
    """Register a scheme factory; names are unique."""
    if name in _FACTORIES:
        raise ValueError(f"duplicate scheme factory name {name!r}")
    _FACTORIES[name] = factory


def scheme_names() -> List[str]:
    """The registered scheme names (sorted)."""
    return sorted(_FACTORIES)


def build_scheme(name: str, routing: RoutingConfig = RoutingConfig()) -> ForwardingScheme:
    """Build a fresh forwarding scheme from its name and the routing config."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {scheme_names()}"
        ) from None
    return factory(routing)


register_scheme_factory("no-routing", lambda routing: NoRoutingScheme())
register_scheme_factory(
    "rca-etx",
    lambda routing: RCAETXScheme(max_handover_messages=routing.max_handover_messages),
)
register_scheme_factory(
    "robc",
    lambda routing: ROBCScheme(
        rgq=RealTimeGatewayQuality(
            phi_min=routing.rgq_phi_min, phi_max=routing.rgq_phi_max
        ),
        max_handover_messages=routing.max_handover_messages,
    ),
)
register_scheme_factory(
    "epidemic",
    lambda routing: EpidemicScheme(max_handover_messages=routing.max_handover_messages),
)
register_scheme_factory(
    "spray-and-wait",
    lambda routing: SprayAndWaitScheme(
        initial_copies=routing.spray_initial_copies,
        max_handover_messages=routing.max_handover_messages,
    ),
)
register_scheme_factory(
    "prophet",
    lambda routing: ProphetScheme(
        p_init=routing.prophet_p_init,
        beta=routing.prophet_beta,
        gamma=routing.prophet_gamma,
        max_handover_messages=routing.max_handover_messages,
    ),
)
