"""Routing-layer configuration: scheme parameters and buffer management.

The forwarding scheme is the paper's core contribution, yet it was the last
layer still selected by a bare name with every parameter hardcoded.
:class:`RoutingConfig` generalises that setting exactly the way
:class:`~repro.radio.config.RadioConfig` and
:class:`~repro.mobility.config.MobilityConfig` opened their layers: the
default configuration is the paper's (12-message handovers, 4 spray copies,
the Sec. V-B1 ϕ bounds, a FIFO tail-drop buffer sized by the device config),
and the simulation engine is required to reproduce the pre-routing-refactor
results bit-identically under it (pinned by
``tests/experiments/test_routing_equivalence.py``).  Scheme/buffer parameter
sweeps — the standard DTN ablation axes — are opened by changing fields.

The scheme *name* stays on :class:`~repro.experiments.config.ScenarioConfig`
(``scheme``), where it has lived since the seed and where the config digest
pins it; :class:`RoutingConfig` carries everything that parameterizes the
named scheme, and the factory registry in :mod:`repro.routing.registry`
builds the scheme object from the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: The registered buffer-management policies (see
#: :mod:`repro.mac.queueing` for the strategy objects):
#:
#: ``drop-new``
#:     Tail drop: a push into a full queue is rejected and the *new* message
#:     is lost — the conservative choice for a telemetry workload, and the
#:     paper's (default) behaviour.
#: ``drop-oldest``
#:     Head drop: a push into a full queue evicts the message at the queue
#:     head (earliest arrival) to admit the new one — fresher data survives.
#: ``ttl-expiry``
#:     Tail drop plus a per-message time-to-live: messages older than
#:     ``ttl_s`` (since creation) are expired whenever the queue is touched
#:     with a current time, so stale telemetry stops occupying the buffer
#:     and the airtime.  Requires ``ttl_s > 0``.
#: ``priority-age``
#:     Age-aware service and eviction: handover/uplink selection serves the
#:     *oldest-created* messages first (after handovers, FIFO arrival order
#:     no longer matches creation order), and a push into a full queue
#:     evicts the oldest-created message — the data least likely to still
#:     be worth carrying.
BUFFER_POLICIES: Tuple[str, ...] = (
    "drop-new",
    "drop-oldest",
    "ttl-expiry",
    "priority-age",
)


@dataclass(frozen=True)
class BufferConfig:
    """Buffer-management section of the routing configuration.

    ``capacity`` is the per-device queue size in messages; ``0`` (the
    default) inherits :attr:`~repro.mac.device.DeviceConfig.max_queue_size`,
    so a default buffer section is exactly the pre-refactor queue.  ``ttl_s``
    is the message time-to-live for the ``ttl-expiry`` policy (``0`` = no
    expiry, only valid for the other policies).
    """

    policy: str = "drop-new"
    capacity: int = 0
    ttl_s: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {self.policy!r}; available: {list(BUFFER_POLICIES)}"
            )
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0 (0 = device default), got {self.capacity}")
        if self.ttl_s < 0:
            raise ValueError(f"ttl_s must be non-negative, got {self.ttl_s}")
        if self.policy == "ttl-expiry" and self.ttl_s <= 0:
            raise ValueError("the ttl-expiry policy needs a positive ttl_s")
        if self.policy != "ttl-expiry" and self.ttl_s > 0:
            raise ValueError(f"ttl_s is only meaningful for ttl-expiry, got {self.policy!r}")

    @property
    def is_default(self) -> bool:
        """True for the pre-refactor FIFO tail-drop buffer."""
        return self == BufferConfig()


@dataclass(frozen=True)
class RoutingConfig:
    """The routing-layer degrees of freedom of a scenario.

    Every default equals the value the pre-refactor engine hardcoded, so a
    default routing section is digest-transparent and bit-identical:

    * ``max_handover_messages`` — cap on messages moved/copied per
      device-to-device handover frame (all forwarding schemes).
    * ``spray_initial_copies`` — logical copy tickets per message for binary
      spray-and-wait (Spyropoulos et al.).
    * ``rgq_phi_min`` / ``rgq_phi_max`` — the Sec. V-B1 bounds of the
      Real-time Gateway Quality ϕ used by ROBC's backpressure weight.
    * ``prophet_p_init`` / ``prophet_beta`` / ``prophet_gamma`` — the
      PRoPHET delivery-predictability parameters (encounter additive
      constant, transitive scaling, per-second aging base; Lindgren et
      al.'s classic values).
    * ``buffer`` — the buffer-management section (see :class:`BufferConfig`).
    """

    max_handover_messages: int = 12
    spray_initial_copies: int = 4
    rgq_phi_min: float = 1e-6
    rgq_phi_max: float = 10.0
    prophet_p_init: float = 0.75
    prophet_beta: float = 0.25
    prophet_gamma: float = 0.998
    buffer: BufferConfig = field(default_factory=BufferConfig)

    def __post_init__(self) -> None:
        if self.max_handover_messages <= 0:
            raise ValueError("max_handover_messages must be positive")
        if self.spray_initial_copies < 1:
            raise ValueError("spray_initial_copies must be at least 1")
        if not 0 < self.rgq_phi_min <= self.rgq_phi_max:
            raise ValueError("RGQ bounds must satisfy 0 < rgq_phi_min <= rgq_phi_max")
        if not 0 < self.prophet_p_init <= 1:
            raise ValueError("prophet_p_init must be in (0, 1]")
        if not 0 <= self.prophet_beta <= 1:
            raise ValueError("prophet_beta must be in [0, 1]")
        if not 0 < self.prophet_gamma <= 1:
            raise ValueError("prophet_gamma must be in (0, 1]")

    @property
    def is_default(self) -> bool:
        """True for the pre-refactor hardcoded routing parameters."""
        return self == RoutingConfig()

    def with_buffer(
        self,
        policy: Optional[str] = None,
        capacity: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> "RoutingConfig":
        """A copy with a different buffer-management section."""
        buffer = self.buffer
        fields = {}
        if policy is not None:
            fields["policy"] = policy
        if capacity is not None:
            fields["capacity"] = capacity
        if ttl_s is not None:
            fields["ttl_s"] = ttl_s
        return replace(self, buffer=replace(buffer, **fields)) if fields else self

    def with_params(self, **params) -> "RoutingConfig":
        """A copy with different scheme parameters (keyword per field)."""
        if "buffer" in params:
            raise ValueError("use with_buffer() for the buffer section")
        unknown = set(params) - {
            name for name in self.__dataclass_fields__ if name != "buffer"
        }
        if unknown:
            raise ValueError(
                f"unknown routing parameter(s) {sorted(unknown)}; available: "
                f"{sorted(f for f in self.__dataclass_fields__ if f != 'buffer')}"
            )
        return replace(self, **params) if params else self
