"""Evaluation metrics and statistics.

The metric definitions follow Sec. VII-B: end-to-end delay
``δt(x) = t_g(x) − t_d(x)``, throughput as messages received at the server in
a period, hop counts per delivered message (Fig. 12) and the number of
messages sent per node as the energy-overhead proxy (Fig. 13).
"""

from repro.analysis.metrics import RunMetrics, compute_run_metrics
from repro.analysis.stats import confidence_interval_95, mean_and_std, relative_change
from repro.analysis.timeseries import bin_events, cumulative_counts

__all__ = [
    "RunMetrics",
    "compute_run_metrics",
    "confidence_interval_95",
    "mean_and_std",
    "relative_change",
    "bin_events",
    "cumulative_counts",
]
