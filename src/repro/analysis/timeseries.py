"""Time-series binning used by the Fig. 10/11 throughput-over-time plots."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


def bin_events(
    event_times: Sequence[float],
    bin_width_s: float,
    horizon_s: float,
    weights: Sequence[float] = (),
) -> Tuple[np.ndarray, np.ndarray]:
    """Count (or sum ``weights`` of) events in consecutive bins.

    Returns ``(bin_start_times, counts)``; events at or beyond ``horizon_s``
    are dropped, matching "messages received every 10 minutes over 24 hours".
    """
    if bin_width_s <= 0 or horizon_s <= 0:
        raise ValueError("bin width and horizon must be positive")
    if weights and len(weights) != len(event_times):
        raise ValueError("weights must match event_times in length")
    n_bins = int(math.ceil(horizon_s / bin_width_s))
    starts = np.arange(n_bins, dtype=float) * bin_width_s
    counts = np.zeros(n_bins, dtype=float)
    for index, time in enumerate(event_times):
        if time < 0:
            raise ValueError(f"event times must be non-negative, got {time}")
        if time >= horizon_s:
            continue
        weight = weights[index] if weights else 1.0
        counts[min(int(time // bin_width_s), n_bins - 1)] += weight
    return starts, counts


def cumulative_counts(
    event_times: Sequence[float], horizon_s: float, resolution_s: float = 600.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative number of events up to each sample time on a fixed grid."""
    starts, counts = bin_events(event_times, resolution_s, horizon_s)
    return starts, np.cumsum(counts)


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Simple trailing moving average (used to smooth noisy time series for reports)."""
    if window <= 0:
        raise ValueError("window must be positive")
    smoothed: List[float] = []
    buffer: List[float] = []
    for value in values:
        buffer.append(float(value))
        if len(buffer) > window:
            buffer.pop(0)
        smoothed.append(sum(buffer) / len(buffer))
    return smoothed
