"""Small statistical helpers used by the reporting layer."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def mean_and_std(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and population standard deviation; ``(nan, nan)`` for empty input."""
    if not samples:
        return float("nan"), float("nan")
    arr = np.asarray(samples, dtype=float)
    return float(arr.mean()), float(arr.std(ddof=0))


def confidence_interval_95(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95 % normal-approximation half-width (the error bars of Fig. 8)."""
    if not samples:
        return float("nan"), float("nan")
    arr = np.asarray(samples, dtype=float)
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, 1.96 * sem


def relative_change(baseline: float, value: float) -> float:
    """Relative change of ``value`` versus ``baseline`` (positive = larger than baseline).

    Used to express results the way the paper does ("reduces delays by up to
    25 %", "53 % throughput improvement").
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero for a relative change")
    return (value - baseline) / abs(baseline)


def improvement_percent(baseline: float, value: float) -> float:
    """Percentage improvement (increase) of ``value`` over ``baseline``."""
    return 100.0 * relative_change(baseline, value)


def reduction_percent(baseline: float, value: float) -> float:
    """Percentage reduction of ``value`` below ``baseline`` (positive = smaller)."""
    return -100.0 * relative_change(baseline, value)
