"""Run-level metric extraction (the quantities plotted in Figs. 8–13)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.stats import confidence_interval_95
from repro.analysis.timeseries import bin_events
from repro.mac.device import EndDevice
from repro.mac.network_server import NetworkServer


@dataclass
class RunMetrics:
    """Everything the figures need from one simulation run."""

    scheme: str
    num_gateways: int
    device_range_m: float
    duration_s: float
    messages_generated: int
    messages_delivered: int
    #: Messages lost to buffer capacity (rejected pushes under tail-drop
    #: policies, evictions under drop-oldest/priority-age), summed over
    #: every device queue.
    messages_dropped_full: int = 0
    #: Pushes refused because the message id was already queued — handover
    #: deduplication, not loss (the data is still carried elsewhere).
    messages_rejected_duplicate: int = 0
    #: Messages removed by TTL expiry (the ``ttl-expiry`` buffer policy).
    messages_expired_ttl: int = 0
    delays_s: List[float] = field(default_factory=list)
    hop_counts: List[int] = field(default_factory=list)
    delivery_times_s: List[float] = field(default_factory=list)
    transmissions_per_device: Dict[str, int] = field(default_factory=dict)
    energy_joules_per_device: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Scalar summaries
    # ------------------------------------------------------------------ #
    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated messages that reached the server."""
        if self.messages_generated == 0:
            return 0.0
        return self.messages_delivered / self.messages_generated

    @property
    def mean_delay_s(self) -> float:
        """Average end-to-end delay (Fig. 8), NaN when nothing was delivered."""
        if not self.delays_s:
            return float("nan")
        return float(np.mean(self.delays_s))

    @property
    def delay_ci95_s(self) -> Tuple[float, float]:
        """Mean delay and its 95 % confidence half-width (the error bars of Fig. 8)."""
        return confidence_interval_95(self.delays_s)

    @property
    def throughput_messages(self) -> int:
        """Total messages received at the server over the run (Fig. 9)."""
        return self.messages_delivered

    @property
    def mean_hop_count(self) -> float:
        """Average delivery hop count (Fig. 12), NaN when nothing was delivered."""
        if not self.hop_counts:
            return float("nan")
        return float(np.mean(self.hop_counts))

    @property
    def mean_messages_sent_per_node(self) -> float:
        """Average number of frames transmitted per device (Fig. 13)."""
        if not self.transmissions_per_device:
            return 0.0
        return float(np.mean(list(self.transmissions_per_device.values())))

    @property
    def mean_energy_joules(self) -> float:
        """Average per-device energy (Queue-based Class-A ablation)."""
        if not self.energy_joules_per_device:
            return 0.0
        return float(np.mean(list(self.energy_joules_per_device.values())))

    def throughput_timeseries(
        self, bin_width_s: float = 600.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Messages delivered per ``bin_width_s`` window over the run (Figs. 10–11)."""
        return bin_events(self.delivery_times_s, bin_width_s, self.duration_s)


def compute_run_metrics(
    scheme: str,
    num_gateways: int,
    device_range_m: float,
    duration_s: float,
    devices: Sequence[EndDevice],
    server: NetworkServer,
) -> RunMetrics:
    """Assemble :class:`RunMetrics` from the simulation's devices and server."""
    deliveries = server.deliveries
    return RunMetrics(
        scheme=scheme,
        num_gateways=num_gateways,
        device_range_m=device_range_m,
        duration_s=duration_s,
        messages_generated=sum(d.stats.messages_generated for d in devices),
        messages_delivered=server.delivered_count,
        messages_dropped_full=sum(d.queue.dropped_full for d in devices),
        messages_rejected_duplicate=sum(d.queue.rejected_duplicate for d in devices),
        messages_expired_ttl=sum(d.queue.expired_ttl for d in devices),
        delays_s=[record.end_to_end_delay for record in deliveries],
        hop_counts=[record.delivery_hop_count for record in deliveries],
        delivery_times_s=[record.delivered_at for record in deliveries],
        transmissions_per_device={
            d.device_id: d.stats.total_transmissions for d in devices
        },
        energy_joules_per_device={
            d.device_id: d.energy.energy_joules() for d in devices
        },
    )
