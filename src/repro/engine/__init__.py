"""Pluggable simulation engines.

``repro.engine`` owns engine *selection* (:class:`EngineConfig`, the
``REPRO_ENGINE`` environment override) and the batched array-native engine.
The event-driven object engine stays in
:mod:`repro.experiments.runner` — it is the bit-exact oracle the array
engine is differentially tested against.
"""

from __future__ import annotations

import os

from repro.engine.config import ENGINES, EngineConfig

#: Environment variable forcing an engine for configurations that do not
#: name one explicitly (the CI tier-1 matrix sets it per leg).
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine_name(config) -> str:
    """The engine a scenario configuration should run on.

    An explicit non-default ``engine`` section wins (a preset pinned to the
    array engine stays on it); otherwise ``REPRO_ENGINE`` overrides the
    default, which is how the CI matrix pushes the whole tier-1 suite
    through the array engine.
    """
    name = config.engine.engine
    if name == EngineConfig().engine:
        forced = os.environ.get(ENGINE_ENV_VAR, "").strip()
        if forced:
            if forced not in ENGINES:
                raise ValueError(
                    f"{ENGINE_ENV_VAR} must be one of {list(ENGINES)}, got {forced!r}"
                )
            name = forced
    return name


__all__ = ["ENGINES", "ENGINE_ENV_VAR", "EngineConfig", "resolve_engine_name"]
