"""Engine selection configuration.

The simulation can execute on two interchangeable engines:

``object``
    The event-driven reference engine
    (:class:`~repro.experiments.runner.MLoRaSimulation`) — one Python event
    per frame per device.  It is the bit-exact oracle every other engine is
    measured against.
``array``
    The batched array-native engine
    (:class:`~repro.engine.array_engine.ArrayMLoRaSimulation`): per-tick
    device positions and gateway candidacy live in NumPy arrays, collision
    and capture resolution works over per-(channel, SF) buckets, and the
    disconnected common case skips packet construction entirely.  It is
    required to produce :class:`~repro.analysis.metrics.RunMetrics`
    bit-identical to the object engine (pinned by
    ``tests/engine/test_engine_equivalence.py``).

Like the radio/mobility/routing sections, the default engine section is
omitted from the configuration digest, so every configuration that predates
the engine layer keeps its historical digest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: The registered simulation engines.
ENGINES: Tuple[str, ...] = ("object", "array")


@dataclass(frozen=True)
class EngineConfig:
    """Which engine runs the scenario, and its batching knobs.

    ``tick_s`` is the array engine's spatial batching quantum: device
    positions and gateway candidacy are prefiltered once per tick and reused
    (with a speed-derived safety margin) for every transmission inside it.
    It is a pure performance knob — results are bit-identical for any
    positive value.  ``strict_equivalence`` keeps even *unobservable*
    per-device estimator state identical to the object engine; switching it
    off lets the array engine skip provably result-neutral bookkeeping on
    the disconnected fast path.  Both settings produce identical
    :class:`~repro.analysis.metrics.RunMetrics`.
    """

    engine: str = "object"
    tick_s: float = 30.0
    strict_equivalence: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; available: {list(ENGINES)}"
            )
        if self.tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {self.tick_s}")

    @property
    def is_default(self) -> bool:
        """True for the historical object-engine configuration."""
        return self == EngineConfig()

    def with_engine(self, engine: str) -> "EngineConfig":
        """A copy selecting a different engine."""
        return replace(self, engine=engine)

    def with_tick(self, tick_s: float) -> "EngineConfig":
        """A copy with a different batching tick."""
        return replace(self, tick_s=tick_s)

    def with_strict_equivalence(self, strict: bool) -> "EngineConfig":
        """A copy with internal-state parity switched on or off."""
        return replace(self, strict_equivalence=strict)
