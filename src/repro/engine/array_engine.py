"""The batched array-native simulation engine.

:class:`ArrayMLoRaSimulation` runs the same scenario the event-driven object
engine (:class:`~repro.experiments.runner.MLoRaSimulation`) runs, and is
required to produce **bit-identical** :class:`~repro.analysis.metrics.RunMetrics`.
The object engine stays the oracle; this engine restructures the hot loops
around array-shaped state:

* **Per-tick gateway prefilter.**  Device positions at every tick of the
  ``engine.tick_s`` grid are precomputed in one NumPy batch per trace
  (struct-of-arrays: an ``(n_devices, n_ticks, 2)`` position table plus
  per-device activity spans and speed-derived safety margins).  A
  transmission slot first consults the tick's vectorized
  distance-to-gateway mask; only devices with at least one candidate
  gateway pay for an exact position interpolation and link computation.
  The exact recomputation calls the *same*
  :meth:`~repro.network.topology.TimeVaryingTopology._link_state` code the
  oracle calls, so connectivity decisions and RSSI values are identical by
  construction.  The margin is derived from each trace's maximum segment
  speed, so the prefilter is a strict superset of the oracle's disc query.
* **Disconnected fast path.**  In non-forwarding scenarios a slot with no
  candidate gateway cannot be observed by anything: the frame reaches no
  receiver, the reception resolution draws no randomness, and the queue
  keeps its messages.  The fast path skips packet construction and medium
  registration entirely and accounts only the observable effects (duty
  cycle, energy, retransmission counters, the next retry event).
* **Per-(channel, SF) collision buckets.**  Registered transmissions land in
  start-time-ordered buckets with a monotone head pointer; the capture
  check replicates :meth:`~repro.phy.collision.CollisionModel.is_received`
  over the bucket instead of scanning one global registry.  Entries are
  discarded once no current-or-future frame can overlap them (bounded by
  the bucket's maximum airtime), so the scan window stays O(recent frames).
* **Raw event heap.**  Events are plain tuples on a :mod:`heapq` list.  The
  push sequence mirrors the oracle's :class:`~repro.sim.events.EventQueue`
  push sequence one-to-one, so the (time, priority, insertion-order) pop
  order — and with it every RNG draw and message id — is identical.

``engine.strict_equivalence`` (default on) keeps even unobservable estimator
state identical on the fast path; switching it off skips those updates when
they are provably result-neutral (non-forwarding scheme, stateless observe
hook, no queue-based Class A energy coupling).  Both settings yield the same
RunMetrics; the differential suite in ``tests/engine/`` pins that claim.

With shadowing enabled every link computation draws from the shadowing
stream, so spatial shortcuts would change the draw order; the engine then
delegates all spatial queries to the object topology and disables the fast
path, remaining bit-identical at object-engine speed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import replace as dataclass_replace
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import RunMetrics, compute_run_metrics
from repro.experiments.scenario import BuiltScenario
from repro.mac.device import EndDevice
from repro.mac.device_classes import QueueBasedClassA
from repro.mac.frames import METRIC_FIELD_BYTES, PACKET_OVERHEAD_BYTES
from repro.mac.network_server import NetworkServer
from repro.mac.queueing import BufferPolicy
from repro.phy.collision import Transmission
from repro.phy.constants import MAX_PHY_PAYLOAD_BYTES
from repro.phy.energy import RadioState
from repro.radio.medium import RadioMedium
from repro.routing.base import ForwardingScheme
from repro.sim.events import ATTEMPT_PRIORITY, COMPLETION_PRIORITY

# Event kinds (heap entries are (time, priority, seq, kind, payload); the
# sequence number is unique, so comparison never reaches kind/payload).
_GENERATION = 0
_ATTEMPT = 1
_COMPLETION = 2
_FAST_COMPLETION = 3

#: Collision buckets are compacted once this many entries are dead.
_BUCKET_COMPACT_THRESHOLD = 512

_TX = RadioState.TX


class ArrayMLoRaSimulation:
    """One complete simulation run of a built scenario, batched."""

    def __init__(
        self, scenario: BuiltScenario, medium: Optional[RadioMedium] = None
    ) -> None:
        self.scenario = scenario
        self.config = scenario.config
        self.server = NetworkServer()
        self.medium = medium or RadioMedium(
            config=self.config.radio,
            reception_rng=scenario.streams.stream("reception"),
        )
        # The medium serves as the airtime/link-quality cache and the owner of
        # the reception stream; collision resolution happens in the buckets.
        self._reception_rng = self.medium.reception_rng
        self.now = 0.0
        self._duration = self.config.duration_s
        self._heap: List[tuple] = []
        self._seq = 0

        self._scheme = scenario.scheme
        self._uses_forwarding = self._scheme.uses_forwarding
        self._handover_count = 0
        self._handed_over_messages = 0

        # Struct-of-arrays device table, in scenario insertion order (the
        # oracle iterates the same dicts in the same order).
        self._device_ids: List[str] = list(scenario.devices)
        self._devices: List[EndDevice] = [
            scenario.devices[d] for d in self._device_ids
        ]
        self._index_of: Dict[str, int] = {
            device_id: i for i, device_id in enumerate(self._device_ids)
        }
        self._traces = [scenario.traces[d] for d in self._device_ids]
        self._trace_start = [t.start_time for t in self._traces]
        self._trace_end = [t.end_time for t in self._traces]
        self._attempt_pending = [False] * len(self._devices)

        # Hoisted per-device state for the inlined fast path.  The inlined
        # updates perform the *same arithmetic in the same order* as the
        # EndDevice/DutyCycleRegulator/EnergyModel methods they replace —
        # only the attribute/method dispatch is removed.
        devices = self._devices
        self._queue_msgs = [d.queue._messages for d in devices]
        self._queue_needs_expiry = [
            type(d.queue.policy).expire is not BufferPolicy.expire for d in devices
        ]
        self._stats = [d.stats for d in devices]
        self._energy_sec = [d.energy._seconds for d in devices]
        self._channels = [d.channel for d in devices]
        self._sf = [d.spreading_factor for d in devices]
        self._na_dicts = [d.duty_cycle._next_allowed_by_channel for d in devices]
        self._duty = [d.duty_cycle for d in devices]
        self._off_mult = [1.0 / d.duty_cycle.duty_cycle - 1.0 for d in devices]
        self._max_retrans = [d.config.max_retransmissions for d in devices]
        self._max_bundle = [d.config.max_messages_per_packet for d in devices]
        self._msg_size = [d.config.message_size_bytes for d in devices]
        # Lazily-filled per-device airtime by bundled-message count.
        self._fast_airtime: List[List[Optional[float]]] = [
            [None] * (d.config.max_messages_per_packet + 1) for d in devices
        ]
        # RCA-ETX estimator internals for the inlined zero-capacity
        # observation.  ``tracker`` and ``_ewma`` are only ever reassigned by
        # ``reset()``, which no engine calls mid-run, so the hoisted
        # references stay live for the whole run.
        self._rca_trackers = [d.rca_etx.estimator.tracker for d in devices]
        self._rca_ewma = [d.rca_etx.estimator._ewma for d in devices]
        self._rca_bits = [d.rca_etx.estimator.packet_bits for d in devices]
        self._rca_max = [d.rca_etx.estimator.max_service_time_s for d in devices]

        # Uplink overhead in bytes: header + the always-present RCA-ETX metric
        # (+ the ROBC queue-length field when the scheme piggybacks it).
        self._uplink_overhead = PACKET_OVERHEAD_BYTES + METRIC_FIELD_BYTES + (
            METRIC_FIELD_BYTES if self._scheme.requires_queue_length else 0
        )
        self._airtime_cache: Dict[Tuple[int, object], float] = {}

        # Fast-path bookkeeping: strict equivalence keeps estimator state
        # identical even when it is unobservable; relaxing it is only sound
        # when nothing downstream can read the skipped updates.
        scheme_observe_is_noop = (
            type(self._scheme).observe_transmission_slot
            is ForwardingScheme.observe_transmission_slot
        )
        skippable = (
            not self._uses_forwarding
            and scheme_observe_is_noop
            and not any(
                isinstance(d.device_class, QueueBasedClassA) for d in self._devices
            )
        )
        self._strict_observes = (
            self.config.engine.strict_equivalence or not skippable
        )
        # A base-class observe hook is a literal no-op: skipping the call is
        # exact regardless of the strict-equivalence setting.
        self._scheme_observe = (
            None if scheme_observe_is_noop else self._scheme.observe_transmission_slot
        )

        # Per-(channel, int(SF)) collision buckets.
        self._buckets: Dict[Tuple[int, int], List] = {}
        self._bucket_horizon: Dict[Tuple[int, int], float] = {}
        self._capture_threshold = self.medium.collisions.capture_threshold_db

        # Spatial prefilter (disabled under shadowing: every link computation
        # draws from the shadowing stream, so the draw order must follow the
        # oracle's exact query sequence).
        self._exact_topology = bool(self.config.shadowing)
        self._gateway_ids: List[str] = list(scenario.gateways)
        self._sinks = [scenario.topology.sinks[g] for g in self._gateway_ids]
        self._tick_s = self.config.engine.tick_s
        self._current_tick = -1
        self._tick_any: List[bool] = []
        self._tick_mask: Optional[np.ndarray] = None
        if not self._exact_topology and self._devices:
            self._build_prefilter()
        self._fast_path_ok = not self._uses_forwarding and not self._exact_topology

    # ------------------------------------------------------------------ #
    # Prefilter construction
    # ------------------------------------------------------------------ #
    def _build_prefilter(self) -> None:
        """Precompute per-tick device positions and per-device reach margins.

        For a query at time ``t`` inside tick ``k`` the device has moved at
        most ``max_segment_speed * tick_s`` metres from its (activity-clamped)
        position at the tick start, so a disc of radius
        ``gateway_range_m + margin`` around that position is a strict
        superset of the oracle's range query at ``t``.
        """
        n_devices = len(self._devices)
        n_ticks = int(math.floor(self._duration / self._tick_s)) + 1
        tick_times = np.arange(n_ticks, dtype=float) * self._tick_s
        positions = np.empty((n_devices, n_ticks, 2), dtype=float)
        margins = np.empty((n_devices, 1), dtype=float)
        for i, trace in enumerate(self._traces):
            clamped = np.clip(tick_times, trace.start_time, trace.end_time)
            positions[i] = trace.positions_at(clamped)
            times = trace._times_array
            if times.size > 1:
                steps = np.hypot(np.diff(trace._xs), np.diff(trace._ys))
                speed = float(np.max(steps / np.diff(times)))
            else:
                speed = 0.0
            margins[i, 0] = speed * self._tick_s
        self._tick_pos = positions
        gateway_range = self.scenario.topology.config.gateway_range_m
        reach = gateway_range + margins
        self._reach_sq = reach * reach
        self._gw_x = np.asarray([s.position.x for s in self._sinks], dtype=float)
        self._gw_y = np.asarray([s.position.y for s in self._sinks], dtype=float)

    def _refresh_tick(self, tick: int) -> None:
        pos = self._tick_pos[:, tick, :]
        dx = pos[:, 0, None] - self._gw_x[None, :]
        dy = pos[:, 1, None] - self._gw_y[None, :]
        mask = (dx * dx + dy * dy) <= self._reach_sq
        self._tick_mask = mask
        self._tick_any = mask.any(axis=1).tolist()
        self._current_tick = tick

    def _has_gateway_candidate(self, index: int, now: float) -> bool:
        tick = int(now // self._tick_s)
        if tick != self._current_tick:
            self._refresh_tick(tick)
        return self._tick_any[index]

    def _gateways_in_range(self, index: int, now: float) -> List[tuple]:
        """Replica of ``topology.gateways_in_range`` behind the prefilter.

        Candidates come from the tick mask (a superset of the oracle's disc
        query, in the same gateway insertion order); the survivors run
        through the identical ``_link_state`` arithmetic, so the returned
        pairs are bit-identical to the oracle's.
        """
        topology = self.scenario.topology
        device_id = self._device_ids[index]
        if self._exact_topology:
            return topology.gateways_in_range(device_id, now)
        if not self._has_gateway_candidate(index, now):
            return []
        position = self._traces[index].position_at(now)
        if position is None:
            return []
        capacity_model = topology.capacity_model_for(device_id)
        gateway_range = topology.config.gateway_range_m
        result = []
        for gi in np.flatnonzero(self._tick_mask[index]):
            sink = self._sinks[gi]
            state = topology._link_state(
                position, sink.position, gateway_range, capacity_model
            )
            if state.connected:
                result.append((sink.node_id, state))
        return result

    # ------------------------------------------------------------------ #
    # Event heap (mirrors the oracle's EventQueue push order exactly)
    # ------------------------------------------------------------------ #
    def _push(self, time: float, priority: int, kind: int, payload) -> None:
        heappush(self._heap, (time, priority, self._seq, kind, payload))
        self._seq += 1

    def _schedule_attempt(self, index: int, time: float) -> None:
        if self._attempt_pending[index]:
            return
        if time >= self._duration:
            return
        self._attempt_pending[index] = True
        now = self.now
        heappush(
            self._heap,
            (time if time > now else now, ATTEMPT_PRIORITY, self._seq, _ATTEMPT, index),
        )
        self._seq += 1

    def _schedule_generation_processes(self) -> None:
        interval = self.config.device.message_interval_s
        entries = []
        seq = self._seq
        for index, trace in enumerate(self._traces):
            start = max(trace.start_time, 0.0)
            if start >= self._duration:
                continue
            time = start
            end = min(trace.end_time, self._duration)
            while time < end:
                entries.append((time, ATTEMPT_PRIORITY, seq, _GENERATION, index))
                seq += 1
                time += interval
        self._seq = seq
        self._heap.extend(entries)
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------ #
    # Run control
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        """Execute the scenario and return the run metrics."""
        self._schedule_generation_processes()
        heap = self._heap
        duration = self._duration
        pending = self._attempt_pending
        on_fast = self._on_fast_completion
        on_complete = self._on_uplink_complete
        attempt = self._attempt_uplink
        devices = self._devices
        while heap and heap[0][0] <= duration:
            time, _, _, kind, payload = heappop(heap)
            self.now = time
            if kind == _FAST_COMPLETION:
                on_fast(payload)
            elif kind == _COMPLETION:
                on_complete(payload)
            elif kind == _ATTEMPT:
                pending[payload] = False
                attempt(payload)
            else:  # _GENERATION — always inside the device's active span
                devices[payload].generate_message(time)
                attempt(payload)
        # Land the clock exactly like the oracle's Simulator.run(until=...):
        # remaining events (if any) lie strictly beyond the horizon.
        if self.now < duration:
            self.now = duration
        from repro.experiments.runner import account_idle_energy

        account_idle_energy(self.scenario, duration)
        return compute_run_metrics(
            scheme=self.config.scheme,
            num_gateways=self.config.num_gateways,
            device_range_m=self.config.device_range_m,
            duration_s=duration,
            devices=self._devices,
            server=self.server,
        )

    # ------------------------------------------------------------------ #
    # Uplink attempts
    # ------------------------------------------------------------------ #
    def _attempt_uplink(self, index: int) -> None:
        now = self.now
        if not (self._trace_start[index] <= now <= self._trace_end[index]):
            return
        if self._queue_needs_expiry[index]:
            self._devices[index].queue.expire(now)
        queued = len(self._queue_msgs[index])
        if not queued:
            return
        channel = self._channels[index]
        next_allowed = self._na_dicts[index].get(channel, 0.0)
        if now < next_allowed:
            self._schedule_attempt(index, next_allowed)
            return
        if self._fast_path_ok:
            # Inlined tick-prefilter check, then the exact disc query.  An
            # empty result — whether the tick mask was empty or a margin
            # false positive — means the slot is a disconnected slot, and in
            # a non-forwarding scenario those take the fast path.
            tick = int(now // self._tick_s)
            if tick != self._current_tick:
                self._refresh_tick(tick)
            if self._tick_any[index]:
                gateways = self._gateways_in_range(index, now)
                if gateways:
                    self._full_uplink(index, self._devices[index], now, gateways)
                    return
            self._fast_disconnected_uplink(index, now, queued, channel)
            return
        self._full_uplink(index, self._devices[index], now, None)

    def _fast_disconnected_uplink(
        self, index: int, now: float, queued: int, channel: int
    ) -> None:
        """A slot with no connected gateway in a non-forwarding scenario.

        The frame reaches no receiver: no packet object, no registration, no
        reception draw.  Only the observable effects remain — duty cycle and
        energy accounting, the retransmission counter, and the retry event —
        and they are applied inline, replicating the exact arithmetic of
        ``EndDevice.record_uplink``.  The bundle size matches
        ``build_uplink`` because in a non-forwarding run every queued message
        was generated locally with the configured message size (the queue
        was expired by the caller).
        """
        device = self._devices[index]
        if self._strict_observes:
            self._observe_slot(index, now, 0.0)
            if self._scheme_observe is not None:
                self._scheme_observe(device.device_id, False, now)
        max_bundle = self._max_bundle[index]
        bundled = queued if queued < max_bundle else max_bundle
        airtimes = self._fast_airtime[index]
        airtime_s = airtimes[bundled]
        if airtime_s is None:
            airtime_s = airtimes[bundled] = self._airtime_s(
                self._uplink_overhead + self._msg_size[index] * bundled,
                self._sf[index],
            )
        # Inlined device.record_uplink(now, airtime_s): duty cycle (the
        # can-transmit gate already passed, so the regulator's raise is
        # unreachable), TX energy, stats, last uplink end.
        duty = self._duty[index]
        duty._total_airtime_s += airtime_s
        duty._transmissions += 1
        off_time = airtime_s * self._off_mult[index]
        self._na_dicts[index][channel] = now + airtime_s + off_time
        self._energy_sec[index][_TX] += airtime_s
        stats = self._stats[index]
        stats.uplink_transmissions += 1
        end = now + airtime_s
        device.last_uplink_end = end
        heappush(
            self._heap, (end, COMPLETION_PRIORITY, self._seq, _FAST_COMPLETION, index)
        )
        self._seq += 1

    def _observe_slot(self, index: int, now: float, capacity_bps: float) -> None:
        """Inlined ``rca_etx.observe_transmission_slot(now, capacity, 0.0)``.

        Same arithmetic as ``SinkContactTracker.observe`` +
        ``RealTimePacketServiceTime.rpst`` + the EWMA fold, with the zero
        residual wait dropped (adding ``0.0`` to a non-negative sample is
        exact) and the method dispatch removed.
        """
        tracker = self._rca_trackers[index]
        ceiling = self._rca_max[index]
        if capacity_bps > 0.0:
            if tracker.last_slot_capacity_bps <= 0.0:
                tracker.contact_count += 1
            tracker.last_slot_time = now
            tracker.last_slot_capacity_bps = capacity_bps
            tracker.last_contact_time = now
            tracker.last_contact_capacity_bps = capacity_bps
            sample = self._rca_bits[index] / capacity_bps
            if sample > ceiling:
                sample = ceiling
        else:
            tracker.last_slot_time = now
            tracker.last_slot_capacity_bps = 0.0
            last_contact = tracker.last_contact_time
            if last_contact is None:
                sample = ceiling
            else:
                sample = self._rca_bits[index] / tracker.last_contact_capacity_bps
                if sample > ceiling:
                    sample = ceiling
                elapsed = now - last_contact
                if elapsed > 0.0:
                    sample += elapsed
                    if sample > ceiling:
                        sample = ceiling
        ewma = self._rca_ewma[index]
        value = ewma._value
        ewma._value = (
            sample
            if value is None
            else (1.0 - ewma.alpha) * value + ewma.alpha * sample
        )
        ewma._samples += 1

    def _full_uplink(
        self,
        index: int,
        device: EndDevice,
        now: float,
        gateways_in_range: Optional[List[tuple]] = None,
    ) -> None:
        """The oracle's ``_transmit_uplink``, with batched spatial queries."""
        scheme = self._scheme
        topology = self.scenario.topology

        if gateways_in_range is None:
            gateways_in_range = self._gateways_in_range(index, now)
        sink_capacity = 0.0
        for _, link in gateways_in_range:
            if link.capacity_bps > sink_capacity:
                sink_capacity = link.capacity_bps
        self._observe_slot(index, now, sink_capacity)
        if self._scheme_observe is not None:
            self._scheme_observe(device.device_id, sink_capacity > 0.0, now)

        packet = device.build_uplink(
            now, include_queue_length=scheme.requires_queue_length
        )
        airtime_s = self._airtime_s(packet.payload_bytes, device.spreading_factor)
        device.record_uplink(now, airtime_s)

        rssi_by_receiver: Dict[str, float] = {}
        for gateway_id, link in gateways_in_range:
            if self.scenario.gateways[gateway_id].listens_on(device.channel):
                rssi_by_receiver[gateway_id] = link.rssi_dbm
        overhearers: Dict[str, float] = {}
        if self._uses_forwarding:
            for neighbour_id, link in topology.neighbours(device.device_id, now):
                neighbour = self.scenario.devices[neighbour_id]
                if (
                    neighbour.channel == device.channel
                    and neighbour.spreading_factor == device.spreading_factor
                    and neighbour.is_listening(now)
                ):
                    rssi_by_receiver[neighbour_id] = link.rssi_dbm
                    overhearers[neighbour_id] = link.rssi_dbm

        transmission: Optional[Transmission] = None
        if rssi_by_receiver:
            # Frames nobody hears are unobservable: they cannot be received
            # (no RSSI entry) and never interfere (interferers without an RSSI
            # entry at the receiver are skipped), so only heard frames are
            # registered in the collision buckets.
            transmission = Transmission(
                sender=device.device_id,
                start_time=now,
                duration=airtime_s,
                channel=device.channel,
                spreading_factor=device.spreading_factor,
                rssi_by_receiver=rssi_by_receiver,
            )
            self._register(transmission)
        self._push(
            now + airtime_s,
            COMPLETION_PRIORITY,
            _COMPLETION,
            (index, packet, transmission, overhearers),
        )

    def _airtime_s(self, payload_bytes: int, spreading_factor) -> float:
        key = (payload_bytes, spreading_factor)
        airtime = self._airtime_cache.get(key)
        if airtime is None:
            airtime = self.medium.airtime_s(payload_bytes, spreading_factor)
            self._airtime_cache[key] = airtime
        return airtime

    # ------------------------------------------------------------------ #
    # Uplink resolution
    # ------------------------------------------------------------------ #
    def _on_fast_completion(self, index: int) -> None:
        """Completion of a frame nobody heard: always a failed uplink.

        Inlined ``device.on_uplink_failed()`` plus the retry scheduling of
        the oracle's completion handler (the queue is never empty here — an
        unheard frame removes nothing — but the check is kept for parity).
        """
        device = self._devices[index]
        device.retransmission_count += 1
        self._stats[index].retransmissions += 1
        if (
            device.retransmission_count <= self._max_retrans[index]
            and self._queue_msgs[index]
            and not self._attempt_pending[index]
        ):
            retry_at = self._na_dicts[index].get(self._channels[index], 0.0)
            if retry_at < self._duration:
                self._attempt_pending[index] = True
                now = self.now
                heappush(
                    self._heap,
                    (
                        retry_at if retry_at > now else now,
                        ATTEMPT_PRIORITY,
                        self._seq,
                        _ATTEMPT,
                        index,
                    ),
                )
                self._seq += 1

    def _on_uplink_complete(self, payload) -> None:
        index, packet, transmission, overhearers = payload
        device = self._devices[index]
        now = self.now

        delivered_gateway = self._resolve_gateway_reception(transmission)
        if delivered_gateway is not None:
            ack = self.server.process_uplink(packet, delivered_gateway, now)
            self.scenario.gateways[delivered_gateway].receive(packet)
            device.on_acknowledged(ack.acked_message_ids)
            if device.has_data():
                self._schedule_attempt(index, device.next_transmission_time)
        else:
            retry_allowed = device.on_uplink_failed()
            if retry_allowed and device.has_data():
                self._schedule_attempt(index, device.next_transmission_time)

        if self._uses_forwarding:
            self._resolve_overhearing(device, packet, transmission, overhearers)

    def _resolve_gateway_reception(
        self, transmission: Optional[Transmission]
    ) -> Optional[str]:
        """Replica of ``RadioMedium.resolve_gateway_reception`` over buckets.

        Identical candidate order (descending RSSI) and identical draw
        discipline: the link-quality draw happens only after the capture
        check passes, so the reception stream advances exactly as it does in
        the oracle.
        """
        if transmission is None:
            return None
        gateways = self.scenario.gateways
        candidates = [
            (rssi, receiver)
            for receiver, rssi in transmission.rssi_by_receiver.items()
            if receiver in gateways
        ]
        quality = self.medium.link_quality(transmission.spreading_factor)
        if len(candidates) > 1:
            candidates.sort(reverse=True)
        for rssi, gateway_id in candidates:
            if not self._bucket_is_received(transmission, gateway_id):
                continue
            if quality.frame_received(rssi, self._reception_rng):
                return gateway_id
        return None

    # ------------------------------------------------------------------ #
    # Collision buckets
    # ------------------------------------------------------------------ #
    def _register(self, transmission: Transmission) -> None:
        key = (transmission.channel, int(transmission.spreading_factor))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = [[], 0]
            # No frame in this bucket lasts longer than a full-payload frame,
            # and resolutions happen at frame end: once an entry's end falls
            # this far behind the resolution clock it can never overlap a
            # current or future frame in the bucket.
            self._bucket_horizon[key] = self.medium.airtime_s(
                MAX_PHY_PAYLOAD_BYTES, transmission.spreading_factor
            )
        bucket[0].append(transmission)

    def _bucket_is_received(self, transmission: Transmission, receiver: str) -> bool:
        """Replica of ``CollisionModel.is_received`` over this frame's bucket.

        Frames in other buckets never overlap (different channel or SF), and
        bucket entries wholly before the live window are skipped via the head
        pointer — neither can change the verdict.
        """
        rssi = transmission.rssi_by_receiver.get(receiver)
        if rssi is None or rssi == float("-inf"):
            return False
        key = (transmission.channel, int(transmission.spreading_factor))
        bucket = self._buckets[key]
        entries, head = bucket
        horizon = transmission.end_time - self._bucket_horizon[key]
        while head < len(entries) and entries[head].end_time <= horizon:
            head += 1
        if head > _BUCKET_COMPACT_THRESHOLD:
            del entries[:head]
            head = 0
        bucket[1] = head
        start = transmission.start_time
        end = transmission.end_time
        for i in range(head, len(entries)):
            other = entries[i]
            if other is transmission:
                continue
            if other.start_time < end and start < other.end_time:
                other_rssi = other.rssi_by_receiver.get(receiver)
                if other_rssi is None or other_rssi == float("-inf"):
                    continue
                if rssi - other_rssi < self._capture_threshold:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # Overhearing and handovers
    # ------------------------------------------------------------------ #
    def _resolve_overhearing(
        self,
        sender: EndDevice,
        packet,
        transmission: Optional[Transmission],
        overhearers: Dict[str, float],
    ) -> None:
        now = self.now
        scheme = self._scheme
        capacity_model = self.scenario.topology.capacity_model_for(sender.device_id)
        for neighbour_id, rssi in overhearers.items():
            neighbour = self.scenario.devices[neighbour_id]
            if transmission is None or not self._bucket_is_received(
                transmission, neighbour_id
            ):
                continue
            decision = scheme.on_overhear(neighbour, packet, rssi, capacity_model, now)
            if not decision.forward:
                continue
            self._perform_handover(
                neighbour, sender, decision.message_limit, decision.copy
            )

    def _perform_handover(
        self, giver: EndDevice, taker: EndDevice, limit: int, copy: bool
    ) -> None:
        now = self.now
        if not giver.can_transmit(now):
            return
        if not self.scenario.topology.in_contact(giver.device_id, taker.device_id, now):
            return
        messages = giver.transferable_messages(taker.device_id, limit, now=now)
        if not messages:
            return

        payload_bytes = PACKET_OVERHEAD_BYTES + sum(m.size_bytes for m in messages)
        airtime_s = self._airtime_s(payload_bytes, giver.spreading_factor)
        giver.record_handover_transmission(now, airtime_s)

        giver_index = self._index_of[giver.device_id]
        handover_rssi = {
            gateway_id: link.rssi_dbm
            for gateway_id, link in self._gateways_in_range(giver_index, now)
            if self.scenario.gateways[gateway_id].listens_on(giver.channel)
        }
        if handover_rssi:
            self._register(
                Transmission(
                    sender=giver.device_id,
                    start_time=now,
                    duration=airtime_s,
                    channel=giver.channel,
                    spreading_factor=giver.spreading_factor,
                    rssi_by_receiver=handover_rssi,
                )
            )

        if copy:
            transferred = [dataclass_replace(m) for m in messages]
        else:
            transferred = giver.release_messages(m.message_id for m in messages)
        accepted = taker.accept_handover(transferred, giver.device_id, now=now)
        self._handover_count += 1
        self._handed_over_messages += accepted
        self._schedule_attempt(
            self._index_of[taker.device_id], taker.next_transmission_time
        )

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def handover_count(self) -> int:
        """Number of device-to-device handover frames sent."""
        return self._handover_count

    @property
    def handed_over_messages(self) -> int:
        """Number of messages that changed carrier at least once via this engine."""
        return self._handed_over_messages
