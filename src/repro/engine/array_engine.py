"""The batched array-native simulation engine.

:class:`ArrayMLoRaSimulation` runs the same scenario the event-driven object
engine (:class:`~repro.experiments.runner.MLoRaSimulation`) runs, and is
required to produce **bit-identical** :class:`~repro.analysis.metrics.RunMetrics`.
The object engine stays the oracle; this engine restructures the hot loops
around array-shaped state:

* **Per-tick gateway prefilter.**  Device positions at every tick of the
  ``engine.tick_s`` grid are precomputed in one NumPy batch per trace
  (struct-of-arrays: an ``(n_devices, n_ticks, 2)`` position table plus
  per-device activity spans and speed-derived safety margins).  A
  transmission slot first consults the tick's vectorized
  distance-to-gateway mask; only devices with at least one candidate
  gateway pay for an exact position interpolation and link computation.
  The exact recomputation calls the *same*
  :meth:`~repro.network.topology.TimeVaryingTopology._link_state` code the
  oracle calls, so connectivity decisions and RSSI values are identical by
  construction.  The margin is derived from each trace's maximum segment
  speed, so the prefilter is a strict superset of the oracle's disc query.
* **Disconnected fast path.**  In non-forwarding scenarios a slot with no
  candidate gateway cannot be observed by anything: the frame reaches no
  receiver, the reception resolution draws no randomness, and the queue
  keeps its messages.  The fast path skips packet construction and medium
  registration entirely and accounts only the observable effects (duty
  cycle, energy, retransmission counters, the next retry event).
* **Per-(channel, SF) collision buckets.**  Registered transmissions land in
  start-time-ordered buckets with a monotone head pointer; the capture
  check replicates :meth:`~repro.phy.collision.CollisionModel.is_received`
  over the bucket instead of scanning one global registry.  Entries are
  discarded once no current-or-future frame can overlap them (bounded by
  the bucket's maximum airtime), so the scan window stays O(recent frames).
* **Raw event heap.**  Events are plain tuples on a :mod:`heapq` list.  The
  push sequence mirrors the oracle's :class:`~repro.sim.events.EventQueue`
  push sequence one-to-one, so the (time, priority, insertion-order) pop
  order — and with it every RNG draw and message id — is identical.
* **Vectorized forwarding hot path.**  In forwarding scenarios every
  completed uplink fans out to its overhearers.  Neighbour candidacy is
  answered from per-tick arrays (squared-distance mask over the tick's
  position row, intersected with cached per-(channel, SF) listening masks
  and an activity-span superset); survivors are recomputed scalar-exactly
  with the oracle's arithmetic, in the oracle's device order.  Forwarding
  verdicts then go through :meth:`~repro.routing.base.ForwardingScheme.
  on_overhear_batch` — one call per transmission instead of one per
  overhearer — which is exact because decisions are receiver-local, draw no
  RNG, and handovers run afterwards in the same receiver order.

``engine.strict_equivalence`` (default on) keeps even unobservable estimator
state identical on the fast path; switching it off skips those updates when
they are provably result-neutral (non-forwarding scheme, stateless observe
hook, no queue-based Class A energy coupling), chains generation events
(one live event per device instead of a pre-scheduled ladder) and coalesces
*same-time completion groups* — maximal runs of completions tied at the
same float time with pairwise-disjoint participants — into a single batched
resolution pass.  Both settings yield the same RunMetrics (relaxed mode is
RunMetrics-equal rather than event-trace-identical); the differential
suites in ``tests/engine/`` pin both claims.

With shadowing enabled every link computation draws from the shadowing
stream, so spatial shortcuts would change the draw order; the engine then
delegates all spatial queries to the object topology and disables the fast
path, remaining bit-identical at object-engine speed.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from dataclasses import replace as dataclass_replace
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import RunMetrics, compute_run_metrics
from repro.experiments.scenario import BuiltScenario
from repro.mac.device import EndDevice
from repro.mac.device_classes import ModifiedClassC, QueueBasedClassA
from repro.mac.frames import METRIC_FIELD_BYTES, PACKET_OVERHEAD_BYTES
from repro.mac.network_server import NetworkServer
from repro.mac.queueing import BufferPolicy
from repro.phy.collision import Transmission
from repro.phy.constants import MAX_PHY_PAYLOAD_BYTES
from repro.phy.energy import RadioState
from repro.phy.link import LinkCapacityModel
from repro.radio.medium import RadioMedium
from repro.routing.base import ForwardingScheme
from repro.sim.events import ATTEMPT_PRIORITY, COMPLETION_PRIORITY

# Event kinds (heap entries are (time, priority, seq, kind, payload); the
# sequence number is unique, so comparison never reaches kind/payload).
_GENERATION = 0
_ATTEMPT = 1
_COMPLETION = 2
_FAST_COMPLETION = 3

#: Collision buckets are compacted once this many entries are dead.
_BUCKET_COMPACT_THRESHOLD = 512

_TX = RadioState.TX
_NEG_INF = float("-inf")


class ArrayMLoRaSimulation:
    """One complete simulation run of a built scenario, batched."""

    def __init__(
        self, scenario: BuiltScenario, medium: Optional[RadioMedium] = None
    ) -> None:
        self.scenario = scenario
        self.config = scenario.config
        self.server = NetworkServer()
        self.medium = medium or RadioMedium(
            config=self.config.radio,
            reception_rng=scenario.streams.stream("reception"),
        )
        # The medium serves as the airtime/link-quality cache and the owner of
        # the reception stream; collision resolution happens in the buckets.
        self._reception_rng = self.medium.reception_rng
        self.now = 0.0
        self._duration = self.config.duration_s
        self._heap: List[tuple] = []
        self._seq = 0

        self._scheme = scenario.scheme
        self._uses_forwarding = self._scheme.uses_forwarding
        self._handover_count = 0
        self._handed_over_messages = 0

        # Struct-of-arrays device table, in scenario insertion order (the
        # oracle iterates the same dicts in the same order).
        self._device_ids: List[str] = list(scenario.devices)
        self._devices: List[EndDevice] = [
            scenario.devices[d] for d in self._device_ids
        ]
        self._index_of: Dict[str, int] = {
            device_id: i for i, device_id in enumerate(self._device_ids)
        }
        self._traces = [scenario.traces[d] for d in self._device_ids]
        self._trace_start = [t.start_time for t in self._traces]
        self._trace_end = [t.end_time for t in self._traces]
        self._attempt_pending = [False] * len(self._devices)

        # Hoisted per-device state for the inlined fast path.  The inlined
        # updates perform the *same arithmetic in the same order* as the
        # EndDevice/DutyCycleRegulator/EnergyModel methods they replace —
        # only the attribute/method dispatch is removed.
        devices = self._devices
        self._queue_msgs = [d.queue._messages for d in devices]
        self._queue_needs_expiry = [
            type(d.queue.policy).expire is not BufferPolicy.expire for d in devices
        ]
        self._stats = [d.stats for d in devices]
        self._energy_sec = [d.energy._seconds for d in devices]
        self._channels = [d.channel for d in devices]
        self._sf = [d.spreading_factor for d in devices]
        self._na_dicts = [d.duty_cycle._next_allowed_by_channel for d in devices]
        self._duty = [d.duty_cycle for d in devices]
        self._off_mult = [1.0 / d.duty_cycle.duty_cycle - 1.0 for d in devices]
        self._max_retrans = [d.config.max_retransmissions for d in devices]
        self._max_bundle = [d.config.max_messages_per_packet for d in devices]
        self._msg_size = [d.config.message_size_bytes for d in devices]
        # Lazily-filled per-device airtime by bundled-message count.
        self._fast_airtime: List[List[Optional[float]]] = [
            [None] * (d.config.max_messages_per_packet + 1) for d in devices
        ]
        # RCA-ETX estimator internals for the inlined zero-capacity
        # observation.  ``tracker`` and ``_ewma`` are only ever reassigned by
        # ``reset()``, which no engine calls mid-run, so the hoisted
        # references stay live for the whole run.
        self._rca_trackers = [d.rca_etx.estimator.tracker for d in devices]
        self._rca_ewma = [d.rca_etx.estimator._ewma for d in devices]
        self._rca_bits = [d.rca_etx.estimator.packet_bits for d in devices]
        self._rca_max = [d.rca_etx.estimator.max_service_time_s for d in devices]

        # Uplink overhead in bytes: header + the always-present RCA-ETX metric
        # (+ the ROBC queue-length field when the scheme piggybacks it).
        self._uplink_overhead = PACKET_OVERHEAD_BYTES + METRIC_FIELD_BYTES + (
            METRIC_FIELD_BYTES if self._scheme.requires_queue_length else 0
        )
        self._airtime_cache: Dict[Tuple[int, object], float] = {}

        # Fast-path bookkeeping: strict equivalence keeps estimator state
        # identical even when it is unobservable; relaxing it is only sound
        # when nothing downstream can read the skipped updates.
        scheme_observe_is_noop = (
            type(self._scheme).observe_transmission_slot
            is ForwardingScheme.observe_transmission_slot
        )
        skippable = (
            not self._uses_forwarding
            and scheme_observe_is_noop
            and not any(
                isinstance(d.device_class, QueueBasedClassA) for d in self._devices
            )
        )
        self._strict_observes = (
            self.config.engine.strict_equivalence or not skippable
        )
        # A base-class observe hook is a literal no-op: skipping the call is
        # exact regardless of the strict-equivalence setting.
        self._scheme_observe = (
            None if scheme_observe_is_noop else self._scheme.observe_transmission_slot
        )

        # Per-(channel, int(SF)) collision buckets.
        self._buckets: Dict[Tuple[int, int], List] = {}
        self._bucket_horizon: Dict[Tuple[int, int], float] = {}
        self._capture_threshold = self.medium.collisions.capture_threshold_db

        # Spatial prefilter (disabled under shadowing: every link computation
        # draws from the shadowing stream, so the draw order must follow the
        # oracle's exact query sequence).
        self._exact_topology = bool(self.config.shadowing)
        self._gateway_ids: List[str] = list(scenario.gateways)
        self._sinks = [scenario.topology.sinks[g] for g in self._gateway_ids]
        self._tick_s = self.config.engine.tick_s
        self._current_tick = -1
        self._tick_any: List[bool] = []
        self._tick_mask: Optional[np.ndarray] = None
        if not self._exact_topology and self._devices:
            self._build_prefilter()
        self._fast_path_ok = not self._uses_forwarding and not self._exact_topology

        # Batched forwarding decisions: only schemes that override
        # ``on_overhear_batch`` take the batch path — the base-class default
        # would just loop over ``on_overhear`` anyway, so custom registered
        # schemes keep the exact scalar interleaving they were written for.
        self._batch_decide = (
            type(self._scheme).on_overhear_batch
            is not ForwardingScheme.on_overhear_batch
        )
        # Relaxed-order execution (``strict_equivalence=False``): generation
        # events are re-armed on pop instead of pre-scheduled, and completions
        # that tie at the same instant with pairwise-disjoint participants are
        # coalesced into one resolution pass with a single batched forwarding
        # decision call.  Both are RunMetrics-equivalent to the oracle (the
        # differential suites pin this); the event/seq bookkeeping may differ.
        relaxed = not self.config.engine.strict_equivalence
        self._chain_generations = relaxed
        self._relaxed_groups = relaxed and self._uses_forwarding and self._batch_decide

    # ------------------------------------------------------------------ #
    # Prefilter construction
    # ------------------------------------------------------------------ #
    def _build_prefilter(self) -> None:
        """Precompute per-tick device positions and per-device reach margins.

        For a query at time ``t`` inside tick ``k`` the device has moved at
        most ``max_segment_speed * tick_s`` metres from its (activity-clamped)
        position at the tick start, so a disc of radius
        ``gateway_range_m + margin`` around that position is a strict
        superset of the oracle's range query at ``t``.
        """
        n_devices = len(self._devices)
        n_ticks = int(math.floor(self._duration / self._tick_s)) + 1
        tick_times = np.arange(n_ticks, dtype=float) * self._tick_s
        positions = np.empty((n_devices, n_ticks, 2), dtype=float)
        margins = np.empty((n_devices, 1), dtype=float)
        for i, trace in enumerate(self._traces):
            clamped = np.clip(tick_times, trace.start_time, trace.end_time)
            positions[i] = trace.positions_at(clamped)
            times = trace._times_array
            if times.size > 1:
                steps = np.hypot(np.diff(trace._xs), np.diff(trace._ys))
                speed = float(np.max(steps / np.diff(times)))
            else:
                speed = 0.0
            margins[i, 0] = speed * self._tick_s
        self._tick_pos = positions
        gateway_range = self.scenario.topology.config.gateway_range_m
        reach = gateway_range + margins
        self._reach_sq = reach * reach
        self._gw_x = np.asarray([s.position.x for s in self._sinks], dtype=float)
        self._gw_y = np.asarray([s.position.y for s in self._sinks], dtype=float)
        if self._uses_forwarding:
            self._build_overhear_tables(positions, margins[:, 0])

    def _build_overhear_tables(
        self, positions: np.ndarray, margins: np.ndarray
    ) -> None:
        """Precompute the arrays behind the batched overhear candidacy.

        Per-slot neighbour candidacy is one vectorized disc test over the
        whole fleet's tick positions: device ``j`` is a candidate overhearer
        of a transmitter at exact position ``p`` when its tick position lies
        within ``device_range_m + margin_j`` of ``p`` — the same
        strict-superset argument the gateway prefilter uses.  Static receiver
        masks (overhear-capable device class, matching channel and SF) are
        held as NumPy bool arrays and folded in per (tick, channel, SF);
        survivors then run the exact scalar position/link arithmetic.
        """
        topology = self.scenario.topology
        devices = self._devices
        n = len(devices)
        device_range = topology.config.device_range_m
        reach = device_range + margins
        self._dev_reach_sq = reach * reach
        # Tick positions transposed to (n_ticks, n_devices) so one tick's
        # coordinates are a contiguous row.
        self._tick_x = np.ascontiguousarray(positions[:, :, 0].T)
        self._tick_y = np.ascontiguousarray(positions[:, :, 1].T)
        # Static listening categories.  ModifiedClassC always listens
        # (fraction 1.0 regardless of state), ClassA/ClassC never overhear
        # devices; anything else (QueueBasedClassA, custom classes) keeps the
        # exact per-call ``is_listening`` check on the scalar survivor stage.
        capable = np.zeros(n, dtype=bool)
        always = [False] * n
        for j, device in enumerate(devices):
            cls = device.device_class
            if not getattr(cls, "overhears_devices", False):
                continue
            capable[j] = True
            if type(cls) is ModifiedClassC:
                always[j] = True
        self._overhear_capable = capable
        self._always_listening = always
        self._channels_arr = np.asarray(self._channels, dtype=np.int64)
        self._sf_arr = np.asarray([int(sf) for sf in self._sf], dtype=np.int64)
        self._active_start_arr = np.asarray(self._trace_start, dtype=float)
        self._active_end_arr = np.asarray(self._trace_end, dtype=float)
        self._rx_static_masks: Dict[Tuple[int, int], np.ndarray] = {}
        self._tick_rx_masks: Dict[Tuple[int, int], np.ndarray] = {}
        # Exact survivor-stage state: plain-Python trace samples (bisect +
        # scalar interpolation, the same arithmetic as ``position_at``) and
        # the transmitter-side link model.
        traces = self._traces
        self._trace_times = [t._times for t in traces]
        self._trace_xs = [t._xs.tolist() for t in traces]
        self._trace_ys = [t._ys.tolist() for t in traces]
        self._tx_power = topology.config.tx_power_dbm
        self._device_range = device_range
        self._received_power = topology.path_loss.received_power_dbm
        self._cap_models = [
            topology.capacity_model_for(device_id) for device_id in self._device_ids
        ]
        # For the stock linear capacity model (with positive peak capacity),
        # connected ⟺ rssi strictly above the floor; anything else falls back
        # to the generic capacity call.
        self._cap_rssi_min = [
            model.rssi_min_dbm
            if type(model) is LinkCapacityModel and model.max_capacity_bps > 0.0
            else None
            for model in self._cap_models
        ]

    def _refresh_tick(self, tick: int) -> None:
        pos = self._tick_pos[:, tick, :]
        dx = pos[:, 0, None] - self._gw_x[None, :]
        dy = pos[:, 1, None] - self._gw_y[None, :]
        mask = (dx * dx + dy * dy) <= self._reach_sq
        self._tick_mask = mask
        self._tick_any = mask.any(axis=1).tolist()
        self._current_tick = tick
        if self._uses_forwarding:
            # Receiver masks are per (tick, channel, SF): static receiver
            # eligibility folded with this tick's active-span superset (any
            # device active at some instant of the tick; survivors re-check
            # the exact span).
            self._tick_rx_masks.clear()
            lo = tick * self._tick_s
            self._tick_active_sup = (self._active_start_arr <= lo + self._tick_s) & (
                lo <= self._active_end_arr
            )

    def _has_gateway_candidate(self, index: int, now: float) -> bool:
        tick = int(now // self._tick_s)
        if tick != self._current_tick:
            self._refresh_tick(tick)
        return self._tick_any[index]

    def _gateways_in_range(
        self, index: int, now: float, position=None
    ) -> List[tuple]:
        """Replica of ``topology.gateways_in_range`` behind the prefilter.

        Candidates come from the tick mask (a superset of the oracle's disc
        query, in the same gateway insertion order); the survivors run
        through the identical ``_link_state`` arithmetic, so the returned
        pairs are bit-identical to the oracle's.  Callers that already hold
        the device's exact position pass it to skip the re-interpolation.
        """
        topology = self.scenario.topology
        device_id = self._device_ids[index]
        if self._exact_topology:
            return topology.gateways_in_range(device_id, now)
        if not self._has_gateway_candidate(index, now):
            return []
        if position is None:
            position = self._traces[index].position_at(now)
            if position is None:
                return []
        capacity_model = topology.capacity_model_for(device_id)
        gateway_range = topology.config.gateway_range_m
        result = []
        for gi in np.flatnonzero(self._tick_mask[index]):
            sink = self._sinks[gi]
            state = topology._link_state(
                position, sink.position, gateway_range, capacity_model
            )
            if state.connected:
                result.append((sink.node_id, state))
        return result

    # ------------------------------------------------------------------ #
    # Event heap (mirrors the oracle's EventQueue push order exactly)
    # ------------------------------------------------------------------ #
    def _push(self, time: float, priority: int, kind: int, payload) -> None:
        heappush(self._heap, (time, priority, self._seq, kind, payload))
        self._seq += 1

    def _schedule_attempt(self, index: int, time: float) -> None:
        if self._attempt_pending[index]:
            return
        if time >= self._duration:
            return
        self._attempt_pending[index] = True
        now = self.now
        heappush(
            self._heap,
            (time if time > now else now, ATTEMPT_PRIORITY, self._seq, _ATTEMPT, index),
        )
        self._seq += 1

    def _schedule_generation_processes(self) -> None:
        interval = self.config.device.message_interval_s
        entries = []
        seq = self._seq
        if self._chain_generations:
            # Relaxed mode: one live generation event per device, re-armed on
            # pop instead of the fully pre-scheduled ladder.  The event times
            # are the identical accumulated floats and same-time generations
            # keep device order (initial events are pushed in device order;
            # each pop re-arms in pop order), so only the seq interleaving
            # with attempt events differs — observable solely on exact float
            # ties between a generation and an airtime-derived attempt time.
            # The differential suites pin RunMetrics equality.
            ends = [0.0] * len(self._traces)
            for index, trace in enumerate(self._traces):
                start = max(trace.start_time, 0.0)
                end = min(trace.end_time, self._duration)
                ends[index] = end
                if start < end:
                    entries.append((start, ATTEMPT_PRIORITY, seq, _GENERATION, index))
                    seq += 1
            self._generation_end = ends
            self._generation_interval = interval
        else:
            for index, trace in enumerate(self._traces):
                start = max(trace.start_time, 0.0)
                if start >= self._duration:
                    continue
                time = start
                end = min(trace.end_time, self._duration)
                while time < end:
                    entries.append((time, ATTEMPT_PRIORITY, seq, _GENERATION, index))
                    seq += 1
                    time += interval
        self._seq = seq
        self._heap.extend(entries)
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------ #
    # Run control
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        """Execute the scenario and return the run metrics."""
        self._schedule_generation_processes()
        heap = self._heap
        duration = self._duration
        pending = self._attempt_pending
        on_fast = self._on_fast_completion
        on_complete = self._on_uplink_complete
        attempt = self._attempt_uplink
        devices = self._devices
        relaxed_groups = self._relaxed_groups
        chain = self._chain_generations
        while heap and heap[0][0] <= duration:
            time, _, _, kind, payload = heappop(heap)
            self.now = time
            if kind == _FAST_COMPLETION:
                on_fast(payload)
            elif kind == _COMPLETION:
                if (
                    relaxed_groups
                    and heap
                    and heap[0][0] == time
                    and heap[0][3] == _COMPLETION
                ):
                    self._resolve_completion_group(time, payload)
                else:
                    on_complete(payload)
            elif kind == _ATTEMPT:
                pending[payload] = False
                attempt(payload)
            else:  # _GENERATION — always inside the device's active span
                devices[payload].generate_message(time)
                if chain:
                    next_time = time + self._generation_interval
                    if next_time < self._generation_end[payload]:
                        heappush(
                            heap,
                            (
                                next_time,
                                ATTEMPT_PRIORITY,
                                self._seq,
                                _GENERATION,
                                payload,
                            ),
                        )
                        self._seq += 1
                attempt(payload)
        # Land the clock exactly like the oracle's Simulator.run(until=...):
        # remaining events (if any) lie strictly beyond the horizon.
        if self.now < duration:
            self.now = duration
        from repro.experiments.runner import account_idle_energy

        account_idle_energy(self.scenario, duration)
        return compute_run_metrics(
            scheme=self.config.scheme,
            num_gateways=self.config.num_gateways,
            device_range_m=self.config.device_range_m,
            duration_s=duration,
            devices=self._devices,
            server=self.server,
        )

    # ------------------------------------------------------------------ #
    # Uplink attempts
    # ------------------------------------------------------------------ #
    def _attempt_uplink(self, index: int) -> None:
        now = self.now
        if not (self._trace_start[index] <= now <= self._trace_end[index]):
            return
        if self._queue_needs_expiry[index]:
            self._devices[index].queue.expire(now)
        queued = len(self._queue_msgs[index])
        if not queued:
            return
        channel = self._channels[index]
        next_allowed = self._na_dicts[index].get(channel, 0.0)
        if now < next_allowed:
            self._schedule_attempt(index, next_allowed)
            return
        if self._fast_path_ok:
            # Inlined tick-prefilter check, then the exact disc query.  An
            # empty result — whether the tick mask was empty or a margin
            # false positive — means the slot is a disconnected slot, and in
            # a non-forwarding scenario those take the fast path.
            tick = int(now // self._tick_s)
            if tick != self._current_tick:
                self._refresh_tick(tick)
            if self._tick_any[index]:
                gateways = self._gateways_in_range(index, now)
                if gateways:
                    self._full_uplink(index, self._devices[index], now, gateways)
                    return
            self._fast_disconnected_uplink(index, now, queued, channel)
            return
        self._full_uplink(index, self._devices[index], now, None)

    def _fast_disconnected_uplink(
        self, index: int, now: float, queued: int, channel: int
    ) -> None:
        """A slot with no connected gateway in a non-forwarding scenario.

        The frame reaches no receiver: no packet object, no registration, no
        reception draw.  Only the observable effects remain — duty cycle and
        energy accounting, the retransmission counter, and the retry event —
        and they are applied inline, replicating the exact arithmetic of
        ``EndDevice.record_uplink``.  The bundle size matches
        ``build_uplink`` because in a non-forwarding run every queued message
        was generated locally with the configured message size (the queue
        was expired by the caller).
        """
        device = self._devices[index]
        if self._strict_observes:
            self._observe_slot(index, now, 0.0)
            if self._scheme_observe is not None:
                self._scheme_observe(device.device_id, False, now)
        max_bundle = self._max_bundle[index]
        bundled = queued if queued < max_bundle else max_bundle
        airtimes = self._fast_airtime[index]
        airtime_s = airtimes[bundled]
        if airtime_s is None:
            airtime_s = airtimes[bundled] = self._airtime_s(
                self._uplink_overhead + self._msg_size[index] * bundled,
                self._sf[index],
            )
        # Inlined device.record_uplink(now, airtime_s): duty cycle (the
        # can-transmit gate already passed, so the regulator's raise is
        # unreachable), TX energy, stats, last uplink end.
        duty = self._duty[index]
        duty._total_airtime_s += airtime_s
        duty._transmissions += 1
        off_time = airtime_s * self._off_mult[index]
        self._na_dicts[index][channel] = now + airtime_s + off_time
        self._energy_sec[index][_TX] += airtime_s
        stats = self._stats[index]
        stats.uplink_transmissions += 1
        end = now + airtime_s
        device.last_uplink_end = end
        heappush(
            self._heap, (end, COMPLETION_PRIORITY, self._seq, _FAST_COMPLETION, index)
        )
        self._seq += 1

    def _observe_slot(self, index: int, now: float, capacity_bps: float) -> None:
        """Inlined ``rca_etx.observe_transmission_slot(now, capacity, 0.0)``.

        Same arithmetic as ``SinkContactTracker.observe`` +
        ``RealTimePacketServiceTime.rpst`` + the EWMA fold, with the zero
        residual wait dropped (adding ``0.0`` to a non-negative sample is
        exact) and the method dispatch removed.
        """
        tracker = self._rca_trackers[index]
        ceiling = self._rca_max[index]
        if capacity_bps > 0.0:
            if tracker.last_slot_capacity_bps <= 0.0:
                tracker.contact_count += 1
            tracker.last_slot_time = now
            tracker.last_slot_capacity_bps = capacity_bps
            tracker.last_contact_time = now
            tracker.last_contact_capacity_bps = capacity_bps
            sample = self._rca_bits[index] / capacity_bps
            if sample > ceiling:
                sample = ceiling
        else:
            tracker.last_slot_time = now
            tracker.last_slot_capacity_bps = 0.0
            last_contact = tracker.last_contact_time
            if last_contact is None:
                sample = ceiling
            else:
                sample = self._rca_bits[index] / tracker.last_contact_capacity_bps
                if sample > ceiling:
                    sample = ceiling
                elapsed = now - last_contact
                if elapsed > 0.0:
                    sample += elapsed
                    if sample > ceiling:
                        sample = ceiling
        ewma = self._rca_ewma[index]
        value = ewma._value
        ewma._value = (
            sample
            if value is None
            else (1.0 - ewma.alpha) * value + ewma.alpha * sample
        )
        ewma._samples += 1

    def _full_uplink(
        self,
        index: int,
        device: EndDevice,
        now: float,
        gateways_in_range: Optional[List[tuple]] = None,
    ) -> None:
        """The oracle's ``_transmit_uplink``, with batched spatial queries."""
        scheme = self._scheme
        topology = self.scenario.topology

        position = None
        if not self._exact_topology and (
            gateways_in_range is None or self._uses_forwarding
        ):
            # The caller established the device is active, so the exact
            # position exists; it is shared by the gateway disc query and the
            # vectorized overhear candidacy below.
            position = self._traces[index].position_at(now)
        if gateways_in_range is None:
            gateways_in_range = self._gateways_in_range(index, now, position)
        sink_capacity = 0.0
        for _, link in gateways_in_range:
            if link.capacity_bps > sink_capacity:
                sink_capacity = link.capacity_bps
        self._observe_slot(index, now, sink_capacity)
        if self._scheme_observe is not None:
            self._scheme_observe(device.device_id, sink_capacity > 0.0, now)

        packet = device.build_uplink(
            now, include_queue_length=scheme.requires_queue_length
        )
        airtime_s = self._airtime_s(packet.payload_bytes, device.spreading_factor)
        device.record_uplink(now, airtime_s)

        rssi_by_receiver: Dict[str, float] = {}
        for gateway_id, link in gateways_in_range:
            if self.scenario.gateways[gateway_id].listens_on(device.channel):
                rssi_by_receiver[gateway_id] = link.rssi_dbm
        overhearers: Dict[str, float] = {}
        if self._uses_forwarding:
            if position is not None:
                self._collect_overhearers(
                    index, device, now, position, rssi_by_receiver, overhearers
                )
            else:
                # Shadowing: every link computation draws from the shadowing
                # stream, so the spatial queries must replay the oracle's
                # exact sequence.
                for neighbour_id, link in topology.neighbours(device.device_id, now):
                    neighbour = self.scenario.devices[neighbour_id]
                    if (
                        neighbour.channel == device.channel
                        and neighbour.spreading_factor == device.spreading_factor
                        and neighbour.is_listening(now)
                    ):
                        rssi_by_receiver[neighbour_id] = link.rssi_dbm
                        overhearers[neighbour_id] = link.rssi_dbm

        transmission: Optional[Transmission] = None
        if rssi_by_receiver:
            # Frames nobody hears are unobservable: they cannot be received
            # (no RSSI entry) and never interfere (interferers without an RSSI
            # entry at the receiver are skipped), so only heard frames are
            # registered in the collision buckets.
            transmission = Transmission(
                sender=device.device_id,
                start_time=now,
                duration=airtime_s,
                channel=device.channel,
                spreading_factor=device.spreading_factor,
                rssi_by_receiver=rssi_by_receiver,
            )
            self._register(transmission)
        self._push(
            now + airtime_s,
            COMPLETION_PRIORITY,
            _COMPLETION,
            (index, packet, transmission, overhearers),
        )

    def _collect_overhearers(
        self,
        index: int,
        device: EndDevice,
        now: float,
        position,
        rssi_by_receiver: Dict[str, float],
        overhearers: Dict[str, float],
    ) -> None:
        """Batched replica of the oracle's per-slot neighbour query.

        One vectorized disc test over the fleet's tick positions (a strict
        superset of the oracle's range query, pre-masked by channel, SF,
        overhear capability and active span) yields the candidate indices in
        device insertion order — the order ``topology.neighbours`` reports
        them.  Each survivor then runs the exact scalar arithmetic of
        ``position_at`` + ``_link_state``: same interpolation, same
        ``math.hypot`` distance, same path-loss call with no RNG, so the
        surviving (receiver, RSSI) pairs are bit-identical to the oracle's.
        """
        tick = int(now // self._tick_s)
        if tick != self._current_tick:
            self._refresh_tick(tick)
        key = (device.channel, int(device.spreading_factor))
        base = self._tick_rx_masks.get(key)
        if base is None:
            static = self._rx_static_masks.get(key)
            if static is None:
                static = (
                    self._overhear_capable
                    & (self._channels_arr == key[0])
                    & (self._sf_arr == key[1])
                )
                self._rx_static_masks[key] = static
            base = static & self._tick_active_sup
            self._tick_rx_masks[key] = base
        px = position.x
        py = position.y
        dx = self._tick_x[tick] - px
        dy = self._tick_y[tick] - py
        candidates = np.flatnonzero(((dx * dx + dy * dy) <= self._dev_reach_sq) & base)
        if not candidates.size:
            return
        trace_starts = self._trace_start
        trace_ends = self._trace_end
        times_by_device = self._trace_times
        xs_by_device = self._trace_xs
        ys_by_device = self._trace_ys
        hypot = math.hypot
        received_power = self._received_power
        tx_power = self._tx_power
        device_range = self._device_range
        # Transmitter-side capacity model decides connectivity: for the stock
        # linear model that is a strict RSSI-floor comparison.
        rssi_min = self._cap_rssi_min[index]
        model = self._cap_models[index] if rssi_min is None else None
        always_listening = self._always_listening
        devices = self._devices
        device_ids = self._device_ids
        for j in candidates.tolist():
            if j == index or not (trace_starts[j] <= now <= trace_ends[j]):
                continue
            times = times_by_device[j]
            xs = xs_by_device[j]
            ys = ys_by_device[j]
            if now >= times[-1]:
                ox = xs[-1]
                oy = ys[-1]
            elif now <= times[0]:
                ox = xs[0]
                oy = ys[0]
            else:
                k = bisect_right(times, now)
                t0 = times[k - 1]
                f = (now - t0) / (times[k] - t0)
                x0 = xs[k - 1]
                ox = x0 + (xs[k] - x0) * f
                y0 = ys[k - 1]
                oy = y0 + (ys[k] - y0) * f
            distance = hypot(px - ox, py - oy)
            if distance > device_range:
                continue
            rssi = received_power(tx_power, distance, None)
            if rssi_min is not None:
                if not rssi > rssi_min:
                    continue
            elif not model.capacity_bps(rssi) > 0.0:
                continue
            if not always_listening[j] and not devices[j].is_listening(now):
                continue
            neighbour_id = device_ids[j]
            rssi_by_receiver[neighbour_id] = rssi
            overhearers[neighbour_id] = rssi

    def _airtime_s(self, payload_bytes: int, spreading_factor) -> float:
        key = (payload_bytes, spreading_factor)
        airtime = self._airtime_cache.get(key)
        if airtime is None:
            airtime = self.medium.airtime_s(payload_bytes, spreading_factor)
            self._airtime_cache[key] = airtime
        return airtime

    # ------------------------------------------------------------------ #
    # Uplink resolution
    # ------------------------------------------------------------------ #
    def _on_fast_completion(self, index: int) -> None:
        """Completion of a frame nobody heard: always a failed uplink.

        Inlined ``device.on_uplink_failed()`` plus the retry scheduling of
        the oracle's completion handler (the queue is never empty here — an
        unheard frame removes nothing — but the check is kept for parity).
        """
        device = self._devices[index]
        device.retransmission_count += 1
        self._stats[index].retransmissions += 1
        if (
            device.retransmission_count <= self._max_retrans[index]
            and self._queue_msgs[index]
            and not self._attempt_pending[index]
        ):
            retry_at = self._na_dicts[index].get(self._channels[index], 0.0)
            if retry_at < self._duration:
                self._attempt_pending[index] = True
                now = self.now
                heappush(
                    self._heap,
                    (
                        retry_at if retry_at > now else now,
                        ATTEMPT_PRIORITY,
                        self._seq,
                        _ATTEMPT,
                        index,
                    ),
                )
                self._seq += 1

    def _on_uplink_complete(self, payload) -> None:
        index, packet, transmission, overhearers = payload
        device = self._devices[index]
        now = self.now

        # The frame's overlap window is scanned once and shared by the
        # gateway reception pass and every overhearer's received-check.
        overlaps = None if transmission is None else self._bucket_overlaps(transmission)
        delivered_gateway = self._resolve_gateway_reception(transmission, overlaps)
        if delivered_gateway is not None:
            ack = self.server.process_uplink(packet, delivered_gateway, now)
            self.scenario.gateways[delivered_gateway].receive(packet)
            device.on_acknowledged(ack.acked_message_ids)
            if device.has_data():
                self._schedule_attempt(index, device.next_transmission_time)
        else:
            retry_allowed = device.on_uplink_failed()
            if retry_allowed and device.has_data():
                self._schedule_attempt(index, device.next_transmission_time)

        if self._uses_forwarding:
            self._resolve_overhearing(device, packet, transmission, overhearers, overlaps)

    def _resolve_completion_group(self, time: float, first_payload) -> None:
        """Relaxed-order slot batching: one pass over completions tied at ``time``.

        Synchronized fleets (many devices generating on the same period from
        the same start) complete whole waves of transmissions at the same
        instant.  This pass pops the maximal run of same-time completions
        whose participant sets (sender plus overhearers) are pairwise
        disjoint and resolves them together, with a *single*
        ``on_overhear_batch`` call across all members.

        Exactness: same-time groups are safe unconditionally.  Every event
        pushed while resolving carries ``time`` or later with attempt
        priority, so it pops after all same-time completions in both engines;
        handover frames registered mid-group start exactly at the members'
        shared end time and therefore never overlap any member's frame; and
        participant disjointness plus receiver-local decisions mean no
        member's decision reads state another member's resolution mutates.
        Gateway receptions run in original pop order, preserving the
        reception RNG stream draw-for-draw.
        """
        heap = self._heap
        device_ids = self._device_ids
        members = [first_payload]
        participants = set(first_payload[3])
        participants.add(device_ids[first_payload[0]])
        while heap and heap[0][0] == time and heap[0][3] == _COMPLETION:
            payload = heap[0][4]
            incoming = set(payload[3])
            incoming.add(device_ids[payload[0]])
            if incoming & participants:
                break
            heappop(heap)
            participants |= incoming
            members.append(payload)
        if len(members) == 1:
            self._on_uplink_complete(first_payload)
            return

        # Phase 1 — per member: shared overlap scan and received-filter for
        # its overhearers (reads only).
        scheme = self._scheme
        devices = self.scenario.devices
        topology = self.scenario.topology
        all_packets: List = []
        all_receivers: List[EndDevice] = []
        all_rssi: List[float] = []
        all_models: List = []
        member_slices: List[Tuple[int, int]] = []
        member_overlaps: List[Optional[List[Dict[str, float]]]] = []
        for index, packet, transmission, overhearers in members:
            begin = len(all_receivers)
            overlaps = None
            if transmission is not None:
                overlaps = self._bucket_overlaps(transmission)
                if overhearers:
                    model = topology.capacity_model_for(device_ids[index])
                    for neighbour_id, rssi in overhearers.items():
                        if self._received_with(overlaps, neighbour_id, rssi):
                            all_packets.append(packet)
                            all_receivers.append(devices[neighbour_id])
                            all_rssi.append(rssi)
                            all_models.append(model)
            member_slices.append((begin, len(all_receivers)))
            member_overlaps.append(overlaps)

        # Phase 2 — one batched forwarding-decision call for the whole group.
        decisions: List = []
        if all_receivers:
            decisions = scheme.on_overhear_batch(
                all_packets,
                all_receivers,
                all_rssi,
                all_models,
                [time] * len(all_receivers),
            )

        # Phase 3 — per member in pop order: gateway reception (identical
        # RNG discipline), then that member's handovers.
        for m, (begin, end) in enumerate(member_slices):
            index, packet, transmission, _ = members[m]
            device = self._devices[index]
            delivered_gateway = self._resolve_gateway_reception(
                transmission, member_overlaps[m]
            )
            if delivered_gateway is not None:
                ack = self.server.process_uplink(packet, delivered_gateway, time)
                self.scenario.gateways[delivered_gateway].receive(packet)
                device.on_acknowledged(ack.acked_message_ids)
                if device.has_data():
                    self._schedule_attempt(index, device.next_transmission_time)
            else:
                retry_allowed = device.on_uplink_failed()
                if retry_allowed and device.has_data():
                    self._schedule_attempt(index, device.next_transmission_time)
            for position in range(begin, end):
                decision = decisions[position]
                if decision.forward:
                    self._perform_handover(
                        all_receivers[position],
                        device,
                        decision.message_limit,
                        decision.copy,
                    )

    def _resolve_gateway_reception(
        self,
        transmission: Optional[Transmission],
        overlaps: Optional[List[Dict[str, float]]] = None,
    ) -> Optional[str]:
        """Replica of ``RadioMedium.resolve_gateway_reception`` over buckets.

        Identical candidate order (descending RSSI) and identical draw
        discipline: the link-quality draw happens only after the capture
        check passes, so the reception stream advances exactly as it does in
        the oracle.
        """
        if transmission is None:
            return None
        if overlaps is None:
            overlaps = self._bucket_overlaps(transmission)
        gateways = self.scenario.gateways
        candidates = [
            (rssi, receiver)
            for receiver, rssi in transmission.rssi_by_receiver.items()
            if receiver in gateways
        ]
        quality = self.medium.link_quality(transmission.spreading_factor)
        if len(candidates) > 1:
            candidates.sort(reverse=True)
        for rssi, gateway_id in candidates:
            if not self._received_with(overlaps, gateway_id, rssi):
                continue
            if quality.frame_received(rssi, self._reception_rng):
                return gateway_id
        return None

    # ------------------------------------------------------------------ #
    # Collision buckets
    # ------------------------------------------------------------------ #
    def _register(self, transmission: Transmission) -> None:
        key = (transmission.channel, int(transmission.spreading_factor))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = [[], 0]
            # No frame in this bucket lasts longer than a full-payload frame,
            # and resolutions happen at frame end: once an entry's end falls
            # this far behind the resolution clock it can never overlap a
            # current or future frame in the bucket.
            self._bucket_horizon[key] = self.medium.airtime_s(
                MAX_PHY_PAYLOAD_BYTES, transmission.spreading_factor
            )
        bucket[0].append(transmission)

    def _bucket_overlaps(self, transmission: Transmission) -> List[Dict[str, float]]:
        """RSSI maps of every registered frame overlapping ``transmission``.

        One scan per completed frame, shared by the gateway reception pass
        and all overhearer received-checks.  Frames in other buckets never
        overlap (different channel or SF), and bucket entries wholly before
        the live window are skipped via the monotone head pointer — neither
        can change any verdict.
        """
        key = (transmission.channel, int(transmission.spreading_factor))
        bucket = self._buckets[key]
        entries, head = bucket
        horizon = transmission.end_time - self._bucket_horizon[key]
        while head < len(entries) and entries[head].end_time <= horizon:
            head += 1
        if head > _BUCKET_COMPACT_THRESHOLD:
            del entries[:head]
            head = 0
        bucket[1] = head
        start = transmission.start_time
        end = transmission.end_time
        overlaps: List[Dict[str, float]] = []
        for i in range(head, len(entries)):
            other = entries[i]
            if (
                other is not transmission
                and other.start_time < end
                and start < other.end_time
            ):
                overlaps.append(other.rssi_by_receiver)
        return overlaps

    def _received_with(
        self, overlaps: List[Dict[str, float]], receiver: str, rssi: float
    ) -> bool:
        """``CollisionModel.is_received`` for one receiver over a shared scan."""
        if rssi == _NEG_INF:
            return False
        threshold = self._capture_threshold
        for other_rssi_map in overlaps:
            other_rssi = other_rssi_map.get(receiver)
            if other_rssi is None or other_rssi == _NEG_INF:
                continue
            if rssi - other_rssi < threshold:
                return False
        return True

    def _bucket_is_received(self, transmission: Transmission, receiver: str) -> bool:
        """Single-receiver convenience over :meth:`_bucket_overlaps`."""
        rssi = transmission.rssi_by_receiver.get(receiver)
        if rssi is None:
            return False
        return self._received_with(self._bucket_overlaps(transmission), receiver, rssi)

    # ------------------------------------------------------------------ #
    # Overhearing and handovers
    # ------------------------------------------------------------------ #
    def _resolve_overhearing(
        self,
        sender: EndDevice,
        packet,
        transmission: Optional[Transmission],
        overhearers: Dict[str, float],
        overlaps: Optional[List[Dict[str, float]]] = None,
    ) -> None:
        """Forwarding decisions + handovers for one completed transmission.

        Schemes that override ``on_overhear_batch`` get all surviving
        receivers in one call, then the handovers run in the same receiver
        order the scalar loop used.  Deciding first and handing over after is
        exact for receiver-local schemes: each receiver appears once per
        transmission, decisions read only that receiver's state plus the
        immutable packet snapshot, and no decision consumes RNG — so neither
        the verdicts nor the draw/push sequence can differ from the
        interleaved loop.  Schemes that keep the base-class hook take the
        scalar interleaved path unchanged.
        """
        if transmission is None or not overhearers:
            return
        if overlaps is None:
            overlaps = self._bucket_overlaps(transmission)
        now = self.now
        scheme = self._scheme
        devices = self.scenario.devices
        capacity_model = self.scenario.topology.capacity_model_for(sender.device_id)
        if not self._batch_decide:
            for neighbour_id, rssi in overhearers.items():
                if not self._received_with(overlaps, neighbour_id, rssi):
                    continue
                neighbour = devices[neighbour_id]
                decision = scheme.on_overhear(
                    neighbour, packet, rssi, capacity_model, now
                )
                if not decision.forward:
                    continue
                self._perform_handover(
                    neighbour, sender, decision.message_limit, decision.copy
                )
            return
        receivers: List[EndDevice] = []
        rssis: List[float] = []
        for neighbour_id, rssi in overhearers.items():
            if self._received_with(overlaps, neighbour_id, rssi):
                receivers.append(devices[neighbour_id])
                rssis.append(rssi)
        if not receivers:
            return
        count = len(receivers)
        decisions = scheme.on_overhear_batch(
            [packet] * count, receivers, rssis, [capacity_model] * count, [now] * count
        )
        for receiver, decision in zip(receivers, decisions):
            if decision.forward:
                self._perform_handover(
                    receiver, sender, decision.message_limit, decision.copy
                )

    def _perform_handover(
        self, giver: EndDevice, taker: EndDevice, limit: int, copy: bool
    ) -> None:
        now = self.now
        if not giver.can_transmit(now):
            return
        if not self.scenario.topology.in_contact(giver.device_id, taker.device_id, now):
            return
        messages = giver.transferable_messages(taker.device_id, limit, now=now)
        if not messages:
            return

        payload_bytes = PACKET_OVERHEAD_BYTES + sum(m.size_bytes for m in messages)
        airtime_s = self._airtime_s(payload_bytes, giver.spreading_factor)
        giver.record_handover_transmission(now, airtime_s)

        giver_index = self._index_of[giver.device_id]
        handover_rssi = {
            gateway_id: link.rssi_dbm
            for gateway_id, link in self._gateways_in_range(giver_index, now)
            if self.scenario.gateways[gateway_id].listens_on(giver.channel)
        }
        if handover_rssi:
            self._register(
                Transmission(
                    sender=giver.device_id,
                    start_time=now,
                    duration=airtime_s,
                    channel=giver.channel,
                    spreading_factor=giver.spreading_factor,
                    rssi_by_receiver=handover_rssi,
                )
            )

        if copy:
            transferred = [dataclass_replace(m) for m in messages]
        else:
            transferred = giver.release_messages(m.message_id for m in messages)
        accepted = taker.accept_handover(transferred, giver.device_id, now=now)
        self._handover_count += 1
        self._handed_over_messages += accepted
        self._schedule_attempt(
            self._index_of[taker.device_id], taker.next_transmission_time
        )

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def handover_count(self) -> int:
        """Number of device-to-device handover frames sent."""
        return self._handover_count

    @property
    def handed_over_messages(self) -> int:
        """Number of messages that changed carrier at least once via this engine."""
        return self._handed_over_messages
