"""LoRaWAN device classes, including the paper's two proposed variants.

A device class answers one operational question for the simulator — "is this
device's receiver open at time ``t``?" — and one energy question — "what
fraction of idle time does the radio spend in RX?".  The four classes:

* **Class A** — receiver open only during the two short windows (RX1 at +1 s,
  RX2 at +2 s) after the device's own uplink.
* **Class C** — receiver always open (listening to the downlink channel).
* **Modified Class C** (Sec. VI) — always open, but tuned to the *uplink data
  channel* so it overhears neighbouring devices; functionally identical for
  the scheduler, and the variant the evaluation uses.
* **Queue-based Class A** (Sec. VI, Eq. 11) — after each uplink the receive
  window stays open for a fraction γ_x(t) of the uplink interval, where γ
  grows with the ϕ-corrected backlog.  Overhearing therefore becomes a
  probabilistic opportunity proportional to γ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import queue_based_class_a_window_fraction

#: LoRaWAN Class-A receive windows relative to the end of the uplink (seconds).
RX1_DELAY_S = 1.0
RX2_DELAY_S = 2.0
RX_WINDOW_LENGTH_S = 0.5


class DeviceClass(ABC):
    """Receiver-availability policy of a device."""

    name: str = "base"

    @abstractmethod
    def listening_fraction(self, queue_length: int, max_queue: int, sink_metric_s: float) -> float:
        """Fraction of idle time the receiver is open (drives both overhearing and energy)."""

    def is_listening(
        self,
        now: float,
        last_uplink_end: float,
        queue_length: int,
        max_queue: int,
        sink_metric_s: float,
    ) -> bool:
        """Whether the receiver is open at ``now`` given the last uplink ended at ``last_uplink_end``."""
        fraction = self.listening_fraction(queue_length, max_queue, sink_metric_s)
        if fraction >= 1.0:
            return True
        if fraction <= 0.0:
            return self._in_class_a_windows(now, last_uplink_end)
        # Fractional listening: the receiver stays open for `fraction` of the
        # time right after each uplink, which is how Queue-based Class A sizes
        # its windows; before the first uplink nothing has been scheduled.
        if last_uplink_end < 0:
            return False
        return now - last_uplink_end <= fraction * self.reference_interval_s

    #: Interval the fractional window is scaled against (the uplink period Δt).
    reference_interval_s: float = 180.0

    @staticmethod
    def _in_class_a_windows(now: float, last_uplink_end: float) -> bool:
        if last_uplink_end < 0:
            return False
        offset = now - last_uplink_end
        in_rx1 = RX1_DELAY_S <= offset <= RX1_DELAY_S + RX_WINDOW_LENGTH_S
        in_rx2 = RX2_DELAY_S <= offset <= RX2_DELAY_S + RX_WINDOW_LENGTH_S
        return in_rx1 or in_rx2


@dataclass
class ClassADevice(DeviceClass):
    """Plain LoRaWAN Class A: only the RX1/RX2 windows after an uplink."""

    name: str = "class-a"

    def listening_fraction(self, queue_length: int, max_queue: int, sink_metric_s: float) -> float:
        return 0.0


@dataclass
class ClassCDevice(DeviceClass):
    """Plain LoRaWAN Class C: receiver always open on the downlink channel.

    Note that a *plain* Class-C device listens to the downlink channel, so it
    hears gateways but not neighbouring devices; the simulator treats it as
    always-listening for energy purposes but the routing layer only enables
    overhearing for :class:`ModifiedClassC` and :class:`QueueBasedClassA`.
    """

    name: str = "class-c"
    overhears_devices: bool = False

    def listening_fraction(self, queue_length: int, max_queue: int, sink_metric_s: float) -> float:
        return 1.0


@dataclass
class ModifiedClassC(DeviceClass):
    """The paper's Modified Class C: always listening on the uplink data channel."""

    name: str = "modified-class-c"
    overhears_devices: bool = True

    def listening_fraction(self, queue_length: int, max_queue: int, sink_metric_s: float) -> float:
        return 1.0


@dataclass
class QueueBasedClassA(DeviceClass):
    """The paper's Queue-based Class A: receive windows sized by backlog (Eq. 11)."""

    name: str = "queue-based-class-a"
    overhears_devices: bool = True
    rgq: RealTimeGatewayQuality = RealTimeGatewayQuality()
    reference_interval_s: float = 180.0

    def listening_fraction(self, queue_length: int, max_queue: int, sink_metric_s: float) -> float:
        if max_queue <= 0:
            return 0.0
        return queue_based_class_a_window_fraction(
            queue_length, max_queue, sink_metric_s, self.rgq
        )
