"""The application-layer FIFO data queue each device maintains (Sec. VII-A4).

Messages stay in the queue until a gateway acknowledges them or they are
handed over to another device.  The queue enforces an optional capacity (drop
from the tail when full, i.e. new data is lost, which is the conservative
choice for a telemetry workload) and refuses duplicates by message id.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.mac.frames import DataMessage


class DataQueue:
    """A FIFO queue of :class:`DataMessage` objects with optional capacity."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError(f"max_size must be positive or None, got {max_size}")
        self.max_size = max_size
        self._messages: "OrderedDict[int, DataMessage]" = OrderedDict()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: int) -> bool:
        return message_id in self._messages

    @property
    def is_full(self) -> bool:
        """True when the queue is at capacity."""
        return self.max_size is not None and len(self._messages) >= self.max_size

    def push(self, message: DataMessage) -> bool:
        """Append ``message``; returns False (and counts a drop) if full or duplicate."""
        if message.message_id in self._messages:
            return False
        if self.is_full:
            self.dropped += 1
            return False
        self._messages[message.message_id] = message
        return True

    def extend(self, messages: Iterable[DataMessage]) -> int:
        """Push several messages; returns how many were accepted."""
        return sum(1 for message in messages if self.push(message))

    def peek(self, count: int) -> List[DataMessage]:
        """The first ``count`` messages in FIFO order, without removing them."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        result: List[DataMessage] = []
        for message in self._messages.values():
            if len(result) >= count:
                break
            result.append(message)
        return result

    def peek_all(self) -> List[DataMessage]:
        """All queued messages in FIFO order, without removing them."""
        return list(self._messages.values())

    def remove(self, message_ids: Iterable[int]) -> List[DataMessage]:
        """Remove and return the messages whose ids are in ``message_ids``."""
        removed: List[DataMessage] = []
        for message_id in message_ids:
            message = self._messages.pop(message_id, None)
            if message is not None:
                removed.append(message)
        return removed

    def pop_front(self, count: int) -> List[DataMessage]:
        """Remove and return the first ``count`` messages in FIFO order."""
        front = self.peek(count)
        return self.remove(m.message_id for m in front)

    def clear(self) -> List[DataMessage]:
        """Remove and return every queued message."""
        messages = list(self._messages.values())
        self._messages.clear()
        return messages
