"""The application-layer data queue each device maintains (Sec. VII-A4).

Messages stay in the queue until a gateway acknowledges them or they are
handed over to another device.  What happens when the buffer fills — and in
which order messages are served for uplinks and handovers — is a
:class:`BufferPolicy` strategy, a standard DTN evaluation axis (cf. the
queueing-policy studies around epidemic/spray-and-wait/PRoPHET):

* :class:`DropNewPolicy` (``drop-new``) — tail drop: a push into a full
  queue rejects the *new* message.  The default, bit-identical to the
  pre-policy FIFO queue (new data is lost, the conservative choice for a
  telemetry workload).
* :class:`DropOldestPolicy` (``drop-oldest``) — head drop: a full queue
  evicts its head (earliest arrival) to admit the new message.
* :class:`TTLExpiryPolicy` (``ttl-expiry``) — tail drop plus lazy expiry of
  messages older than ``ttl_s`` whenever the queue is touched with a
  current time.
* :class:`PriorityAgePolicy` (``priority-age``) — serves the oldest-created
  messages first (after handovers, arrival order no longer matches creation
  order) and, when full, evicts the oldest-created message.

Duplicate message ids are always refused (``rejected_duplicate``); capacity
losses and TTL expiries are counted separately (``dropped_full``,
``expired_ttl``) so buffer sweeps can tell loss from deduplication.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.mac.frames import DataMessage


class BufferPolicy(ABC):
    """Strategy consulted by :class:`DataQueue` on push and on selection."""

    #: Registry name; subclasses override.
    name: str = "base"

    #: True when selection order is plain FIFO (arrival order) — lets the
    #: queue keep the allocation-free fast path of the original FIFO queue.
    fifo_order: bool = True

    @abstractmethod
    def make_room(self, messages: "OrderedDict[int, DataMessage]") -> bool:
        """Evict one message from a full queue to admit a new one.

        Returns True when a slot was freed (the eviction is counted as a
        capacity drop by the queue); False rejects the incoming message.
        """

    def expire(
        self, messages: "OrderedDict[int, DataMessage]", now: Optional[float]
    ) -> int:
        """Remove expired messages given the current time; returns the count."""
        del messages, now
        return 0

    def selection_order(
        self, messages: "OrderedDict[int, DataMessage]"
    ) -> List[DataMessage]:
        """Messages in the order they should be served (non-FIFO policies)."""
        return list(messages.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class DropNewPolicy(BufferPolicy):
    """Tail drop: reject the incoming message when full (the default)."""

    name = "drop-new"

    def make_room(self, messages: "OrderedDict[int, DataMessage]") -> bool:
        del messages
        return False


class DropOldestPolicy(BufferPolicy):
    """Head drop: evict the earliest-arrived message to admit the new one."""

    name = "drop-oldest"

    def make_room(self, messages: "OrderedDict[int, DataMessage]") -> bool:
        if not messages:
            return False
        messages.popitem(last=False)
        return True


class TTLExpiryPolicy(BufferPolicy):
    """Tail drop plus lazy expiry of messages older than ``ttl_s``."""

    name = "ttl-expiry"

    def __init__(self, ttl_s: float) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.ttl_s = ttl_s

    def make_room(self, messages: "OrderedDict[int, DataMessage]") -> bool:
        del messages
        return False

    def expire(
        self, messages: "OrderedDict[int, DataMessage]", now: Optional[float]
    ) -> int:
        if now is None:
            return 0
        stale = [
            message_id
            for message_id, message in messages.items()
            if now - message.created_at > self.ttl_s
        ]
        for message_id in stale:
            del messages[message_id]
        return len(stale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TTLExpiryPolicy(ttl_s={self.ttl_s})"


class PriorityAgePolicy(BufferPolicy):
    """Serve oldest-created first; evict the oldest-created when full."""

    name = "priority-age"
    fifo_order = False

    @staticmethod
    def _age_key(message: DataMessage):
        # message_id is an insertion-ordered counter: a deterministic
        # tiebreak for messages created in the same instant.
        return (message.created_at, message.message_id)

    def make_room(self, messages: "OrderedDict[int, DataMessage]") -> bool:
        if not messages:
            return False
        oldest = min(messages.values(), key=self._age_key)
        del messages[oldest.message_id]
        return True

    def selection_order(
        self, messages: "OrderedDict[int, DataMessage]"
    ) -> List[DataMessage]:
        return sorted(messages.values(), key=self._age_key)


#: Buffer-policy factories by registry name.  ``ttl_s`` is only consumed by
#: ``ttl-expiry``; the other factories ignore it.
BUFFER_POLICY_FACTORIES = {
    "drop-new": lambda ttl_s: DropNewPolicy(),
    "drop-oldest": lambda ttl_s: DropOldestPolicy(),
    "ttl-expiry": lambda ttl_s: TTLExpiryPolicy(ttl_s),
    "priority-age": lambda ttl_s: PriorityAgePolicy(),
}


def make_buffer_policy(name: str, ttl_s: float = 0.0) -> BufferPolicy:
    """Instantiate a buffer policy by its registry name."""
    try:
        factory = BUFFER_POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown buffer policy {name!r}; available: {sorted(BUFFER_POLICY_FACTORIES)}"
        ) from None
    return factory(ttl_s)


class DataQueue:
    """A queue of :class:`DataMessage` objects with capacity and a policy.

    ``now`` parameters are optional everywhere: policies that do not track
    time ignore them, and the TTL policy simply skips expiry when no time is
    supplied (e.g. from time-agnostic unit tests).
    """

    def __init__(
        self, max_size: Optional[int] = None, policy: Optional[BufferPolicy] = None
    ) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError(f"max_size must be positive or None, got {max_size}")
        self.max_size = max_size
        self.policy = policy if policy is not None else DropNewPolicy()
        self._messages: "OrderedDict[int, DataMessage]" = OrderedDict()
        #: Messages lost to capacity: rejected pushes under tail-drop
        #: policies, evictions under drop-oldest/priority-age.
        self.dropped_full = 0
        #: Pushes refused because the message id was already queued (not a
        #: loss — the data is still carried).
        self.rejected_duplicate = 0
        #: Messages removed by TTL expiry.
        self.expired_ttl = 0

    @property
    def dropped(self) -> int:
        """Backward-compatible alias for :attr:`dropped_full`."""
        return self.dropped_full

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: int) -> bool:
        return message_id in self._messages

    @property
    def is_full(self) -> bool:
        """True when the queue is at capacity."""
        return self.max_size is not None and len(self._messages) >= self.max_size

    def _expire(self, now: Optional[float]) -> None:
        if now is not None:
            self.expired_ttl += self.policy.expire(self._messages, now)

    def expire(self, now: Optional[float]) -> int:
        """Run the policy's TTL expiry at ``now``; returns how many were removed.

        A no-op (returning 0) for policies without a TTL and when ``now`` is
        None; the engine calls this before transmission-attempt gates so a
        queue holding only stale messages reads as empty.
        """
        before = self.expired_ttl
        self._expire(now)
        return self.expired_ttl - before

    def push(self, message: DataMessage, now: Optional[float] = None) -> bool:
        """Append ``message``; returns False when it was not stored.

        A duplicate id counts as :attr:`rejected_duplicate`; a capacity
        rejection (or the eviction an admitting policy performs) counts as
        :attr:`dropped_full` — exactly one message is lost per overflowing
        push either way.
        """
        self._expire(now)
        if message.message_id in self._messages:
            self.rejected_duplicate += 1
            return False
        if self.is_full:
            self.dropped_full += 1
            if not self.policy.make_room(self._messages):
                return False
        self._messages[message.message_id] = message
        return True

    def extend(self, messages: Iterable[DataMessage], now: Optional[float] = None) -> int:
        """Push several messages; returns how many were accepted."""
        return sum(1 for message in messages if self.push(message, now))

    def peek(self, count: int, now: Optional[float] = None) -> List[DataMessage]:
        """The first ``count`` messages in service order, without removing them."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._expire(now)
        result: List[DataMessage] = []
        source = (
            self._messages.values()
            if self.policy.fifo_order
            else self.policy.selection_order(self._messages)
        )
        for message in source:
            if len(result) >= count:
                break
            result.append(message)
        return result

    def peek_all(self, now: Optional[float] = None) -> List[DataMessage]:
        """All queued messages in service order, without removing them."""
        self._expire(now)
        if self.policy.fifo_order:
            return list(self._messages.values())
        return self.policy.selection_order(self._messages)

    def remove(self, message_ids: Iterable[int]) -> List[DataMessage]:
        """Remove and return the messages whose ids are in ``message_ids``."""
        removed: List[DataMessage] = []
        for message_id in message_ids:
            message = self._messages.pop(message_id, None)
            if message is not None:
                removed.append(message)
        return removed

    def pop_front(self, count: int, now: Optional[float] = None) -> List[DataMessage]:
        """Remove and return the first ``count`` messages in service order."""
        front = self.peek(count, now)
        return self.remove(m.message_id for m in front)

    def clear(self) -> List[DataMessage]:
        """Remove and return every queued message."""
        messages = list(self._messages.values())
        self._messages.clear()
        return messages
