"""The LoRaWAN end-device MAC state.

An :class:`EndDevice` owns everything a single bus-mounted LoRa device needs:
its FIFO data queue, the duty-cycle regulator, the RCA-ETX estimator state,
retransmission bookkeeping, the device class (listening policy) and an energy
model.  It is deliberately *passive*: the simulation engine decides when
messages are generated, when uplinks happen and what the radio environment
does; the device only keeps protocol state consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.rca_etx import RCAETXState
from repro.mac.device_classes import DeviceClass, ModifiedClassC
from repro.mac.duty_cycle import DutyCycleRegulator
from repro.mac.frames import (
    DEFAULT_MAX_MESSAGES_PER_PACKET,
    DEFAULT_MESSAGE_SIZE_BYTES,
    DataMessage,
    UplinkPacket,
    bundle_messages,
)
from repro.mac.queueing import BufferPolicy, DataQueue
from repro.phy.constants import SpreadingFactor
from repro.phy.energy import EnergyModel, RadioState


@dataclass(frozen=True)
class DeviceConfig:
    """Per-device protocol parameters (paper defaults from Sec. VII-A)."""

    message_interval_s: float = 180.0
    message_size_bytes: int = DEFAULT_MESSAGE_SIZE_BYTES
    max_messages_per_packet: int = DEFAULT_MAX_MESSAGES_PER_PACKET
    max_retransmissions: int = 8
    max_queue_size: int = 64
    duty_cycle: float = 0.01
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.message_interval_s <= 0:
            raise ValueError("message_interval_s must be positive")
        if self.message_size_bytes <= 0:
            raise ValueError("message_size_bytes must be positive")
        if self.max_messages_per_packet <= 0:
            raise ValueError("max_messages_per_packet must be positive")
        if self.max_retransmissions < 0:
            raise ValueError("max_retransmissions must be non-negative")
        if self.max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive")
        if not 0 < self.duty_cycle <= 1:
            raise ValueError("duty_cycle must be in (0, 1]")


@dataclass
class DeviceStats:
    """Counters reported per device at the end of a run."""

    messages_generated: int = 0
    uplink_transmissions: int = 0
    handover_transmissions: int = 0
    retransmissions: int = 0
    messages_acked: int = 0
    messages_handed_over: int = 0
    messages_received_from_peers: int = 0

    @property
    def total_transmissions(self) -> int:
        """All frames sent (uplinks + device-to-device handovers)."""
        return self.uplink_transmissions + self.handover_transmissions


class EndDevice:
    """MAC/protocol state of one LoRa end-device."""

    def __init__(
        self,
        device_id: str,
        config: DeviceConfig = DeviceConfig(),
        device_class: Optional[DeviceClass] = None,
        packet_bits: Optional[float] = None,
        spreading_factor: SpreadingFactor = SpreadingFactor.SF7,
        channel: int = 0,
        queue_policy: Optional[BufferPolicy] = None,
        queue_capacity: Optional[int] = None,
    ) -> None:
        if not device_id:
            raise ValueError("device_id must be a non-empty string")
        if channel < 0:
            raise ValueError(f"channel must be non-negative, got {channel}")
        self.device_id = device_id
        self.config = config
        self.device_class = device_class or ModifiedClassC()
        #: The radio assignment this device transmits with (fixed at
        #: commissioning time, like real sensor firmware).
        self.spreading_factor = spreading_factor
        self.channel = channel
        # The buffer: capacity defaults to the device config's queue size;
        # ``queue_capacity``/``queue_policy`` carry the scenario's routing
        # buffer section when it overrides those defaults.
        self.queue = DataQueue(
            max_size=queue_capacity if queue_capacity is not None else config.max_queue_size,
            policy=queue_policy,
        )
        self.duty_cycle = DutyCycleRegulator(config.duty_cycle)
        typical_payload_bits = 8.0 * (
            config.message_size_bytes * config.max_messages_per_packet + 13
        )
        self.rca_etx = RCAETXState(
            alpha=config.ewma_alpha,
            packet_bits=packet_bits if packet_bits is not None else typical_payload_bits,
        )
        self.energy = EnergyModel()
        self.stats = DeviceStats()
        self.retransmission_count = 0
        self.last_uplink_end: float = -1.0

    # ------------------------------------------------------------------ #
    # Data generation and queue management
    # ------------------------------------------------------------------ #
    def generate_message(self, now: float) -> DataMessage:
        """Create a new application message, enqueue it and reset retransmissions.

        The evaluation resets the retransmission counter whenever a new packet
        is generated (Sec. VII-A5), which this method mirrors.
        """
        message = DataMessage(
            source=self.device_id,
            created_at=now,
            size_bytes=self.config.message_size_bytes,
            spreading_factor=self.spreading_factor,
            channel=self.channel,
        )
        self.queue.push(message, now=now)
        self.stats.messages_generated += 1
        self.retransmission_count = 0
        return message

    def queue_length(self) -> int:
        """Number of messages currently buffered."""
        return len(self.queue)

    def has_data(self) -> bool:
        """True when there is something to send."""
        return len(self.queue) > 0

    # ------------------------------------------------------------------ #
    # Uplink construction and outcomes
    # ------------------------------------------------------------------ #
    def can_transmit(self, now: float) -> bool:
        """True when the duty cycle allows a transmission on this device's channel."""
        return self.duty_cycle.can_transmit(now, self.channel)

    def transmission_wait(self, now: float) -> float:
        """Seconds until the duty cycle next allows a transmission."""
        return self.duty_cycle.wait_time(now, self.channel)

    @property
    def next_transmission_time(self) -> float:
        """Earliest time the duty cycle allows this device's next transmission."""
        return self.duty_cycle.next_allowed_time_on(self.channel)

    def build_uplink(self, now: float, include_queue_length: bool) -> UplinkPacket:
        """Bundle queued messages into an uplink with piggybacked metrics.

        The messages stay in the queue until a gateway acknowledges them
        (at-least-once delivery); ``include_queue_length`` adds the ROBC field.
        """
        if not self.has_data():
            raise ValueError(f"device {self.device_id} has no data to send")
        messages = bundle_messages(
            self.queue.peek(self.config.max_messages_per_packet, now=now),
            self.config.max_messages_per_packet,
        )
        return UplinkPacket(
            sender=self.device_id,
            sent_at=now,
            messages=tuple(messages),
            rca_etx_s=self.rca_etx.sink_metric(),
            queue_length=self.queue_length() if include_queue_length else None,
            spreading_factor=self.spreading_factor,
            channel=self.channel,
        )

    def record_uplink(self, now: float, airtime_s: float) -> None:
        """Account duty cycle, energy and statistics for an uplink transmission."""
        self.duty_cycle.record_transmission(now, airtime_s, self.channel)
        self.energy.accumulate(RadioState.TX, airtime_s)
        self.stats.uplink_transmissions += 1
        self.last_uplink_end = now + airtime_s

    def record_handover_transmission(self, now: float, airtime_s: float) -> None:
        """Account for a device-to-device handover frame this device sent."""
        self.duty_cycle.record_transmission(now, airtime_s, self.channel)
        self.energy.accumulate(RadioState.TX, airtime_s)
        self.stats.handover_transmissions += 1
        self.last_uplink_end = now + airtime_s

    def on_acknowledged(self, message_ids: Iterable[int]) -> List[DataMessage]:
        """Remove acknowledged messages from the queue and reset retransmissions."""
        removed = self.queue.remove(message_ids)
        if removed:
            self.stats.messages_acked += len(removed)
            self.retransmission_count = 0
        return removed

    def on_uplink_failed(self) -> bool:
        """Record a failed uplink; returns True when another retry is allowed."""
        self.retransmission_count += 1
        self.stats.retransmissions += 1
        return self.retransmission_count <= self.config.max_retransmissions

    # ------------------------------------------------------------------ #
    # Device-to-device handovers
    # ------------------------------------------------------------------ #
    def transferable_messages(
        self, destination: str, limit: int, now: Optional[float] = None
    ) -> List[DataMessage]:
        """Messages eligible for handover to ``destination`` (loop guard applied).

        Messages that were themselves received *from* ``destination`` are
        excluded so data never ping-pongs between two devices (Sec. V-B2).
        Selection follows the buffer policy's service order (FIFO by default);
        ``now`` lets TTL policies expire stale messages before selection.
        """
        if limit <= 0:
            return []
        eligible: List[DataMessage] = []
        for message in self.queue.peek_all(now=now):
            if message.received_from == destination:
                continue
            eligible.append(message)
            if len(eligible) >= limit:
                break
        return eligible

    def release_messages(self, message_ids: Iterable[int]) -> List[DataMessage]:
        """Remove handed-over messages from the local queue."""
        removed = self.queue.remove(message_ids)
        self.stats.messages_handed_over += len(removed)
        return removed

    def accept_handover(
        self, messages: Iterable[DataMessage], sender: str, now: Optional[float] = None
    ) -> int:
        """Accept messages handed over by ``sender``; returns how many were stored."""
        accepted = 0
        for message in messages:
            message.handover(self.device_id)
            if self.queue.push(message, now=now):
                accepted += 1
        self.stats.messages_received_from_peers += accepted
        return accepted

    # ------------------------------------------------------------------ #
    # Listening / energy
    # ------------------------------------------------------------------ #
    def is_listening(self, now: float) -> bool:
        """True when the receiver is open and could overhear a neighbour frame."""
        overhears = getattr(self.device_class, "overhears_devices", False)
        if not overhears:
            return False
        return self.device_class.is_listening(
            now,
            self.last_uplink_end,
            self.queue_length(),
            self.config.max_queue_size,
            self.rca_etx.sink_metric(),
        )

    def listening_fraction(self) -> float:
        """Current fraction of idle time spent in RX (energy accounting)."""
        return self.device_class.listening_fraction(
            self.queue_length(),
            self.config.max_queue_size,
            self.rca_etx.sink_metric(),
        )

    def account_idle_period(self, duration_s: float) -> None:
        """Split an idle period between RX and sleep according to the listening fraction."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        fraction = self.listening_fraction()
        self.energy.accumulate(RadioState.RX, duration_s * fraction)
        self.energy.accumulate(RadioState.SLEEP, duration_s * (1.0 - fraction))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EndDevice({self.device_id!r}, queue={self.queue_length()}, "
            f"class={self.device_class.name})"
        )
