"""LoRaWAN MAC layer.

Implements the pieces of the LoRaWAN specification the evaluation depends on:
frame/packet structures with the paper's piggybacked metric fields
(:mod:`repro.mac.frames`), the per-band duty-cycle regulator
(:mod:`repro.mac.duty_cycle`), the FIFO application-layer data queue
(:mod:`repro.mac.queueing`), the device classes including the paper's
Modified Class-C and Queue-based Class-A (:mod:`repro.mac.device_classes`),
the end-device MAC state (:mod:`repro.mac.device`), gateways
(:mod:`repro.mac.gateway`) and the network server that deduplicates and
acknowledges uplinks (:mod:`repro.mac.network_server`).
"""

from repro.mac.device import DeviceConfig, DeviceStats, EndDevice
from repro.mac.device_classes import (
    ClassADevice,
    ClassCDevice,
    DeviceClass,
    ModifiedClassC,
    QueueBasedClassA,
)
from repro.mac.duty_cycle import DutyCycleRegulator
from repro.mac.frames import Acknowledgement, DataMessage, UplinkPacket
from repro.mac.gateway import Gateway
from repro.mac.network_server import DeliveryRecord, NetworkServer
from repro.mac.queueing import DataQueue

__all__ = [
    "DeviceConfig",
    "DeviceStats",
    "EndDevice",
    "ClassADevice",
    "ClassCDevice",
    "DeviceClass",
    "ModifiedClassC",
    "QueueBasedClassA",
    "DutyCycleRegulator",
    "Acknowledgement",
    "DataMessage",
    "UplinkPacket",
    "Gateway",
    "DeliveryRecord",
    "NetworkServer",
    "DataQueue",
]
