"""LoRaWAN gateways.

Gateways are simple in LoRaWAN: they demodulate every frame they can hear and
forward it to the network server over a backhaul assumed instantaneous (the
paper makes the same assumption for acknowledgements, Sec. VII-C).  The class
therefore only tracks reception statistics; reception decisions themselves are
made by the PHY/collision layer in the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.mobility.geometry import Point
from repro.mac.frames import UplinkPacket


@dataclass
class Gateway:
    """A static LoRaWAN gateway at a fixed position.

    ``channels`` restricts which uplink channels the gateway demodulates;
    ``None`` (the default, and the realistic setting — SX1301-class gateway
    concentrators listen on all plan channels and all spreading factors at
    once) means every channel.
    """

    gateway_id: str
    position: Point
    channels: Optional[Tuple[int, ...]] = None
    frames_received: int = 0
    messages_received: int = 0
    frames_by_device: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.gateway_id:
            raise ValueError("gateway_id must be a non-empty string")
        if self.channels is not None and any(c < 0 for c in self.channels):
            raise ValueError("gateway channels must be non-negative")

    def listens_on(self, channel: int) -> bool:
        """True when the gateway demodulates uplinks on ``channel``."""
        return self.channels is None or channel in self.channels

    def receive(self, packet: UplinkPacket) -> None:
        """Record the reception of an uplink frame."""
        self.frames_received += 1
        self.messages_received += len(packet)
        self.frames_by_device[packet.sender] = self.frames_by_device.get(packet.sender, 0) + 1

    @property
    def distinct_devices_heard(self) -> int:
        """Number of different devices this gateway has heard from."""
        return len(self.frames_by_device)
