"""The LoRaWAN network server.

All gateways forward the frames they decode to a single central server over
Ethernet (Sec. VII-A4).  The server deduplicates messages (a frame may be
heard by several gateways, and a message may be retransmitted or arrive via a
different carrier after a handover), records delivery metadata used by the
evaluation metrics and issues acknowledgements naming the message ids it
accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mac.frames import Acknowledgement, UplinkPacket


@dataclass(frozen=True)
class DeliveryRecord:
    """Everything the metrics need about one delivered message."""

    message_id: int
    source: str
    carrier: str
    gateway_id: str
    created_at: float
    delivered_at: float
    hops: int

    @property
    def end_to_end_delay(self) -> float:
        """The paper's δt(x) = t_g(x) − t_d(x)."""
        return self.delivered_at - self.created_at

    @property
    def delivery_hop_count(self) -> int:
        """Hop count in Fig. 12's convention (direct delivery counts as 1)."""
        return self.hops + 1


class NetworkServer:
    """Collects uplinks from every gateway, deduplicates and acknowledges."""

    def __init__(self) -> None:
        self._deliveries: Dict[int, DeliveryRecord] = {}
        self.duplicate_messages = 0
        self.frames_processed = 0

    def process_uplink(
        self, packet: UplinkPacket, gateway_id: str, now: float
    ) -> Acknowledgement:
        """Register a decoded uplink frame and return the acknowledgement.

        Every message id in the frame is acknowledged — including duplicates —
        because the sending device needs to clear its queue either way; only
        first deliveries count towards throughput.
        """
        if now < 0:
            raise ValueError("now must be non-negative")
        self.frames_processed += 1
        acked: List[int] = []
        for message in packet.messages:
            acked.append(message.message_id)
            if message.message_id in self._deliveries:
                self.duplicate_messages += 1
                continue
            self._deliveries[message.message_id] = DeliveryRecord(
                message_id=message.message_id,
                source=message.source,
                carrier=packet.sender,
                gateway_id=gateway_id,
                created_at=message.created_at,
                delivered_at=now,
                hops=message.hops,
            )
        return Acknowledgement(
            gateway_id=gateway_id,
            device_id=packet.sender,
            acked_message_ids=tuple(acked),
            sent_at=now,
        )

    # ------------------------------------------------------------------ #
    # Metrics access
    # ------------------------------------------------------------------ #
    @property
    def delivered_count(self) -> int:
        """Number of distinct messages delivered."""
        return len(self._deliveries)

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        """All delivery records (unordered)."""
        return list(self._deliveries.values())

    def is_delivered(self, message_id: int) -> bool:
        """True when the message has reached the server."""
        return message_id in self._deliveries

    def delivery(self, message_id: int) -> Optional[DeliveryRecord]:
        """The delivery record for ``message_id`` (None if not delivered)."""
        return self._deliveries.get(message_id)

    def delays(self) -> List[float]:
        """End-to-end delays of all delivered messages."""
        return [record.end_to_end_delay for record in self._deliveries.values()]

    def hop_counts(self) -> List[int]:
        """Delivery hop counts of all delivered messages."""
        return [record.delivery_hop_count for record in self._deliveries.values()]

    def delivery_times(self) -> List[Tuple[float, int]]:
        """(delivery time, 1) pairs, convenient for time-series binning."""
        return [(record.delivered_at, 1) for record in self._deliveries.values()]
