"""Per-device, per-channel duty-cycle regulation (EU868 general channels: 1 %).

After transmitting a frame of airtime ``T`` the device must stay silent for
``T · (1/duty − 1)`` on the channel it used.  The regulator tracks the
earliest time a new transmission may start *per channel* — a device hopping
between channels owes off-time only on the channel it just occupied — and,
for diagnostics, the cumulative airtime used.  Single-channel devices (the
paper's setting) see exactly the historical shared-off-time behaviour.
"""

from __future__ import annotations

from typing import Dict

from repro.phy.constants import EU868_DUTY_CYCLE


class DutyCycleRegulator:
    """Enforces the minimum off-time after each transmission, per channel."""

    def __init__(self, duty_cycle: float = EU868_DUTY_CYCLE) -> None:
        if not 0 < duty_cycle <= 1:
            raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        self.duty_cycle = duty_cycle
        self._next_allowed_by_channel: Dict[int, float] = {}
        self._total_airtime_s = 0.0
        self._transmissions = 0

    @property
    def next_allowed_time(self) -> float:
        """Earliest time the next transmission may start on the busiest channel.

        Devices in this simulator stay on one channel, so "busiest" and "the
        device's channel" coincide; the property keeps the historical
        single-channel reading.
        """
        if not self._next_allowed_by_channel:
            return 0.0
        return max(self._next_allowed_by_channel.values())

    def next_allowed_time_on(self, channel: int) -> float:
        """Earliest time the next transmission may start on ``channel``."""
        return self._next_allowed_by_channel.get(channel, 0.0)

    @property
    def total_airtime_s(self) -> float:
        """Cumulative time on air so far (all channels)."""
        return self._total_airtime_s

    @property
    def transmission_count(self) -> int:
        """Number of transmissions recorded."""
        return self._transmissions

    def can_transmit(self, now: float, channel: int = 0) -> bool:
        """True when a transmission may start at ``now`` on ``channel``."""
        return now >= self.next_allowed_time_on(channel)

    def wait_time(self, now: float, channel: int = 0) -> float:
        """Seconds until the next transmission is allowed (0 when allowed now)."""
        return max(self.next_allowed_time_on(channel) - now, 0.0)

    def record_transmission(
        self, now: float, airtime_s: float, channel: int = 0
    ) -> float:
        """Account for a transmission starting at ``now``; returns the next allowed time.

        Raises
        ------
        ValueError
            If the transmission starts before the channel's off-time expired
            or has a non-positive airtime.
        """
        if airtime_s <= 0:
            raise ValueError(f"airtime must be positive, got {airtime_s}")
        if not self.can_transmit(now, channel):
            raise ValueError(
                f"transmission at {now:.3f}s violates duty cycle on channel "
                f"{channel}; next allowed at {self.next_allowed_time_on(channel):.3f}s"
            )
        self._total_airtime_s += airtime_s
        self._transmissions += 1
        off_time = airtime_s * (1.0 / self.duty_cycle - 1.0)
        self._next_allowed_by_channel[channel] = now + airtime_s + off_time
        return self._next_allowed_by_channel[channel]

    def utilisation(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` spent transmitting (diagnostic)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self._total_airtime_s / horizon_s
