"""Per-device duty-cycle regulation (EU868 general channels: 1 %).

After transmitting a frame of airtime ``T`` the device must stay silent for
``T · (1/duty − 1)`` on that band.  The regulator tracks the earliest time a
new transmission may start and, for diagnostics, the cumulative airtime used.
"""

from __future__ import annotations

from repro.phy.constants import EU868_DUTY_CYCLE


class DutyCycleRegulator:
    """Enforces the minimum off-time after each transmission."""

    def __init__(self, duty_cycle: float = EU868_DUTY_CYCLE) -> None:
        if not 0 < duty_cycle <= 1:
            raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        self.duty_cycle = duty_cycle
        self._next_allowed_time = 0.0
        self._total_airtime_s = 0.0
        self._transmissions = 0

    @property
    def next_allowed_time(self) -> float:
        """Earliest simulation time at which the next transmission may start."""
        return self._next_allowed_time

    @property
    def total_airtime_s(self) -> float:
        """Cumulative time on air so far."""
        return self._total_airtime_s

    @property
    def transmission_count(self) -> int:
        """Number of transmissions recorded."""
        return self._transmissions

    def can_transmit(self, now: float) -> bool:
        """True when a transmission may start at ``now``."""
        return now >= self._next_allowed_time

    def wait_time(self, now: float) -> float:
        """Seconds until the next transmission is allowed (0 when allowed now)."""
        return max(self._next_allowed_time - now, 0.0)

    def record_transmission(self, now: float, airtime_s: float) -> float:
        """Account for a transmission starting at ``now``; returns the next allowed time.

        Raises
        ------
        ValueError
            If the transmission starts before the off-time expired or has a
            non-positive airtime.
        """
        if airtime_s <= 0:
            raise ValueError(f"airtime must be positive, got {airtime_s}")
        if not self.can_transmit(now):
            raise ValueError(
                f"transmission at {now:.3f}s violates duty cycle; "
                f"next allowed at {self._next_allowed_time:.3f}s"
            )
        self._total_airtime_s += airtime_s
        self._transmissions += 1
        off_time = airtime_s * (1.0 / self.duty_cycle - 1.0)
        self._next_allowed_time = now + airtime_s + off_time
        return self._next_allowed_time

    def utilisation(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` spent transmitting (diagnostic)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self._total_airtime_s / horizon_s
