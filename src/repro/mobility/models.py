"""Pluggable mobility models: one registry, four trace generators.

Mirrors the radio subsystem's shape: a scenario names its mobility model in a
frozen :class:`~repro.mobility.config.MobilityConfig`, and the experiment
layer asks this registry to build the traces.  Every model answers the same
question — *which nodes exist, and where is each one at every time?* — by
returning a :class:`MobilityBuild`: a bounding box (the service area the
gateway grid is laid over) plus one :class:`MobilityTrace` per node in a
deterministic id order.

The ``london-bus`` model reproduces the pre-refactor inline generation of
``experiments/scenario.py`` *bit-identically* (same random-stream
consumption, same node ids, same trace points); the golden fingerprints in
``tests/experiments/test_mobility_equivalence.py`` and
``tests/mobility/test_london_golden.py`` pin this.
"""

from __future__ import annotations

import abc
import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Type, Union

import numpy as np

from repro.mobility.config import MOBILITY_MODELS, MobilityConfig
from repro.mobility.generators import RandomWaypointMobility
from repro.mobility.geometry import BoundingBox, Point
from repro.mobility.london import LondonBusNetworkConfig, LondonBusNetworkGenerator
from repro.mobility.route import build_trip_trace
from repro.mobility.trace import MobilityTrace, TracePoint


@dataclass(frozen=True)
class MobilitySpec:
    """Everything a model may draw on to build its traces.

    ``network`` is the scenario's bus-network configuration; the synthetic
    non-bus models reuse its service area and fleet size so that swapping the
    model keeps spatial densities comparable.
    """

    mobility: MobilityConfig
    network: LondonBusNetworkConfig
    duration_s: float

    def fleet_size(self) -> int:
        """Node count for the synthetic models (explicit, or bus-fleet sized)."""
        if self.mobility.num_nodes > 0:
            return self.mobility.num_nodes
        return self.network.num_routes * self.network.trips_per_route

    def service_area(self) -> BoundingBox:
        """The square service area implied by the bus-network configuration."""
        return BoundingBox.from_area_km2(self.network.area_km2)


@dataclass(frozen=True)
class MobilityBuild:
    """What a mobility model hands the scenario builder."""

    bounding_box: BoundingBox
    traces: Dict[str, MobilityTrace]


class MobilityModel(abc.ABC):
    """One way of generating the node traces of a scenario."""

    #: Registry name; must appear in :data:`repro.mobility.config.MOBILITY_MODELS`.
    name: str = ""

    @abc.abstractmethod
    def build(self, spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
        """Generate the traces for ``spec`` using ``rng`` (and nothing else)."""


class LondonBusModel(MobilityModel):
    """The paper's synthetic London bus network (the default model)."""

    name = "london-bus"

    def build(self, spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
        generator = LondonBusNetworkGenerator(spec.network, rng)
        timetable = generator.generate()
        traces: Dict[str, MobilityTrace] = {}
        for index, trip in enumerate(timetable.trips):
            node_id = f"bus-{index:04d}"
            traces[node_id] = MobilityTrace(
                points=build_trip_trace(trip).points, node_id=node_id
            )
        return MobilityBuild(bounding_box=generator.bounding_box, traces=traces)


class RandomWaypointModel(MobilityModel):
    """Classic random waypoint over the scenario's service area."""

    name = "random-waypoint"

    def build(self, spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
        box = spec.service_area()
        generator = RandomWaypointMobility(
            bounding_box=box,
            num_nodes=spec.fleet_size(),
            duration_s=spec.duration_s,
            min_speed_mps=spec.mobility.min_speed_mps,
            max_speed_mps=spec.mobility.max_speed_mps,
            pause_s=spec.mobility.pause_s,
        )
        traces = {trace.node_id: trace for trace in generator.traces(rng, prefix="rwp")}
        return MobilityBuild(bounding_box=box, traces=traces)


class GridManhattanModel(MobilityModel):
    """Movement constrained to a Manhattan street grid.

    Streets run every ``grid_spacing_m`` metres in both axes; each node
    starts at a uniform-random intersection and repeatedly drives to a
    uniform-random *adjacent* intersection at a uniform speed in the
    configured range, pausing ``pause_s`` at each corner.  The spacing is
    shrunk when the area is too small to hold two streets per axis, so every
    scenario gets a walkable grid.
    """

    name = "grid-manhattan"

    def build(self, spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
        box = spec.service_area()
        columns = max(int(box.width // spec.mobility.grid_spacing_m) + 1, 2)
        rows = max(int(box.height // spec.mobility.grid_spacing_m) + 1, 2)
        spacing_x = box.width / (columns - 1)
        spacing_y = box.height / (rows - 1)
        traces: Dict[str, MobilityTrace] = {}
        for index in range(spec.fleet_size()):
            node_id = f"manhattan-{index:04d}"
            traces[node_id] = self._single_trace(
                spec, rng, node_id, box, columns, rows, spacing_x, spacing_y
            )
        return MobilityBuild(bounding_box=box, traces=traces)

    def _single_trace(
        self,
        spec: MobilitySpec,
        rng: np.random.Generator,
        node_id: str,
        box: BoundingBox,
        columns: int,
        rows: int,
        spacing_x: float,
        spacing_y: float,
    ) -> MobilityTrace:
        def intersection(col: int, row: int) -> Point:
            return Point(box.min_x + col * spacing_x, box.min_y + row * spacing_y)

        col = int(rng.integers(0, columns))
        row = int(rng.integers(0, rows))
        time = 0.0
        points: List[TracePoint] = [TracePoint(time, intersection(col, row))]
        while time < spec.duration_s:
            moves = []
            if col > 0:
                moves.append((col - 1, row))
            if col < columns - 1:
                moves.append((col + 1, row))
            if row > 0:
                moves.append((col, row - 1))
            if row < rows - 1:
                moves.append((col, row + 1))
            next_col, next_row = moves[int(rng.integers(0, len(moves)))]
            origin = intersection(col, row)
            destination = intersection(next_col, next_row)
            speed = float(
                rng.uniform(spec.mobility.min_speed_mps, spec.mobility.max_speed_mps)
            )
            time += max(origin.distance_to(destination) / speed, 1e-6)
            points.append(TracePoint(time, destination))
            col, row = next_col, next_row
            if spec.mobility.pause_s > 0 and time < spec.duration_s:
                time += spec.mobility.pause_s
                points.append(TracePoint(time, destination))
        return MobilityTrace(points, node_id=node_id)


class TraceFileModel(MobilityModel):
    """Replays externally recorded traces from a CSV file.

    The bounding box is the tight enclosure of every recorded position, so
    the gateway grid covers exactly the recorded service area.  The random
    stream is unused — a replayed workload is deterministic by construction.
    """

    name = "trace-file"

    def build(self, spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
        del rng
        traces = load_traces_csv(spec.mobility.trace_file)
        if not traces:
            raise ValueError(
                f"trace file {spec.mobility.trace_file!r} holds no trace points"
            )
        return MobilityBuild(bounding_box=_enclosing_box(traces), traces=traces)


def _enclosing_box(traces: Mapping[str, MobilityTrace]) -> BoundingBox:
    points = [p.position for trace in traces.values() for p in trace.points]
    return BoundingBox(
        min_x=min(p.x for p in points),
        min_y=min(p.y for p in points),
        max_x=max(p.x for p in points),
        max_y=max(p.y for p in points),
    )


# --------------------------------------------------------------------- #
# CSV trace files
# --------------------------------------------------------------------- #
#: Header of the interchange format (one row per trace sample).
TRACE_CSV_FIELDS = ("node_id", "time_s", "x_m", "y_m")


def load_traces_csv(path: Union[str, Path]) -> Dict[str, MobilityTrace]:
    """Read traces from a ``node_id,time_s,x_m,y_m`` CSV file.

    Nodes appear in the result in order of first appearance; each node's
    samples may be interleaved with other nodes' but must carry unique
    timestamps (enforced by :class:`MobilityTrace`).
    """
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read trace file {source}: {exc}") from exc
    reader = csv.DictReader(text.splitlines())
    if reader.fieldnames is None or tuple(reader.fieldnames) != TRACE_CSV_FIELDS:
        raise ValueError(
            f"trace file {source} must start with the header "
            f"{','.join(TRACE_CSV_FIELDS)!r}, got {reader.fieldnames!r}"
        )
    samples: Dict[str, List[TracePoint]] = {}
    for line, row in enumerate(reader, start=2):
        try:
            node_id = row["node_id"]
            point = TracePoint(
                float(row["time_s"]), Point(float(row["x_m"]), float(row["y_m"]))
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"trace file {source}, line {line}: {exc}") from exc
        if not node_id:
            raise ValueError(f"trace file {source}, line {line}: empty node_id")
        samples.setdefault(node_id, []).append(point)
    return {
        node_id: MobilityTrace(points, node_id=node_id)
        for node_id, points in samples.items()
    }


def save_traces_csv(
    traces: Mapping[str, MobilityTrace], path: Union[str, Path]
) -> Path:
    """Write traces as a ``node_id,time_s,x_m,y_m`` CSV file (round-trips
    losslessly through :func:`load_traces_csv` — ``repr`` keeps full float
    precision)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [",".join(TRACE_CSV_FIELDS)]
    for node_id, trace in traces.items():
        for point in trace.points:
            # Cast through float: generator-produced coordinates may be numpy
            # scalars, whose repr is not a parseable number.
            lines.append(
                f"{node_id},{float(point.time)!r},"
                f"{float(point.position.x)!r},{float(point.position.y)!r}"
            )
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_MODEL_REGISTRY: Dict[str, Type[MobilityModel]] = {
    model.name: model
    for model in (LondonBusModel, RandomWaypointModel, GridManhattanModel, TraceFileModel)
}

assert set(_MODEL_REGISTRY) == set(MOBILITY_MODELS), (
    "mobility model registry out of sync with MOBILITY_MODELS"
)


def mobility_model_names() -> List[str]:
    """The registered model names, in catalogue order."""
    return list(MOBILITY_MODELS)


def make_mobility_model(name: str) -> MobilityModel:
    """Instantiate a mobility model by registry name."""
    try:
        return _MODEL_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown mobility model {name!r}; available: {list(MOBILITY_MODELS)}"
        ) from None


def build_mobility(spec: MobilitySpec, rng: np.random.Generator) -> MobilityBuild:
    """Build the traces of ``spec`` with the model it names."""
    return make_mobility_model(spec.mobility.model).build(spec, rng)
