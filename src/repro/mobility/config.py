"""Mobility-layer configuration: which model generates the traces.

The paper drives every result with one mobility source — the synthetic London
bus network.  :class:`MobilityConfig` generalises that setting exactly the way
:class:`~repro.radio.config.RadioConfig` generalised the radio layer: the
default configuration (``london-bus``) is the paper's, and the simulation
engine is required to reproduce the pre-mobility-refactor results
bit-identically under it (pinned by
``tests/experiments/test_mobility_equivalence.py``).  Other workloads —
random waypoint, Manhattan street grids, externally recorded CSV traces — are
opened by naming a different model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: The registered mobility models:
#:
#: ``london-bus``
#:     The synthetic London bus network of the paper (radial + orbital routes,
#:     diurnal timetable) — the default, and the only model the paper uses.
#: ``random-waypoint``
#:     Classic random-waypoint inside the scenario's service area: each node
#:     repeatedly picks a uniform destination and travels there at a uniform
#:     speed in ``[min_speed_mps, max_speed_mps]``, pausing ``pause_s``.
#: ``grid-manhattan``
#:     Movement constrained to a Manhattan street grid with streets every
#:     ``grid_spacing_m`` metres: nodes hop between adjacent intersections,
#:     the classic urban VANET workload.
#: ``trace-file``
#:     Replays externally recorded traces from the CSV file named by
#:     ``trace_file`` (columns ``node_id,time_s,x_m,y_m``) — the hook for
#:     real SUMO/TFL exports the paper's original pipeline used.
MOBILITY_MODELS: Tuple[str, ...] = (
    "london-bus",
    "random-waypoint",
    "grid-manhattan",
    "trace-file",
)


@dataclass(frozen=True)
class MobilityConfig:
    """The mobility-layer degrees of freedom of a scenario.

    ``num_nodes`` sizes the synthetic fleets of ``random-waypoint`` and
    ``grid-manhattan``; ``0`` (the default) derives the count from the
    scenario's bus fleet (``num_routes × trips_per_route``) so that swapping
    the mobility model keeps the node density comparable.  The speed and
    pause knobs only apply to those two synthetic models; ``london-bus``
    draws its speeds from the timetable generator and ``trace-file`` replays
    whatever the file recorded.
    """

    model: str = "london-bus"
    num_nodes: int = 0
    min_speed_mps: float = 2.0
    max_speed_mps: float = 10.0
    pause_s: float = 0.0
    grid_spacing_m: float = 500.0
    trace_file: str = ""

    def __post_init__(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ValueError(
                f"unknown mobility model {self.model!r}; available: {list(MOBILITY_MODELS)}"
            )
        if self.num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {self.num_nodes}")
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("speed range must satisfy 0 < min <= max")
        if self.pause_s < 0:
            raise ValueError("pause_s must be non-negative")
        if self.grid_spacing_m <= 0:
            raise ValueError("grid_spacing_m must be positive")
        if self.model == "trace-file" and not self.trace_file:
            raise ValueError("the trace-file model needs a non-empty trace_file path")

    @property
    def is_default(self) -> bool:
        """True for the paper's London bus-network configuration."""
        return self == MobilityConfig()

    def with_model(self, model: str) -> "MobilityConfig":
        """A copy running a different mobility model."""
        return replace(self, model=model)

    def with_num_nodes(self, num_nodes: int) -> "MobilityConfig":
        """A copy with an explicit synthetic fleet size."""
        return replace(self, num_nodes=num_nodes)

    def with_trace_file(self, trace_file: str) -> "MobilityConfig":
        """A copy replaying the given CSV trace file."""
        return replace(self, model="trace-file", trace_file=trace_file)
