"""Synthetic London-like bus network generator.

The paper replays real TFL timetables; that dataset is not redistributable
here, so this module generates a synthetic bus network whose first-order
statistics match what the protocols actually experience:

* a 600 km² (configurable) service area, Sec. VII-A1;
* route-constrained movement at 5.4–23.1 mph average speeds, Sec. III-A;
* a diurnal active-bus profile with a night trough and a daytime plateau
  (Fig. 7a) produced by drawing trip start times from a day/night mixture;
* a broad, right-skewed distribution of per-trip active durations (Fig. 7b)
  produced by mixing short orbital routes with long radial/cross-town routes.

Routes are laid out as radial spokes from the city centre plus orbital rings,
a crude but effective approximation of London's bus geography that produces
the centre-dense contact structure the forwarding protocols exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mobility.geometry import BoundingBox, Point, mph_to_mps
from repro.mobility.route import BusRoute, Timetable, Trip

#: Seconds in one day; the paper simulates 24 hours.
DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class LondonBusNetworkConfig:
    """Knobs of the synthetic bus network.

    The defaults are a laptop-scale rendition of the paper's scenario.  The
    ``scale`` knob of the experiment layer shrinks ``area_km2``, ``num_routes``
    and ``trips_per_route`` together while keeping densities comparable.
    """

    area_km2: float = 600.0
    num_routes: int = 40
    stops_per_route: int = 12
    trips_per_route: int = 30
    min_speed_mph: float = 5.4
    max_speed_mph: float = 23.1
    dwell_time_s: float = 20.0
    min_repeats: int = 2
    max_repeats: int = 8
    day_fraction: float = 0.85
    day_start_s: float = 5.5 * 3600.0
    day_end_s: float = 22.0 * 3600.0
    horizon_s: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if self.area_km2 <= 0:
            raise ValueError("area_km2 must be positive")
        if self.num_routes <= 0 or self.trips_per_route <= 0:
            raise ValueError("route and trip counts must be positive")
        if self.stops_per_route < 2:
            raise ValueError("stops_per_route must be at least 2")
        if not 0 < self.min_speed_mph <= self.max_speed_mph:
            raise ValueError("speed range must satisfy 0 < min <= max")
        if not 1 <= self.min_repeats <= self.max_repeats:
            raise ValueError("repeat range must satisfy 1 <= min <= max")
        if not 0 <= self.day_fraction <= 1:
            raise ValueError("day_fraction must be in [0, 1]")
        if not 0 <= self.day_start_s < self.day_end_s <= self.horizon_s:
            raise ValueError("day window must lie inside the horizon")


class LondonBusNetworkGenerator:
    """Generates routes and a one-day timetable for the synthetic network."""

    def __init__(self, config: LondonBusNetworkConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self.bounding_box = BoundingBox.from_area_km2(config.area_km2)

    def generate_routes(self) -> List[BusRoute]:
        """Lay out radial and orbital routes across the service area."""
        config = self.config
        centre = self.bounding_box.center
        max_radius = min(self.bounding_box.width, self.bounding_box.height) / 2.0
        routes: List[BusRoute] = []
        num_radial = max(config.num_routes * 2 // 3, 1)
        num_orbital = config.num_routes - num_radial
        for index in range(num_radial):
            angle = 2.0 * math.pi * index / num_radial + self._rng.uniform(-0.05, 0.05)
            reach = max_radius * self._rng.uniform(0.55, 0.98)
            stops = self._radial_stops(centre, angle, reach, config.stops_per_route)
            routes.append(BusRoute(route_id=f"radial-{index:03d}", stops=stops, round_trip=True))
        for index in range(num_orbital):
            radius = max_radius * self._rng.uniform(0.25, 0.85)
            stops = self._orbital_stops(centre, radius, config.stops_per_route)
            routes.append(BusRoute(route_id=f"orbital-{index:03d}", stops=stops, round_trip=False))
        return routes

    def generate_timetable(self, routes: List[BusRoute]) -> Timetable:
        """Draw trip start times and speeds for every route."""
        config = self.config
        timetable = Timetable()
        for route in routes:
            for trip_index in range(config.trips_per_route):
                start = self._draw_start_time()
                speed = mph_to_mps(
                    self._rng.uniform(config.min_speed_mph, config.max_speed_mph)
                )
                repeats = int(self._rng.integers(config.min_repeats, config.max_repeats + 1))
                timetable.add(
                    Trip(
                        trip_id=f"{route.route_id}/trip-{trip_index:03d}",
                        route=route,
                        start_time=start,
                        speed_mps=speed,
                        dwell_time_s=config.dwell_time_s,
                        repeats=repeats,
                    )
                )
        return timetable

    def generate(self) -> Timetable:
        """Convenience: routes plus timetable in one call."""
        return self.generate_timetable(self.generate_routes())

    def _draw_start_time(self) -> float:
        """Trip start time from a day/night mixture producing the Fig. 7a shape."""
        config = self.config
        if self._rng.random() < config.day_fraction:
            # Daytime trips: triangular bump peaking mid-day.
            start = self._rng.triangular(
                config.day_start_s,
                (config.day_start_s + config.day_end_s) / 2.0,
                config.day_end_s,
            )
        else:
            # Night service: uniform over the remaining hours.
            night_length = config.horizon_s - (config.day_end_s - config.day_start_s)
            offset = self._rng.uniform(0.0, night_length)
            start = offset if offset < config.day_start_s else offset + (
                config.day_end_s - config.day_start_s
            )
        return float(min(start, config.horizon_s - 1.0))

    def _radial_stops(
        self, centre: Point, angle: float, reach: float, count: int
    ) -> List[Point]:
        """Stops marching outward from the centre along ``angle`` with jitter."""
        stops: List[Point] = []
        for step in range(count):
            fraction = step / (count - 1)
            radius = reach * fraction
            jitter = self._rng.normal(0.0, reach * 0.01, size=2)
            stop = Point(
                centre.x + radius * math.cos(angle) + jitter[0],
                centre.y + radius * math.sin(angle) + jitter[1],
            )
            stops.append(self.bounding_box.clamp(stop))
        return stops

    def _orbital_stops(self, centre: Point, radius: float, count: int) -> List[Point]:
        """Stops around a ring of ``radius`` metres centred on ``centre``."""
        phase = self._rng.uniform(0.0, 2.0 * math.pi)
        stops: List[Point] = []
        for step in range(count):
            angle = phase + 2.0 * math.pi * step / count
            jitter = self._rng.normal(0.0, radius * 0.01, size=2)
            stop = Point(
                centre.x + radius * math.cos(angle) + jitter[0],
                centre.y + radius * math.sin(angle) + jitter[1],
            )
            stops.append(self.bounding_box.clamp(stop))
        return stops
