"""Simple mobility models used by tests and small examples.

The London generator produces realistic but statistically noisy scenarios; the
models here give precise control for unit tests (static nodes) and a generic
synthetic workload (random waypoint) for examples that do not want the full
bus network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mobility.geometry import BoundingBox, Point
from repro.mobility.trace import MobilityTrace, TracePoint


@dataclass(frozen=True)
class StaticMobility:
    """Produces static traces at fixed positions."""

    positions: List[Point]
    start: float = 0.0
    end: float = float("inf")

    def traces(self, prefix: str = "static") -> List[MobilityTrace]:
        """One open-ended static trace per position."""
        return [
            MobilityTrace.static(position, start=self.start, end=self.end,
                                 node_id=f"{prefix}-{index:03d}")
            for index, position in enumerate(self.positions)
        ]


@dataclass(frozen=True)
class RandomWaypointMobility:
    """Classic random-waypoint mobility inside a bounding box.

    Each node repeatedly picks a uniform destination and travels there at a
    uniform speed in ``[min_speed, max_speed]``, pausing ``pause_s`` at each
    waypoint, until ``duration_s`` is covered.
    """

    bounding_box: BoundingBox
    num_nodes: int
    duration_s: float
    min_speed_mps: float = 2.0
    max_speed_mps: float = 10.0
    pause_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("speed range must satisfy 0 < min <= max")
        if self.pause_s < 0:
            raise ValueError("pause_s must be non-negative")

    def traces(self, rng: np.random.Generator, prefix: str = "rwp") -> List[MobilityTrace]:
        """Generate one trace per node using ``rng``."""
        return [
            self._single_trace(rng, f"{prefix}-{index:03d}") for index in range(self.num_nodes)
        ]

    def _random_point(self, rng: np.random.Generator) -> Point:
        return Point(
            float(rng.uniform(self.bounding_box.min_x, self.bounding_box.max_x)),
            float(rng.uniform(self.bounding_box.min_y, self.bounding_box.max_y)),
        )

    def _single_trace(self, rng: np.random.Generator, node_id: str) -> MobilityTrace:
        time = 0.0
        position = self._random_point(rng)
        points: List[TracePoint] = [TracePoint(time, position)]
        while time < self.duration_s:
            destination = self._random_point(rng)
            speed = float(rng.uniform(self.min_speed_mps, self.max_speed_mps))
            travel_time = position.distance_to(destination) / speed
            time += max(travel_time, 1e-6)
            points.append(TracePoint(time, destination))
            position = destination
            if self.pause_s > 0 and time < self.duration_s:
                time += self.pause_s
                points.append(TracePoint(time, destination))
        return MobilityTrace(points, node_id=node_id)
