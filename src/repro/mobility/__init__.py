"""Mobility substrate.

The paper drives its evaluation with SUMO replaying Transport-for-London bus
timetables.  This package replaces that pipeline with: plane geometry
(:mod:`repro.mobility.geometry`), bus routes with per-trip timetables
(:mod:`repro.mobility.route`), piecewise-linear position traces
(:mod:`repro.mobility.trace`), a synthetic London-like bus-network generator
calibrated to Fig. 7 of the paper (:mod:`repro.mobility.london`) and simple
mobility models used by unit tests (:mod:`repro.mobility.generators`).
"""

from repro.mobility.geometry import BoundingBox, Point, grid_positions
from repro.mobility.generators import RandomWaypointMobility, StaticMobility
from repro.mobility.london import LondonBusNetworkConfig, LondonBusNetworkGenerator
from repro.mobility.route import BusRoute, Trip, build_trip_trace
from repro.mobility.trace import MobilityTrace, TracePoint

__all__ = [
    "BoundingBox",
    "Point",
    "grid_positions",
    "RandomWaypointMobility",
    "StaticMobility",
    "LondonBusNetworkConfig",
    "LondonBusNetworkGenerator",
    "BusRoute",
    "Trip",
    "build_trip_trace",
    "MobilityTrace",
    "TracePoint",
]
