"""Mobility substrate.

The paper drives its evaluation with SUMO replaying Transport-for-London bus
timetables.  This package replaces that pipeline with: plane geometry
(:mod:`repro.mobility.geometry`), bus routes with per-trip timetables
(:mod:`repro.mobility.route`), piecewise-linear position traces
(:mod:`repro.mobility.trace`), a synthetic London-like bus-network generator
calibrated to Fig. 7 of the paper (:mod:`repro.mobility.london`), simple
mobility generators used by unit tests (:mod:`repro.mobility.generators`) and
the pluggable model registry the experiment layer builds traces through
(:mod:`repro.mobility.config`, :mod:`repro.mobility.models`).
"""

from repro.mobility.config import MOBILITY_MODELS, MobilityConfig
from repro.mobility.geometry import BoundingBox, Point, grid_positions
from repro.mobility.generators import RandomWaypointMobility, StaticMobility
from repro.mobility.london import LondonBusNetworkConfig, LondonBusNetworkGenerator
from repro.mobility.models import (
    MobilityBuild,
    MobilityModel,
    MobilitySpec,
    build_mobility,
    load_traces_csv,
    make_mobility_model,
    mobility_model_names,
    save_traces_csv,
)
from repro.mobility.route import BusRoute, Trip, build_trip_trace
from repro.mobility.trace import MobilityTrace, TracePoint

__all__ = [
    "MOBILITY_MODELS",
    "MobilityConfig",
    "BoundingBox",
    "Point",
    "grid_positions",
    "RandomWaypointMobility",
    "StaticMobility",
    "LondonBusNetworkConfig",
    "LondonBusNetworkGenerator",
    "MobilityBuild",
    "MobilityModel",
    "MobilitySpec",
    "build_mobility",
    "load_traces_csv",
    "make_mobility_model",
    "mobility_model_names",
    "save_traces_csv",
    "BusRoute",
    "Trip",
    "build_trip_trace",
    "MobilityTrace",
    "TracePoint",
]
