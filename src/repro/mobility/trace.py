"""Mobility traces: positions over time with piecewise-linear interpolation.

A :class:`MobilityTrace` is the common currency between the mobility layer and
the network layer: every mobile node exposes one, and the time-varying
topology queries it for a position at an arbitrary simulation time.  Nodes are
considered *inactive* (off the road, radio off) outside the trace's time span,
which is how buses entering and leaving service are modelled.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.mobility.geometry import Point


@dataclass(frozen=True)
class TracePoint:
    """A time-stamped position sample."""

    time: float
    position: Point

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"trace time must be non-negative, got {self.time}")


class MobilityTrace:
    """An ordered sequence of :class:`TracePoint` samples.

    Positions between samples are linearly interpolated.  Queries before the
    first sample or after the last return ``None`` — the node is not active.
    """

    def __init__(self, points: Sequence[TracePoint], node_id: str = "") -> None:
        if not points:
            raise ValueError("a mobility trace needs at least one point")
        ordered = sorted(points, key=lambda p: p.time)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.time == earlier.time:
                raise ValueError(f"duplicate trace timestamp {later.time}")
        self._points: List[TracePoint] = list(ordered)
        self._times: List[float] = [p.time for p in self._points]
        self.node_id = node_id
        # Sample arrays backing the batched positions_at query.
        self._times_array = np.asarray(self._times, dtype=float)
        self._xs = np.asarray([p.position.x for p in self._points], dtype=float)
        self._ys = np.asarray([p.position.y for p in self._points], dtype=float)

    @classmethod
    def static(cls, position: Point, start: float = 0.0, end: float = float("inf"),
               node_id: str = "") -> "MobilityTrace":
        """A trace for a node that never moves and is active on ``[start, end]``."""
        if end <= start:
            raise ValueError("end must be after start")
        points = [TracePoint(start, position)]
        if end != float("inf"):
            points.append(TracePoint(end, position))
        trace = cls(points, node_id=node_id)
        trace._static_end = end  # type: ignore[attr-defined]
        return trace

    @property
    def points(self) -> List[TracePoint]:
        """A copy of the underlying samples."""
        return list(self._points)

    def points_in_span(self, start: float, end: float) -> List[TracePoint]:
        """The samples with ``start <= time <= end``, bisected — no full scan."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return self._points[lo:hi]

    @property
    def start_time(self) -> float:
        """Time of the first sample."""
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Time of the last sample (or +inf for open-ended static traces)."""
        return getattr(self, "_static_end", self._times[-1])

    @property
    def duration(self) -> float:
        """Active duration in seconds."""
        return self.end_time - self.start_time

    def is_active(self, time: float) -> bool:
        """True when the node is on the road / powered at ``time``."""
        return self.start_time <= time <= self.end_time

    def position_at(self, time: float) -> Optional[Point]:
        """Interpolated position at ``time``, or ``None`` when inactive."""
        if not self.is_active(time):
            return None
        if len(self._points) == 1 or time >= self._times[-1]:
            return self._points[-1].position
        if time <= self._times[0]:
            return self._points[0].position
        index = bisect.bisect_right(self._times, time)
        before = self._points[index - 1]
        after = self._points[index]
        span = after.time - before.time
        fraction = 0.0 if span == 0 else (time - before.time) / span
        return before.position.interpolate(after.position, fraction)

    def positions_at(self, times: Sequence[float]) -> np.ndarray:
        """Interpolated positions for a whole batch of query times at once.

        Returns an ``(len(times), 2)`` float array of ``(x, y)`` rows; rows
        where the node is inactive hold ``NaN``.  Bit-identical to calling
        :meth:`position_at` per time (same interpolation arithmetic, in the
        same operation order), just NumPy-batched — the contact-extraction
        pipeline samples tens of thousands of grid times per trace pair and
        is two orders of magnitude faster on this path.
        """
        query = np.asarray(times, dtype=float)
        if query.ndim != 1:
            raise ValueError(f"times must be one-dimensional, got shape {query.shape}")
        out = np.full((query.size, 2), np.nan)
        active = (query >= self.start_time) & (query <= self.end_time)
        if not active.any():
            return out
        t = query[active]
        ts, xs, ys = self._times_array, self._xs, self._ys
        x = np.empty(t.size)
        y = np.empty(t.size)
        if len(self._points) == 1:
            x[:] = xs[-1]
            y[:] = ys[-1]
        else:
            # Mirror position_at exactly: clamp to the end samples, then
            # interpolate with bisect_right semantics between the rest.
            last = t >= ts[-1]
            first = t <= ts[0]
            x[last], y[last] = xs[-1], ys[-1]
            x[first], y[first] = xs[0], ys[0]
            mid = ~(last | first)
            if mid.any():
                index = np.searchsorted(ts, t[mid], side="right")
                before = index - 1
                fraction = (t[mid] - ts[before]) / (ts[index] - ts[before])
                x[mid] = xs[before] + (xs[index] - xs[before]) * fraction
                y[mid] = ys[before] + (ys[index] - ys[before]) * fraction
        out[active, 0] = x
        out[active, 1] = y
        return out

    def total_distance(self) -> float:
        """Path length travelled over the whole trace, in metres."""
        return sum(
            earlier.position.distance_to(later.position)
            for earlier, later in zip(self._points, self._points[1:])
        )

    def average_speed(self) -> float:
        """Mean speed over the active span in m/s (0 for static/instantaneous traces)."""
        span = self._times[-1] - self._times[0]
        if span <= 0:
            return 0.0
        return self.total_distance() / span


def merge_active_intervals(traces: Iterable[MobilityTrace]) -> List[tuple]:
    """Return the ``(start, end)`` active interval of each trace (sorted by start)."""
    intervals = [(t.start_time, t.end_time) for t in traces]
    return sorted(intervals)


def active_count_at(traces: Sequence[MobilityTrace], time: float) -> int:
    """Number of traces active at ``time`` (used for the Fig. 7a diurnal profile)."""
    return sum(1 for trace in traces if trace.is_active(time))
