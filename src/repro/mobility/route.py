"""Bus routes, trips and timetable-to-trace conversion.

A :class:`BusRoute` is an ordered list of stops (waypoints) on the plane.  A
:class:`Trip` is one vehicle serving that route starting at a given time with
a given cruising speed and per-stop dwell time — the synthetic counterpart of
one row of a TFL timetable.  :func:`build_trip_trace` converts a trip into the
piecewise-linear :class:`~repro.mobility.trace.MobilityTrace` the network
layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint


@dataclass(frozen=True)
class BusRoute:
    """A named, ordered sequence of stops."""

    route_id: str
    stops: Sequence[Point]
    round_trip: bool = False

    def __post_init__(self) -> None:
        if len(self.stops) < 2:
            raise ValueError(f"route {self.route_id!r} needs at least two stops")

    @property
    def waypoints(self) -> List[Point]:
        """Stops in travel order; a round trip appends the reverse leg."""
        points = list(self.stops)
        if self.round_trip:
            points += list(reversed(points[:-1]))
        return points

    def length_m(self) -> float:
        """Total path length of one service run in metres."""
        waypoints = self.waypoints
        return sum(a.distance_to(b) for a, b in zip(waypoints, waypoints[1:]))


@dataclass(frozen=True)
class Trip:
    """One vehicle's service block on a route.

    ``repeats`` models a real bus block: the vehicle traverses the route
    ``repeats`` times back-to-back (out-and-back for round-trip routes, loop
    after loop for orbitals), which is what produces the multi-hour active
    durations of Fig. 7b.
    """

    trip_id: str
    route: BusRoute
    start_time: float
    speed_mps: float
    dwell_time_s: float = 20.0
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("trip start_time must be non-negative")
        if self.speed_mps <= 0:
            raise ValueError(f"speed must be positive, got {self.speed_mps}")
        if self.dwell_time_s < 0:
            raise ValueError("dwell time must be non-negative")
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")

    def _waypoints(self) -> List[Point]:
        """Waypoints of the whole service block (route repeated ``repeats`` times)."""
        single = self.route.waypoints
        waypoints = list(single)
        for _ in range(self.repeats - 1):
            # Skip the duplicated joining waypoint when the route ends where
            # it started (round trips and closed orbitals).
            start_index = 1 if single[-1].distance_to(single[0]) < 1e-9 else 0
            waypoints += single[start_index:]
        return waypoints

    def duration_s(self) -> float:
        """Total service duration: driving time plus dwell at intermediate stops."""
        waypoints = self._waypoints()
        driving = sum(
            a.distance_to(b) for a, b in zip(waypoints, waypoints[1:])
        ) / self.speed_mps
        intermediate_stops = max(len(waypoints) - 2, 0)
        return driving + intermediate_stops * self.dwell_time_s


def build_trip_trace(trip: Trip, node_id: str = "") -> MobilityTrace:
    """Convert a :class:`Trip` into a :class:`MobilityTrace`.

    The bus departs the first stop at ``trip.start_time``, drives each leg at
    constant ``speed_mps`` and dwells ``dwell_time_s`` at every intermediate
    stop.  Dwells are represented by a pair of samples at the same position so
    interpolation keeps the bus stationary during the dwell.
    """
    waypoints = trip._waypoints()
    time = trip.start_time
    points: List[TracePoint] = [TracePoint(time, waypoints[0])]
    for index, (origin, destination) in enumerate(zip(waypoints, waypoints[1:])):
        leg_time = origin.distance_to(destination) / trip.speed_mps
        if leg_time <= 0:
            continue
        time += leg_time
        points.append(TracePoint(time, destination))
        is_last_leg = index == len(waypoints) - 2
        if not is_last_leg and trip.dwell_time_s > 0:
            time += trip.dwell_time_s
            points.append(TracePoint(time, destination))
    return MobilityTrace(points, node_id=node_id or trip.trip_id)


@dataclass
class Timetable:
    """A collection of trips over one or more routes (one synthetic TFL day)."""

    trips: List[Trip] = field(default_factory=list)

    def add(self, trip: Trip) -> None:
        """Append a trip to the timetable."""
        self.trips.append(trip)

    def __len__(self) -> int:
        return len(self.trips)

    def traces(self) -> List[MobilityTrace]:
        """Build one mobility trace per trip."""
        return [build_trip_trace(trip) for trip in self.trips]

    def active_bus_profile(self, bin_width_s: float, horizon_s: float) -> List[int]:
        """Number of active buses in each ``bin_width_s`` window (Fig. 7a)."""
        if bin_width_s <= 0 or horizon_s <= 0:
            raise ValueError("bin width and horizon must be positive")
        traces = self.traces()
        profile: List[int] = []
        time = 0.0
        while time < horizon_s:
            mid = time + bin_width_s / 2.0
            profile.append(sum(1 for trace in traces if trace.is_active(mid)))
            time += bin_width_s
        return profile

    def active_durations(self) -> List[float]:
        """Per-trip active durations in seconds (Fig. 7b)."""
        return [trip.duration_s() for trip in self.trips]
