"""Plane geometry helpers.

The simulation area is a flat Cartesian plane in metres (adequate for a
600 km² urban area at LoRa ranges; geodesic effects are far below shadowing
noise).  Besides points and bounding boxes this module provides the uniform
grid placement the paper uses for gateways (Sec. VII-A6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Point:
    """A position in metres on the simulation plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def interpolate(self, other: "Point", fraction: float) -> "Point":
        """The point ``fraction`` of the way from ``self`` to ``other`` (clamped to [0, 1])."""
        f = min(max(fraction, 0.0), 1.0)
        return Point(self.x + (other.x - self.x) * f, self.y + (other.y - self.y) * f)

    def translate(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle on the plane."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError("bounding box max must not be below min")

    @classmethod
    def square(cls, side_m: float, origin: Point = Point(0.0, 0.0)) -> "BoundingBox":
        """A square of ``side_m`` metres anchored at ``origin``."""
        if side_m <= 0:
            raise ValueError(f"side must be positive, got {side_m}")
        return cls(origin.x, origin.y, origin.x + side_m, origin.y + side_m)

    @classmethod
    def from_area_km2(cls, area_km2: float) -> "BoundingBox":
        """A square box with the requested area in km² (e.g. 600 km² as in the paper)."""
        if area_km2 <= 0:
            raise ValueError(f"area must be positive, got {area_km2}")
        side_m = math.sqrt(area_km2) * 1000.0
        return cls.square(side_m)

    @property
    def width(self) -> float:
        """Extent along x in metres."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y in metres."""
        return self.max_y - self.min_y

    @property
    def area_km2(self) -> float:
        """Area in square kilometres."""
        return (self.width * self.height) / 1e6

    @property
    def center(self) -> Point:
        """Centre of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies inside the box (boundaries included)."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def clamp(self, point: Point) -> Point:
        """The closest point inside the box to ``point``."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )


def grid_positions(box: BoundingBox, count: int) -> List[Point]:
    """Place ``count`` points on a near-square uniform grid inside ``box``.

    This mirrors the paper's uniform gateway grid: the grid dimensions are the
    most balanced factorisation of the smallest grid holding ``count`` cells,
    and each point sits at its cell centre.  Exactly ``count`` points are
    returned (surplus grid cells are dropped row-major from the end).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    columns = int(math.ceil(math.sqrt(count)))
    rows = int(math.ceil(count / columns))
    cell_w = box.width / columns
    cell_h = box.height / rows
    points: List[Point] = []
    for row in range(rows):
        for col in range(columns):
            if len(points) >= count:
                break
            points.append(
                Point(
                    box.min_x + (col + 0.5) * cell_w,
                    box.min_y + (row + 0.5) * cell_h,
                )
            )
    return points


def mph_to_mps(speed_mph: float) -> float:
    """Convert miles per hour to metres per second (bus speeds are quoted in mph)."""
    return speed_mph * 0.44704
