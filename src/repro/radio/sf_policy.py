"""Spreading-factor and channel allocation across a device fleet.

Allocation happens once, at scenario-build time: real LoRa sensor fleets are
commissioned with a data rate and channel plan, and the paper's evaluation
(fixed SF7, one channel) is the degenerate case.  The allocator is a pure
function of its inputs — device order, positions, gateway layout and the
dedicated ``sf-allocation`` random stream — so runs stay reproducible from
the scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.mobility.geometry import Point
from repro.phy.constants import SpreadingFactor
from repro.radio.config import RadioConfig

#: Spreading factors in allocation order (fastest first).
_ALL_SFS = tuple(SpreadingFactor)


@dataclass(frozen=True)
class RadioAssignment:
    """The (spreading factor, channel) pair one device transmits with."""

    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    channel: int = 0

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError(f"channel must be non-negative, got {self.channel}")


def distance_based_sf(distance_m: float, gateway_range_m: float) -> SpreadingFactor:
    """The SF of the distance ring ``distance_m`` falls into.

    The gateway range is split into six equal-width rings, SF7 innermost;
    devices at or beyond the nominal range get SF12, the longest-reach
    setting — the standard static allocation of LoRaSim-family simulators.
    """
    if gateway_range_m <= 0:
        raise ValueError("gateway_range_m must be positive")
    if distance_m < 0:
        raise ValueError("distance_m must be non-negative")
    ring = int(len(_ALL_SFS) * distance_m / gateway_range_m)
    return _ALL_SFS[min(ring, len(_ALL_SFS) - 1)]


def allocate_radio(
    config: RadioConfig,
    device_ids: Sequence[str],
    device_positions: Optional[Mapping[str, Point]] = None,
    gateway_positions: Optional[Sequence[Point]] = None,
    gateway_range_m: float = 1000.0,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, RadioAssignment]:
    """Assign every device its spreading factor and uplink channel.

    Channels are handed out round-robin in device order for every policy,
    spreading load evenly across the plan.  The ``fixed-sf7`` policy touches
    neither positions nor the RNG, so the default configuration consumes no
    randomness at all (a requirement of the seed-equivalence guarantee).
    """
    assignments: Dict[str, RadioAssignment] = {}
    for index, device_id in enumerate(device_ids):
        channel = index % config.num_channels
        if config.sf_policy == "fixed-sf7":
            sf = SpreadingFactor.SF7
        elif config.sf_policy == "distance-based":
            sf = _sf_for_position(
                device_id, device_positions, gateway_positions, gateway_range_m
            )
        elif config.sf_policy == "random":
            if rng is None:
                raise ValueError("the 'random' sf_policy requires an RNG")
            sf = _ALL_SFS[int(rng.integers(0, len(_ALL_SFS)))]
        else:  # pragma: no cover - RadioConfig validates the policy name
            raise ValueError(f"unknown sf_policy {config.sf_policy!r}")
        assignments[device_id] = RadioAssignment(spreading_factor=sf, channel=channel)
    return assignments


def _sf_for_position(
    device_id: str,
    device_positions: Optional[Mapping[str, Point]],
    gateway_positions: Optional[Sequence[Point]],
    gateway_range_m: float,
) -> SpreadingFactor:
    if not gateway_positions:
        raise ValueError("the 'distance-based' sf_policy requires gateway positions")
    position = (device_positions or {}).get(device_id)
    if position is None:
        # A device that never appears on the map (empty trace) cannot be
        # ranged; give it the longest-reach setting.
        return SpreadingFactor.SF12
    nearest = min(position.distance_to(gw) for gw in gateway_positions)
    return distance_based_sf(nearest, gateway_range_m)
