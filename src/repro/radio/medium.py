"""The shared radio medium: airtime, interference, capture and reception.

Everything between "a device decides to transmit" and "a receiver decodes the
frame (or not)" lives here, extracted out of the simulation engine so that
scenarios can vary the radio layer without touching the event loop:

* per-spreading-factor time on air (Semtech AN1200.13 via
  :class:`~repro.phy.airtime.AirtimeCalculator`, with the low-data-rate
  optimisation engaged automatically where the spec requires it);
* per-spreading-factor receiver sensitivity
  (:class:`~repro.phy.link.LinkQualityEstimator` over the SX1276 tables in
  :mod:`repro.phy.constants`);
* the collision/capture model: same-SF same-channel overlapping frames
  interfere (strongest survives given a 6 dB capture margin), cross-SF and
  cross-channel frames are orthogonal
  (:class:`~repro.phy.collision.CollisionModel`);
* registry hygiene: expired transmissions are pruned once the registry grows
  past a threshold, bounding memory and interference-scan cost.

The medium also owns the reception random stream; the draw order is part of
the seed-equivalence contract with the pre-refactor engine, so
:meth:`resolve_gateway_reception` replicates the historical resolution order
exactly (candidates by descending RSSI, collision check before the
link-quality draw).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Container, Dict, Mapping, Optional

import numpy as np

from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.collision import CollisionModel, Transmission
from repro.phy.constants import MAX_PHY_PAYLOAD_BYTES, SpreadingFactor
from repro.phy.link import LinkQualityEstimator
from repro.radio.config import RadioConfig

#: Transmissions older than this are dropped from the collision registry.
#: Far longer than any frame (SF12 airtime for a full payload is ~9 s).
COLLISION_RETENTION_S = 10.0

#: Registry size above which completions trigger an opportunistic prune.
PRUNE_THRESHOLD = 64

#: Symbol times above this engage the LoRa low-data-rate optimisation
#: (Semtech AN1200.13: mandatory for symbol durations exceeding 16 ms,
#: i.e. SF11 and SF12 at 125 kHz).
_LDRO_SYMBOL_TIME_S = 0.016


class RadioMedium:
    """Channels, airtime, collisions and reception for one simulation run."""

    def __init__(
        self,
        config: RadioConfig = RadioConfig(),
        reception_rng: Optional[np.random.Generator] = None,
        parameters: LoRaTransmissionParameters = LoRaTransmissionParameters(),
        capture_threshold_db: Optional[float] = None,
        retention_s: float = COLLISION_RETENTION_S,
        prune_threshold: int = PRUNE_THRESHOLD,
    ) -> None:
        if retention_s <= 0:
            raise ValueError(f"retention_s must be positive, got {retention_s}")
        if prune_threshold < 0:
            raise ValueError("prune_threshold must be non-negative")
        self.config = config
        self.retention_s = retention_s
        self.prune_threshold = prune_threshold
        self._reception_rng = reception_rng
        self._parameters = parameters
        self.collisions = (
            CollisionModel()
            if capture_threshold_db is None
            else CollisionModel(capture_threshold_db)
        )
        self._airtime_by_sf: Dict[SpreadingFactor, AirtimeCalculator] = {}
        self._quality_by_sf: Dict[SpreadingFactor, LinkQualityEstimator] = {}

    @property
    def reception_rng(self) -> Optional[np.random.Generator]:
        """The reception random stream.

        Exposed for engines that replicate the resolution order of
        :meth:`resolve_gateway_reception` themselves — the draw sequence from
        this stream is part of the seed-equivalence contract.
        """
        return self._reception_rng

    # ------------------------------------------------------------------ #
    # Per-SF radio parameters
    # ------------------------------------------------------------------ #
    def airtime_calculator(self, spreading_factor: SpreadingFactor) -> AirtimeCalculator:
        """The (cached) airtime calculator for ``spreading_factor``."""
        calculator = self._airtime_by_sf.get(spreading_factor)
        if calculator is None:
            parameters = replace(self._parameters, spreading_factor=spreading_factor)
            symbol_time = (2 ** int(spreading_factor)) / parameters.bandwidth_hz
            if symbol_time > _LDRO_SYMBOL_TIME_S and not parameters.low_data_rate_optimize:
                parameters = replace(parameters, low_data_rate_optimize=True)
            calculator = AirtimeCalculator(parameters)
            self._airtime_by_sf[spreading_factor] = calculator
        return calculator

    def airtime_s(
        self,
        payload_bytes: int,
        spreading_factor: SpreadingFactor = SpreadingFactor.SF7,
    ) -> float:
        """Time on air of a frame, payload clamped to the LoRa maximum."""
        calculator = self.airtime_calculator(spreading_factor)
        return calculator.time_on_air_s(min(payload_bytes, MAX_PHY_PAYLOAD_BYTES))

    def link_quality(self, spreading_factor: SpreadingFactor) -> LinkQualityEstimator:
        """The (cached) sensitivity-based reception estimator for ``spreading_factor``."""
        estimator = self._quality_by_sf.get(spreading_factor)
        if estimator is None:
            estimator = LinkQualityEstimator(spreading_factor=spreading_factor)
            self._quality_by_sf[spreading_factor] = estimator
        return estimator

    # ------------------------------------------------------------------ #
    # Transmission lifecycle
    # ------------------------------------------------------------------ #
    def transmit(
        self,
        sender: str,
        now: float,
        payload_bytes: int,
        rssi_by_receiver: Mapping[str, float],
        spreading_factor: SpreadingFactor = SpreadingFactor.SF7,
        channel: int = 0,
        airtime_s: Optional[float] = None,
    ) -> Transmission:
        """Put a frame on the air and return its registered transmission.

        ``airtime_s`` lets a caller that already computed the frame duration
        (for duty-cycle accounting) reuse it, so the scheduled completion
        time and the registered occupancy cannot diverge.
        """
        if airtime_s is None:
            airtime_s = self.airtime_s(payload_bytes, spreading_factor)
        transmission = Transmission(
            sender=sender,
            start_time=now,
            duration=airtime_s,
            channel=channel,
            spreading_factor=spreading_factor,
            rssi_by_receiver=dict(rssi_by_receiver),
        )
        self.collisions.add(transmission)
        return transmission

    def is_decodable(self, transmission: Transmission, receiver: str) -> bool:
        """Collision/capture verdict alone (no link-quality randomness).

        This is the device-to-device overhearing check: a neighbour close
        enough to have an RSSI entry decodes the frame unless a same-channel
        same-SF collision without capture destroys it.
        """
        return self.collisions.is_received(transmission, receiver)

    def frame_received(self, transmission: Transmission, receiver: str) -> bool:
        """Full reception verdict: capture check plus the sensitivity draw."""
        if not self.collisions.is_received(transmission, receiver):
            return False
        rssi = transmission.rssi_by_receiver[receiver]
        quality = self.link_quality(transmission.spreading_factor)
        return quality.frame_received(rssi, self._reception_rng)

    def resolve_gateway_reception(
        self, transmission: Transmission, gateway_ids: Container[str]
    ) -> Optional[str]:
        """The gateway (if any) that decodes the frame, best RSSI first.

        Candidates are the receivers of ``transmission`` that are gateways;
        they are tried in descending RSSI order and the first one that
        survives both the capture check and the link-quality draw wins.
        """
        candidates = [
            (rssi, receiver)
            for receiver, rssi in transmission.rssi_by_receiver.items()
            if receiver in gateway_ids
        ]
        quality = self.link_quality(transmission.spreading_factor)
        for rssi, gateway_id in sorted(candidates, reverse=True):
            if not self.collisions.is_received(transmission, gateway_id):
                continue
            if quality.frame_received(rssi, self._reception_rng):
                return gateway_id
        return None

    # ------------------------------------------------------------------ #
    # Registry hygiene
    # ------------------------------------------------------------------ #
    def prune(self, now: float) -> None:
        """Opportunistically drop transmissions past the retention window.

        Cheap to call on every completion: nothing happens until the registry
        outgrows ``prune_threshold``.
        """
        if len(self.collisions) > self.prune_threshold:
            self.collisions.expire(now - self.retention_s)

    def __len__(self) -> int:
        """Number of transmissions currently registered."""
        return len(self.collisions)
