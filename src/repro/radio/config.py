"""Radio-layer configuration: channel plan and spreading-factor policy.

The paper's evaluation fixes every device to one shared SF7 channel
(Sec. VII-A5).  :class:`RadioConfig` generalises that setting without
abandoning it: the default configuration (one channel, ``fixed-sf7``) is the
paper's, and the simulation engine is required to reproduce the pre-radio
refactor results bit-identically under it (pinned by
``tests/experiments/test_radio_equivalence.py``).  Multi-channel,
multi-spreading-factor deployments — the standard LoRaWAN shape, cf. the
``simulateur_lora_sfrd`` lineage of simulators — are opened by raising
``num_channels`` and choosing an SF allocation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: The registered spreading-factor allocation policies:
#:
#: ``fixed-sf7``
#:     Every device uses SF7, the paper's setting.
#: ``distance-based``
#:     SF grows with the distance from the device's first known position to
#:     the nearest gateway (near devices get fast SF7 rings, far ones the
#:     long-range SF12 ring) — the classic static ADR-like allocation.
#: ``random``
#:     Uniform random SF7–SF12 per device from the scenario's dedicated
#:     ``sf-allocation`` random stream.
SF_POLICIES: Tuple[str, ...] = ("fixed-sf7", "distance-based", "random")

#: EU868 defines three mandatory 125 kHz uplink channels and allows eight;
#: the channel plan here is abstract (indices, not frequencies), so any
#: positive count is accepted, but presets stay within the EU868 limit.
MAX_EU868_UPLINK_CHANNELS = 8


@dataclass(frozen=True)
class RadioConfig:
    """The radio-layer degrees of freedom of a scenario.

    ``num_channels`` is the number of orthogonal uplink channels; devices are
    assigned one deterministically (round-robin by device index) and stay on
    it, as Class-A/C sensor firmware commonly does.  ``sf_policy`` names how
    spreading factors are allocated across the fleet (see
    :data:`SF_POLICIES`).
    """

    num_channels: int = 1
    sf_policy: str = "fixed-sf7"

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {self.num_channels}")
        if self.sf_policy not in SF_POLICIES:
            raise ValueError(
                f"unknown sf_policy {self.sf_policy!r}; available: {list(SF_POLICIES)}"
            )

    @property
    def is_default(self) -> bool:
        """True for the paper's single-channel fixed-SF7 configuration."""
        return self == RadioConfig()

    def with_channels(self, num_channels: int) -> "RadioConfig":
        """A copy with a different uplink channel count."""
        return replace(self, num_channels=num_channels)

    def with_sf_policy(self, sf_policy: str) -> "RadioConfig":
        """A copy with a different spreading-factor allocation policy."""
        return replace(self, sf_policy=sf_policy)
