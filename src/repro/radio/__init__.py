"""The pluggable radio-medium subsystem.

:class:`~repro.radio.config.RadioConfig` describes a scenario's channel plan
and spreading-factor policy, :mod:`~repro.radio.sf_policy` allocates per-device
(SF, channel) assignments, and :class:`~repro.radio.medium.RadioMedium` is the
shared medium the simulation engine transmits through: per-SF airtime and
sensitivity, the same-SF/same-channel collision+capture model, and collision
registry pruning.
"""

from repro.radio.config import MAX_EU868_UPLINK_CHANNELS, SF_POLICIES, RadioConfig
from repro.radio.medium import (
    COLLISION_RETENTION_S,
    PRUNE_THRESHOLD,
    RadioMedium,
)
from repro.radio.sf_policy import RadioAssignment, allocate_radio, distance_based_sf

__all__ = [
    "COLLISION_RETENTION_S",
    "MAX_EU868_UPLINK_CHANNELS",
    "PRUNE_THRESHOLD",
    "RadioAssignment",
    "RadioConfig",
    "RadioMedium",
    "SF_POLICIES",
    "allocate_radio",
    "distance_based_sf",
]
