"""Network model: nodes, the time-varying graph G(N, L, C(t)) and contacts.

This package implements the system model of Sec. III-A: devices (LoRa
end-devices on buses) and sinks (gateways) as nodes, device-to-device and
device-to-sink links whose capacity ``c_{x,y}(t)`` follows positions and the
RSSI→capacity mapping, and utilities to extract contact intervals from
mobility traces for analysis and testing.
"""

from repro.network.contact import (
    ContactInterval,
    extract_contact_graph,
    extract_contacts,
    extract_contacts_scalar,
    extract_sink_contacts,
    extract_sink_contacts_scalar,
    sample_times,
)
from repro.network.node import DeviceNode, Node, NodeKind, SinkNode
from repro.network.spatial import UniformGridIndex
from repro.network.topology import LinkState, TimeVaryingTopology, TopologyConfig

__all__ = [
    "ContactInterval",
    "extract_contact_graph",
    "extract_contacts",
    "extract_contacts_scalar",
    "extract_sink_contacts",
    "extract_sink_contacts_scalar",
    "sample_times",
    "DeviceNode",
    "Node",
    "NodeKind",
    "SinkNode",
    "UniformGridIndex",
    "LinkState",
    "TimeVaryingTopology",
    "TopologyConfig",
]
