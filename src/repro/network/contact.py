"""Contact extraction: when can two nodes talk, and for how long?

The forwarding protocols never see these intervals directly (they only learn
about contacts through overheard packets), but the analysis layer and several
tests need ground-truth contact structure — e.g. to check that RCA-ETX's
estimated service time tracks the true time-to-next-gateway-contact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace


@dataclass(frozen=True)
class ContactInterval:
    """A maximal interval during which two nodes stay within range."""

    node_a: str
    node_b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("contact end must not precede start")

    @property
    def duration(self) -> float:
        """Contact duration in seconds."""
        return self.end - self.start

    def contains(self, time: float) -> bool:
        """True when ``time`` falls inside the contact."""
        return self.start <= time <= self.end


def _scan_contacts(
    node_a: str,
    node_b: str,
    in_range: Callable[[float], Optional[bool]],
    start: float,
    end: float,
    step: float,
) -> List[ContactInterval]:
    """Sample ``in_range`` on a fixed grid and merge consecutive in-range samples."""
    if step <= 0:
        raise ValueError("step must be positive")
    if end <= start:
        return []
    contacts: List[ContactInterval] = []
    contact_start: Optional[float] = None
    time = start
    previous_time = start
    while time <= end + 1e-9:
        connected = in_range(time)
        if connected and contact_start is None:
            contact_start = time
        elif not connected and contact_start is not None:
            contacts.append(ContactInterval(node_a, node_b, contact_start, previous_time))
            contact_start = None
        previous_time = time
        time += step
    if contact_start is not None:
        contacts.append(ContactInterval(node_a, node_b, contact_start, min(previous_time, end)))
    return contacts


def extract_contacts(
    trace_a: MobilityTrace,
    trace_b: MobilityTrace,
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Contact intervals between two mobile traces, sampled every ``step_s`` seconds."""
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    start = max(trace_a.start_time, trace_b.start_time)
    end = min(trace_a.end_time, trace_b.end_time)

    def in_range(time: float) -> bool:
        pos_a = trace_a.position_at(time)
        pos_b = trace_b.position_at(time)
        if pos_a is None or pos_b is None:
            return False
        return pos_a.distance_to(pos_b) <= range_m

    return _scan_contacts(
        trace_a.node_id or "a", trace_b.node_id or "b", in_range, start, end, step_s
    )


def extract_sink_contacts(
    trace: MobilityTrace,
    sink_positions: Sequence[Point],
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Contact intervals between a mobile trace and the *set* of sinks.

    A device is "in contact with S" whenever at least one gateway is within
    ``range_m`` — exactly the virtual link (x, S) of the system model.
    """
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    if not sink_positions:
        return []

    def in_range(time: float) -> bool:
        position = trace.position_at(time)
        if position is None:
            return False
        return any(position.distance_to(sink) <= range_m for sink in sink_positions)

    return _scan_contacts(
        trace.node_id or "device", "sinks", in_range, trace.start_time, trace.end_time, step_s
    )


def total_contact_time(contacts: Sequence[ContactInterval]) -> float:
    """Sum of contact durations in seconds."""
    return sum(contact.duration for contact in contacts)


def inter_contact_times(contacts: Sequence[ContactInterval]) -> List[float]:
    """Gaps between consecutive contacts (the quantity RPST has to estimate)."""
    ordered = sorted(contacts, key=lambda c: c.start)
    return [
        later.start - earlier.end
        for earlier, later in zip(ordered, ordered[1:])
        if later.start >= earlier.end
    ]
