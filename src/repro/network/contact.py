"""Contact extraction: when can two nodes talk, and for how long?

The forwarding protocols never see these intervals directly (they only learn
about contacts through overheard packets), but the analysis layer and several
tests need ground-truth contact structure — e.g. to check that RCA-ETX's
estimated service time tracks the true time-to-next-gateway-contact.

Contacts are defined on a fixed sample grid: ``time_k = start + k * step``
for ``k = 0, 1, …`` up to the last grid point at or before ``end`` (with a
relative tolerance of one part per billion of a step for float drift).  Consecutive in-range samples merge into one
:class:`ContactInterval` spanning the first through the last connected
sample.  Two edge cases of that definition are deliberate and pinned by
``tests/network/test_contact.py``:

* a contact seen in exactly **one** sample yields a zero-duration (point)
  interval — it is still a contact, the grid just cannot resolve its width;
* :func:`inter_contact_times` only reports **non-negative** gaps; overlapping
  intervals (possible when aggregating contacts of different pairs) produce
  no entry rather than a negative one.

There are two implementations of every extractor.  The production path
(:func:`extract_contacts`, :func:`extract_sink_contacts`,
:func:`extract_contact_graph`) samples whole grids at once through
:meth:`~repro.mobility.trace.MobilityTrace.positions_at` and, for the
all-pairs graph, prunes pairs that can never meet with a
:class:`~repro.network.spatial.UniformGridIndex` over coarse time windows.
The scalar scan (:func:`extract_contacts_scalar`,
:func:`extract_sink_contacts_scalar`) is the brute-force reference oracle;
``tests/network/test_contact_pipeline.py`` property-checks that both paths
return *identical* intervals, and
``benchmarks/test_bench_contact_extraction.py`` pins the vectorized path at
≥5× the oracle's speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace
from repro.network.spatial import UniformGridIndex


@dataclass(frozen=True)
class ContactInterval:
    """A maximal interval during which two nodes stay within range.

    ``start == end`` is legal and means a *point contact*: the pair was in
    range at exactly one sample of the extraction grid.
    """

    node_a: str
    node_b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("contact end must not precede start")

    @property
    def duration(self) -> float:
        """Contact duration in seconds (0 for single-sample point contacts)."""
        return self.end - self.start

    def contains(self, time: float) -> bool:
        """True when ``time`` falls inside the contact."""
        return self.start <= time <= self.end


# --------------------------------------------------------------------- #
# The sample grid
# --------------------------------------------------------------------- #
def _sample_count(start: float, end: float, step: float) -> int:
    """Number of grid samples ``start + k * step`` with ``k*step <= end-start``.

    The ``1e-9`` is *relative* — one part per billion of a step (10 ns at the
    default 10 s step) — and keeps a grid whose last step lands a
    float-rounding hair past ``end`` from losing its final sample.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if end <= start:
        return 0
    if math.isinf(end):
        raise ValueError(
            "cannot grid-sample an open-ended interval; bound the trace "
            "(e.g. MobilityTrace.static(..., end=horizon))"
        )
    return int(math.floor((end - start) / step + 1e-9)) + 1


def sample_times(start: float, end: float, step: float) -> np.ndarray:
    """The extraction grid over ``[start, end]`` as a float array.

    Both the vectorized pipeline and the scalar oracle sample exactly these
    times (computed as ``start + k * step``, never by accumulation, so the
    two paths agree bit-for-bit).
    """
    count = _sample_count(start, end, step)
    return start + step * np.arange(count)


# --------------------------------------------------------------------- #
# Scalar reference scan (the oracle)
# --------------------------------------------------------------------- #
def _scan_contacts(
    node_a: str,
    node_b: str,
    in_range: Callable[[float], Optional[bool]],
    start: float,
    end: float,
    step: float,
) -> List[ContactInterval]:
    """Sample ``in_range`` on the grid and merge consecutive in-range samples.

    A run of connected samples ``i..j`` becomes the interval
    ``[start + i*step, start + j*step]``; a run of length one therefore
    becomes a zero-duration point contact (see the module docstring).  The
    final sample may overshoot ``end`` by the grid tolerance, so a trailing
    contact is clipped back to ``end``.
    """
    contacts: List[ContactInterval] = []
    contact_start: Optional[float] = None
    last_connected = start
    for k in range(_sample_count(start, end, step)):
        time = start + k * step
        connected = in_range(time)
        if connected:
            if contact_start is None:
                contact_start = time
            last_connected = time
        elif contact_start is not None:
            contacts.append(ContactInterval(node_a, node_b, contact_start, last_connected))
            contact_start = None
    if contact_start is not None:
        contacts.append(
            ContactInterval(node_a, node_b, contact_start, min(last_connected, end))
        )
    return contacts


def extract_contacts_scalar(
    trace_a: MobilityTrace,
    trace_b: MobilityTrace,
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Brute-force reference for :func:`extract_contacts` (one
    :meth:`~repro.mobility.trace.MobilityTrace.position_at` call per trace
    per grid sample).  Kept as the oracle the property tests compare the
    vectorized pipeline against."""
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    start = max(trace_a.start_time, trace_b.start_time)
    end = min(trace_a.end_time, trace_b.end_time)

    def in_range(time: float) -> bool:
        pos_a = trace_a.position_at(time)
        pos_b = trace_b.position_at(time)
        if pos_a is None or pos_b is None:
            return False
        return pos_a.distance_to(pos_b) <= range_m

    return _scan_contacts(
        trace_a.node_id or "a", trace_b.node_id or "b", in_range, start, end, step_s
    )


def extract_sink_contacts_scalar(
    trace: MobilityTrace,
    sink_positions: Sequence[Point],
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Brute-force reference for :func:`extract_sink_contacts`."""
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    if not sink_positions:
        return []

    def in_range(time: float) -> bool:
        position = trace.position_at(time)
        if position is None:
            return False
        return any(position.distance_to(sink) <= range_m for sink in sink_positions)

    return _scan_contacts(
        trace.node_id or "device", "sinks", in_range, trace.start_time, trace.end_time, step_s
    )


# --------------------------------------------------------------------- #
# Vectorized pipeline
# --------------------------------------------------------------------- #
def _intervals_from_mask(
    node_a: str,
    node_b: str,
    start: float,
    end: float,
    step: float,
    connected: np.ndarray,
) -> List[ContactInterval]:
    """Merge a boolean per-sample mask into contact intervals.

    Reproduces :func:`_scan_contacts` exactly: run ``i..j`` of ``True``
    samples → interval ``[start + i*step, start + j*step]``, with a trailing
    run clipped to ``end``.
    """
    if connected.size == 0 or not connected.any():
        return []
    edges = np.diff(np.concatenate(([False], connected, [False])).astype(np.int8))
    run_starts = np.flatnonzero(edges == 1)
    run_ends = np.flatnonzero(edges == -1) - 1  # inclusive sample index
    last_index = connected.size - 1
    intervals: List[ContactInterval] = []
    for i, j in zip(run_starts, run_ends):
        interval_start = start + int(i) * step
        interval_end = start + int(j) * step
        if j == last_index:
            interval_end = min(interval_end, end)
        intervals.append(ContactInterval(node_a, node_b, interval_start, interval_end))
    return intervals


def extract_contacts(
    trace_a: MobilityTrace,
    trace_b: MobilityTrace,
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Contact intervals between two mobile traces, sampled every ``step_s``
    seconds.

    Vectorized: both traces are sampled over the whole grid in one
    :meth:`~repro.mobility.trace.MobilityTrace.positions_at` call each, and
    the in-range mask is merged into intervals with array ops.  Returns
    exactly what :func:`extract_contacts_scalar` returns.
    """
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    start = max(trace_a.start_time, trace_b.start_time)
    end = min(trace_a.end_time, trace_b.end_time)
    if end <= start:
        return []
    times = sample_times(start, end, step_s)
    positions_a = trace_a.positions_at(times)
    positions_b = trace_b.positions_at(times)
    distances = np.hypot(
        positions_a[:, 0] - positions_b[:, 0], positions_a[:, 1] - positions_b[:, 1]
    )
    connected = distances <= range_m  # NaN (inactive) compares False
    return _intervals_from_mask(
        trace_a.node_id or "a", trace_b.node_id or "b", start, end, step_s, connected
    )


def extract_sink_contacts(
    trace: MobilityTrace,
    sink_positions: Sequence[Point],
    range_m: float,
    step_s: float = 10.0,
) -> List[ContactInterval]:
    """Contact intervals between a mobile trace and the *set* of sinks.

    A device is "in contact with S" whenever at least one gateway is within
    ``range_m`` — exactly the virtual link (x, S) of the system model; the
    per-sink in-range masks are OR-ed, so overlapping coverage of several
    gateways unions into one interval.  Vectorized like
    :func:`extract_contacts`; bit-identical to
    :func:`extract_sink_contacts_scalar`.
    """
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    if not sink_positions:
        return []
    start, end = trace.start_time, trace.end_time
    if end <= start:
        return []
    times = sample_times(start, end, step_s)
    positions = trace.positions_at(times)
    connected = np.zeros(times.size, dtype=bool)
    for sink in sink_positions:
        distances = np.hypot(positions[:, 0] - sink.x, positions[:, 1] - sink.y)
        connected |= distances <= range_m
    return _intervals_from_mask(
        trace.node_id or "device", "sinks", start, end, step_s, connected
    )


# --------------------------------------------------------------------- #
# All-pairs contact graph with spatial pair pruning
# --------------------------------------------------------------------- #
def _window_boxes(
    traces: Sequence[MobilityTrace], window_start: float, window_end: float
) -> List[Optional[Tuple[float, float, float, float]]]:
    """Per-trace axis-aligned bounding box of the path inside one time window.

    Built from the trace's own waypoints inside the window plus the
    interpolated positions at the window boundaries, so it encloses every
    point of the *continuous* path — and therefore every possible grid
    sample, whatever grid anchor a pair ends up with.  ``None`` marks a trace
    inactive throughout the window.
    """
    boxes: List[Optional[Tuple[float, float, float, float]]] = []
    for trace in traces:
        lo = max(window_start, trace.start_time)
        hi = min(window_end, trace.end_time)
        if hi < lo:
            boxes.append(None)
            continue
        xs: List[float] = []
        ys: List[float] = []
        for boundary in (lo, hi):
            position = trace.position_at(boundary)
            if position is not None:
                xs.append(position.x)
                ys.append(position.y)
        for point in trace.points_in_span(lo, hi):
            xs.append(point.position.x)
            ys.append(point.position.y)
        if not xs:
            boxes.append(None)
            continue
        boxes.append((min(xs), min(ys), max(xs), max(ys)))
    return boxes


def _candidate_pairs(
    traces: Sequence[MobilityTrace], range_m: float, window_s: float
) -> Set[Tuple[int, int]]:
    """Index pairs that *may* share an in-range sample (conservative superset).

    For each coarse time window, every active trace's path bounding box goes
    into a :class:`UniformGridIndex` by its centre; a pair survives when, in
    at least one window, the gap between the two boxes is within ``range_m``.
    A pair connected at some sample time has both positions inside its boxes
    for that window, so the box gap bounds the true distance from below —
    pruned pairs provably have no contact.
    """
    starts = [trace.start_time for trace in traces]
    ends = [trace.end_time for trace in traces]
    global_start, global_end = min(starts), max(ends)
    if math.isinf(global_end):
        raise ValueError(
            "extract_contact_graph needs bounded traces; give static traces "
            "an explicit end time"
        )
    candidates: Set[Tuple[int, int]] = set()
    num_windows = max(1, math.ceil((global_end - global_start) / window_s))
    for window in range(num_windows):
        window_start = global_start + window * window_s
        window_end = min(global_start + (window + 1) * window_s, global_end)
        boxes = _window_boxes(traces, window_start, window_end)
        live = [index for index, box in enumerate(boxes) if box is not None]
        if len(live) < 2:
            continue
        index_grid = UniformGridIndex(cell_size_m=max(range_m, 1e-9))
        half_extents: dict = {}
        max_half_diagonal = 0.0
        for trace_index in live:
            min_x, min_y, max_x, max_y = boxes[trace_index]
            half_w = (max_x - min_x) / 2.0
            half_h = (max_y - min_y) / 2.0
            centre = Point(min_x + half_w, min_y + half_h)
            half_extents[trace_index] = (centre, half_w, half_h)
            max_half_diagonal = max(max_half_diagonal, math.hypot(half_w, half_h))
            index_grid.insert(str(trace_index), centre)
        for trace_index in live:
            centre, half_w, half_h = half_extents[trace_index]
            radius = range_m + math.hypot(half_w, half_h) + max_half_diagonal
            for other_id in index_grid.candidates_in_disc(centre, radius):
                other = int(other_id)
                if other <= trace_index:
                    continue
                pair = (trace_index, other)
                if pair in candidates:
                    continue
                other_centre, other_w, other_h = half_extents[other]
                gap_x = max(0.0, abs(centre.x - other_centre.x) - (half_w + other_w))
                gap_y = max(0.0, abs(centre.y - other_centre.y) - (half_h + other_h))
                if math.hypot(gap_x, gap_y) <= range_m:
                    candidates.add(pair)
    return candidates


def extract_contact_graph(
    traces: Sequence[MobilityTrace],
    range_m: float,
    step_s: float = 10.0,
    window_s: float = 900.0,
) -> List[ContactInterval]:
    """Contact intervals between every pair of ``traces``.

    Equivalent to running :func:`extract_contacts` over all N·(N−1)/2 pairs
    — same intervals, same order (pairs in input order with ``i < j``,
    time-sorted within a pair) — but pairs that provably never meet are
    pruned first with a uniform-grid spatial index over ``window_s``-wide
    time windows (see :func:`_candidate_pairs`), mirroring how the PR-1
    spatial index prunes the topology's neighbour scans.
    """
    if range_m <= 0:
        raise ValueError("range_m must be positive")
    trace_list = list(traces)
    if len(trace_list) < 2:
        return []
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    candidates = _candidate_pairs(trace_list, range_m, window_s)
    contacts: List[ContactInterval] = []
    for first, second in sorted(candidates):
        contacts.extend(
            extract_contacts(trace_list[first], trace_list[second], range_m, step_s)
        )
    return contacts


# --------------------------------------------------------------------- #
# Aggregates
# --------------------------------------------------------------------- #
def total_contact_time(contacts: Sequence[ContactInterval]) -> float:
    """Sum of contact durations in seconds."""
    return sum(contact.duration for contact in contacts)


def inter_contact_times(contacts: Sequence[ContactInterval]) -> List[float]:
    """Gaps between consecutive contacts (the quantity RPST has to estimate).

    Contacts are ordered by start time and each consecutive pair contributes
    ``later.start - earlier.end``.  Touching intervals contribute a gap of
    exactly ``0.0``; an **overlapping** pair (possible when the input mixes
    contacts of different node pairs, whose intervals need not be disjoint)
    would yield a negative gap and is skipped instead — the result only ever
    holds non-negative waiting times.
    """
    ordered = sorted(contacts, key=lambda c: c.start)
    gaps: List[float] = []
    for earlier, later in zip(ordered, ordered[1:]):
        gap = later.start - earlier.end
        if gap >= 0:
            gaps.append(gap)
    return gaps
