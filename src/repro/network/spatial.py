"""Uniform-grid spatial index for range queries over node positions.

Both :meth:`TimeVaryingTopology.neighbours` and
:meth:`TimeVaryingTopology.gateways_in_range` answer "which nodes are within
``r`` metres of here?".  Scanning every node per query is O(N) and dominates
large scenarios; hashing positions into square cells of side ``r`` reduces a
query to the at most 3×3 block of cells overlapping the query disc.

The index is a *candidate filter*, not an oracle: callers always re-check the
exact distance of each candidate, so a coarse (cell-level) superset never
changes connectivity decisions.  Query results preserve insertion order, which
keeps downstream iteration order — and therefore whole-simulation event order
and random-stream consumption — bit-identical to a full scan.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.mobility.geometry import Point

#: Absolute slack (metres) added to vectorized range tests so the squared
#: distance comparison is a strict superset of the scalar ``math.hypot`` disc.
#: Sub-micrometre rounding is the worst case at realistic coordinates, so a
#: micrometre of slack over-covers by orders of magnitude while admitting no
#: meaningfully-out-of-range pair.
RANGE_MASK_SLACK_M = 1e-6


def pairwise_in_range_mask(xs: np.ndarray, ys: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean (n, n) mask of point pairs within ``range_m`` of each other.

    Computed on squared distances with :data:`RANGE_MASK_SLACK_M` of slack, so
    the ``True`` entries form a superset of the pairs whose exact
    ``math.hypot`` distance is ``<= range_m`` — callers that need exactness
    re-check survivors with the scalar arithmetic.  The diagonal is cleared.
    """
    if range_m < 0:
        raise ValueError(f"range_m must be non-negative, got {range_m}")
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    dx = xs[:, None] - xs[None, :]
    dy = ys[:, None] - ys[None, :]
    reach = range_m + RANGE_MASK_SLACK_M
    mask = (dx * dx + dy * dy) <= reach * reach
    np.fill_diagonal(mask, False)
    return mask


class UniformGridIndex:
    """Points hashed into square cells of a fixed size.

    The index is build-once: positions are inserted (typically from one
    coarse-position snapshot) and queried; a new snapshot means a new index.
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m}")
        self.cell_size_m = float(cell_size_m)
        self._cells: Dict[Tuple[int, int], List[str]] = {}
        self._positions: Dict[str, Point] = {}
        self._order: Dict[str, int] = {}

    @classmethod
    def from_positions(
        cls, positions: Mapping[str, Point], cell_size_m: float
    ) -> "UniformGridIndex":
        """Build an index holding every (id, position) pair of ``positions``."""
        index = cls(cell_size_m)
        for item_id, position in positions.items():
            index.insert(item_id, position)
        return index

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._positions

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def position_of(self, item_id: str) -> Point:
        """The stored position of ``item_id``."""
        return self._positions[item_id]

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (
            int(math.floor(x / self.cell_size_m)),
            int(math.floor(y / self.cell_size_m)),
        )

    def insert(self, item_id: str, position: Point) -> None:
        """Add one point; ids are unique (the index is rebuilt, never updated)."""
        if item_id in self._positions:
            raise ValueError(f"duplicate id {item_id!r} in spatial index")
        self._order[item_id] = len(self._order)
        self._positions[item_id] = position
        self._cells.setdefault(self._cell_of(position.x, position.y), []).append(item_id)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _cells_overlapping(
        self, center: Point, half_extent_m: float
    ) -> Iterator[List[str]]:
        # One extra cell of padding on every side: a point a hair outside the
        # query square can still pass the caller's *computed* distance test
        # when the subtraction rounds to the boundary, and it must then be a
        # candidate.  Rounding error is sub-micrometre at any realistic
        # coordinate, so one cell is a vast over-cover.
        min_cx, min_cy = self._cell_of(center.x - half_extent_m, center.y - half_extent_m)
        max_cx, max_cy = self._cell_of(center.x + half_extent_m, center.y + half_extent_m)
        min_cx, min_cy, max_cx, max_cy = min_cx - 1, min_cy - 1, max_cx + 1, max_cy + 1
        window = (max_cx - min_cx + 1) * (max_cy - min_cy + 1)
        if window > len(self._cells):
            # Query range much coarser than the cell size: walking the whole
            # window would visit mostly-empty cells, so filter the occupied
            # cells instead.  Bounds any query at O(occupied cells).
            for (cx, cy), cell in self._cells.items():
                if min_cx <= cx <= max_cx and min_cy <= cy <= max_cy:
                    yield cell
            return
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                cell = self._cells.get((cx, cy))
                if cell:
                    yield cell

    def candidates_in_disc(self, center: Point, radius_m: float) -> List[str]:
        """Ids stored in cells overlapping the disc, in insertion order.

        A superset of the ids within Euclidean ``radius_m`` of ``center``;
        callers must apply the exact distance test themselves.
        """
        if radius_m < 0:
            raise ValueError(f"radius_m must be non-negative, got {radius_m}")
        found: List[str] = []
        for cell in self._cells_overlapping(center, radius_m):
            found.extend(cell)
        found.sort(key=self._order.__getitem__)
        return found

    def ids_in_square(self, center: Point, half_extent_m: float) -> List[str]:
        """Ids whose stored position lies within Chebyshev distance
        ``half_extent_m`` of ``center`` (boundary included), in insertion order.

        This is exact with respect to the *stored* positions — it reproduces a
        full-scan ``abs(dx) <= h and abs(dy) <= h`` filter.
        """
        if half_extent_m < 0:
            raise ValueError(f"half_extent_m must be non-negative, got {half_extent_m}")
        found: List[str] = []
        for cell in self._cells_overlapping(center, half_extent_m):
            for item_id in cell:
                position = self._positions[item_id]
                if (
                    abs(position.x - center.x) <= half_extent_m
                    and abs(position.y - center.y) <= half_extent_m
                ):
                    found.append(item_id)
        found.sort(key=self._order.__getitem__)
        return found
