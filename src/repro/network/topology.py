"""The time-varying weighted graph G(N, L, C(t)) of Sec. III-A.

:class:`TimeVaryingTopology` answers, for any simulation time ``t``:

* where every node is (or that it is inactive);
* the RSSI and capacity of any device-to-device link ``c_{x,y}(t)``;
* the best-gateway RSSI and the virtual device-to-sink capacity
  ``c_{x,S}(t)``;
* which devices are opportunistic neighbours of a given device.

Connectivity combines a hard communication-range cut-off (1 km for
device-to-gateway at SF7, 0.5 km urban / 1 km rural for device-to-device,
Sec. VII-A6) with the RSSI→capacity mapping of Eq. (5) inside that range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.geometry import Point
from repro.network.node import DeviceNode, SinkNode
from repro.network.spatial import UniformGridIndex, pairwise_in_range_mask
from repro.phy.constants import DEFAULT_TX_POWER_DBM, SpreadingFactor
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel


@dataclass(frozen=True)
class LinkState:
    """A snapshot of one link at one instant."""

    rssi_dbm: float
    capacity_bps: float
    distance_m: float

    @property
    def connected(self) -> bool:
        """True when the link can carry data right now."""
        return self.capacity_bps > 0.0


@dataclass(frozen=True)
class TopologyConfig:
    """Radio-geometry parameters of the scenario."""

    gateway_range_m: float = 1000.0
    device_range_m: float = 500.0
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    shadowing_enabled: bool = False

    def __post_init__(self) -> None:
        if self.gateway_range_m <= 0 or self.device_range_m <= 0:
            raise ValueError("communication ranges must be positive")


class TimeVaryingTopology:
    """Positions, links and neighbourhoods as functions of time."""

    #: Maximum assumed device speed (m/s) used to bound the staleness of the
    #: cached-position coarse filter in :meth:`neighbours`.
    MAX_DEVICE_SPEED_MPS = 12.0

    def __init__(
        self,
        devices: Sequence[DeviceNode],
        sinks: Sequence[SinkNode],
        config: TopologyConfig = TopologyConfig(),
        path_loss: Optional[PathLossModel] = None,
        capacity_model: Optional[LinkCapacityModel] = None,
        rng: Optional[np.random.Generator] = None,
        position_cache_window_s: float = 15.0,
        sf_by_node: Optional[Mapping[str, SpreadingFactor]] = None,
    ) -> None:
        if not sinks:
            raise ValueError("a topology needs at least one sink")
        self.devices: Dict[str, DeviceNode] = {d.node_id: d for d in devices}
        self.sinks: Dict[str, SinkNode] = {s.node_id: s for s in sinks}
        if len(self.devices) != len(devices):
            raise ValueError("duplicate device identifiers")
        if len(self.sinks) != len(sinks):
            raise ValueError("duplicate sink identifiers")
        overlap = set(self.devices) & set(self.sinks)
        if overlap:
            raise ValueError(f"identifiers used for both devices and sinks: {sorted(overlap)}")
        self.config = config
        self.path_loss = path_loss or LogDistancePathLoss()
        self.capacity_model = capacity_model or LinkCapacityModel.for_spreading_factor(
            config.spreading_factor
        )
        # Per-node spreading factors make link capacity SF-dependent: a link
        # whose transmitter runs a slower SF carries fewer bits per second
        # (Eq. 5 scaled to that SF's duty-cycle-limited bitrate).  Nodes
        # without an entry — and every node at the topology's base SF — use
        # the base capacity model, so single-SF scenarios are untouched.
        self._sf_by_node: Dict[str, SpreadingFactor] = dict(sf_by_node or {})
        self._capacity_by_sf: Dict[SpreadingFactor, LinkCapacityModel] = {
            config.spreading_factor: self.capacity_model
        }
        self._rng = rng
        if position_cache_window_s < 0:
            raise ValueError("position_cache_window_s must be non-negative")
        self._cache_window = position_cache_window_s
        self._cache_bucket: Optional[int] = None
        self._exact_cache_time: Optional[float] = None
        self._cached_positions: Dict[str, Optional[Point]] = {}
        # Devices visit the grid index through their coarse (bucket-start)
        # positions; devices without a coarse position fall outside the index
        # and are tracked separately.  Gateways never move, so their index is
        # built once.
        self._device_index: Optional[UniformGridIndex] = None
        self._unindexed_device_ids: List[str] = []
        self._device_order: Dict[str, int] = {
            device_id: i for i, device_id in enumerate(self.devices)
        }
        self._sink_index = UniformGridIndex.from_positions(
            {s.node_id: s.position for s in sinks}, config.gateway_range_m
        )
        #: Query statistics (reset with :meth:`reset_query_stats`); the spatial
        #: micro-benchmark asserts the index examines far fewer candidates than
        #: a full scan would.
        self.neighbour_query_count = 0
        self.neighbour_candidate_count = 0
        self.index_rebuild_count = 0

    # ------------------------------------------------------------------ #
    # Positions
    # ------------------------------------------------------------------ #
    def device_position(self, device_id: str, time: float) -> Optional[Point]:
        """Position of ``device_id`` at ``time`` or ``None`` when inactive/unknown."""
        device = self.devices.get(device_id)
        if device is None:
            raise KeyError(f"unknown device {device_id!r}")
        return device.position_at(time)

    def sink_position(self, sink_id: str) -> Point:
        """Position of the gateway ``sink_id``."""
        sink = self.sinks.get(sink_id)
        if sink is None:
            raise KeyError(f"unknown sink {sink_id!r}")
        return sink.position

    def active_devices(self, time: float) -> List[str]:
        """Identifiers of devices that are on the road at ``time``."""
        return [d.node_id for d in self.devices.values() if d.is_active(time)]

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def node_spreading_factor(self, node_id: str) -> SpreadingFactor:
        """The spreading factor ``node_id`` transmits with (base SF by default)."""
        return self._sf_by_node.get(node_id, self.config.spreading_factor)

    def capacity_model_for(self, node_id: str) -> LinkCapacityModel:
        """The capacity model matching the transmitter's spreading factor."""
        sf = self.node_spreading_factor(node_id)
        model = self._capacity_by_sf.get(sf)
        if model is None:
            model = LinkCapacityModel.for_spreading_factor(sf)
            self._capacity_by_sf[sf] = model
        return model

    def _link_state(
        self,
        a: Point,
        b: Point,
        range_m: float,
        capacity_model: Optional[LinkCapacityModel] = None,
    ) -> LinkState:
        distance = a.distance_to(b)
        if distance > range_m:
            return LinkState(rssi_dbm=float("-inf"), capacity_bps=0.0, distance_m=distance)
        rng = self._rng if self.config.shadowing_enabled else None
        rssi = self.path_loss.received_power_dbm(self.config.tx_power_dbm, distance, rng)
        capacity = (capacity_model or self.capacity_model).capacity_bps(rssi)
        return LinkState(rssi_dbm=rssi, capacity_bps=capacity, distance_m=distance)

    def device_link(self, x: str, y: str, time: float) -> LinkState:
        """State of the device-to-device link (x, y) at ``time`` (x transmitting)."""
        pos_x = self.device_position(x, time)
        pos_y = self.device_position(y, time)
        if pos_x is None or pos_y is None:
            return LinkState(float("-inf"), 0.0, float("inf"))
        return self._link_state(
            pos_x, pos_y, self.config.device_range_m, self.capacity_model_for(x)
        )

    def best_gateway(self, device_id: str, time: float) -> Tuple[Optional[str], LinkState]:
        """The closest in-range gateway for ``device_id`` and the link to it.

        Returns ``(None, disconnected LinkState)`` when no gateway is within
        range or the device is inactive.
        """
        position = self.device_position(device_id, time)
        disconnected = LinkState(float("-inf"), 0.0, float("inf"))
        if position is None:
            return None, disconnected
        best_id: Optional[str] = None
        best_state = disconnected
        capacity_model = self.capacity_model_for(device_id)
        for sink_id in self._sink_index.candidates_in_disc(
            position, self.config.gateway_range_m
        ):
            sink = self.sinks[sink_id]
            state = self._link_state(
                position, sink.position, self.config.gateway_range_m, capacity_model
            )
            if state.connected and (best_id is None or state.rssi_dbm > best_state.rssi_dbm):
                best_id = sink.node_id
                best_state = state
        return best_id, best_state

    def sink_capacity(self, device_id: str, time: float) -> float:
        """The virtual link capacity ``c_{x,S}(t)`` (best gateway, 0 when disconnected)."""
        _, state = self.best_gateway(device_id, time)
        return state.capacity_bps

    def gateways_in_range(self, device_id: str, time: float) -> List[Tuple[str, LinkState]]:
        """All gateways currently within range of ``device_id`` with their link states."""
        position = self.device_position(device_id, time)
        if position is None:
            return []
        result: List[Tuple[str, LinkState]] = []
        capacity_model = self.capacity_model_for(device_id)
        for sink_id in self._sink_index.candidates_in_disc(
            position, self.config.gateway_range_m
        ):
            sink = self.sinks[sink_id]
            state = self._link_state(
                position, sink.position, self.config.gateway_range_m, capacity_model
            )
            if state.connected:
                result.append((sink.node_id, state))
        return result

    def _refresh_spatial_cache(self, time: float) -> None:
        """Rebuild the coarse positions and the device grid index when stale.

        Coarse positions are sampled at the start of the current cache window
        (or at ``time`` exactly when the window is zero) and hashed into a
        :class:`UniformGridIndex` with cell size equal to the device range.
        They are only a candidate filter; exact positions are always
        recomputed for the candidates that survive it, so the cache never
        changes connectivity decisions, it only avoids interpolating — and now
        scanning — the whole fleet on every query.
        """
        if self._cache_window <= 0:
            if self._exact_cache_time == time and self._device_index is not None:
                return
            sample_time = time
            self._exact_cache_time = time
        else:
            bucket = int(time // self._cache_window)
            if bucket == self._cache_bucket and self._device_index is not None:
                return
            sample_time = bucket * self._cache_window
            self._cache_bucket = bucket
        self._cached_positions = {
            d.node_id: d.position_at(sample_time) for d in self.devices.values()
        }
        self._device_index = UniformGridIndex(self.config.device_range_m)
        self._unindexed_device_ids = []
        for device_id, coarse_position in self._cached_positions.items():
            if coarse_position is None:
                self._unindexed_device_ids.append(device_id)
            else:
                self._device_index.insert(device_id, coarse_position)
        self.index_rebuild_count += 1

    def neighbours(self, device_id: str, time: float) -> List[Tuple[str, LinkState]]:
        """Opportunistic neighbours D_x(t): active devices with a live link to ``device_id``."""
        position = self.device_position(device_id, time)
        if position is None:
            return []
        self._refresh_spatial_cache(time)
        assert self._device_index is not None
        margin = 2.0 * self.MAX_DEVICE_SPEED_MPS * self._cache_window
        coarse_range = self.config.device_range_m + margin
        candidates = self._device_index.ids_in_square(position, coarse_range)
        if self._unindexed_device_ids:
            # Devices with no coarse position (off the road at the sample
            # instant) bypass the grid; while the cache window is live they
            # are only considered when active right now — exactly the filter
            # the full scan applied.
            extra = [
                other_id
                for other_id in self._unindexed_device_ids
                if self._cache_window <= 0 or self.devices[other_id].is_active(time)
            ]
            if extra:
                candidates = sorted(
                    candidates + extra, key=self._device_order.__getitem__
                )
        self.neighbour_query_count += 1
        result: List[Tuple[str, LinkState]] = []
        capacity_model = self.capacity_model_for(device_id)
        for other_id in candidates:
            if other_id == device_id:
                continue
            self.neighbour_candidate_count += 1
            other_position = self.devices[other_id].position_at(time)
            if other_position is None:
                continue
            state = self._link_state(
                position, other_position, self.config.device_range_m, capacity_model
            )
            if state.connected:
                result.append((other_id, state))
        return result

    def reset_query_stats(self) -> None:
        """Zero the neighbour-query/candidate/rebuild counters."""
        self.neighbour_query_count = 0
        self.neighbour_candidate_count = 0
        self.index_rebuild_count = 0

    def in_contact(self, x: str, y: str, time: float) -> bool:
        """True when devices ``x`` and ``y`` can communicate at ``time``."""
        return self.device_link(x, y, time).connected

    def connectivity_matrix(self, time: float) -> Dict[str, Dict[str, float]]:
        """The capacity matrix C(t) restricted to device-to-device links (sparse dict form).

        Candidate pairs are pruned with a vectorized squared-distance mask (a
        strict superset of the exact in-range pairs), then each surviving
        ``(i < j)`` pair goes through the unchanged scalar
        :meth:`device_link` in the same row-major order as the full double
        loop.  Pairs dropped by the mask are out of range and never draw
        shadowing randomness, so the pruning changes neither the result nor
        the RNG stream.
        """
        matrix: Dict[str, Dict[str, float]] = {}
        ids = self.active_devices(time)
        if len(ids) < 2:
            return matrix
        positions = [self.devices[x].position_at(time) for x in ids]
        xs = np.array([p.x for p in positions], dtype=float)
        ys = np.array([p.y for p in positions], dtype=float)
        mask = pairwise_in_range_mask(xs, ys, self.config.device_range_m)
        rows, cols = np.nonzero(np.triu(mask, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            x, y = ids[i], ids[j]
            state = self.device_link(x, y, time)
            if state.connected:
                matrix.setdefault(x, {})[y] = state.capacity_bps
                matrix.setdefault(y, {})[x] = state.capacity_bps
        return matrix
