"""Node descriptions: devices (mobile) and sinks (static gateways)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace


class NodeKind(Enum):
    """Whether a node generates data (device) or collects it (sink)."""

    DEVICE = "device"
    SINK = "sink"


@dataclass(frozen=True)
class Node:
    """Base identity shared by devices and sinks."""

    node_id: str
    kind: NodeKind

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be a non-empty string")


@dataclass(frozen=True)
class DeviceNode(Node):
    """A mobile LoRa end-device following a mobility trace."""

    trace: Optional[MobilityTrace] = None

    def __init__(self, node_id: str, trace: MobilityTrace) -> None:
        object.__setattr__(self, "node_id", node_id)
        object.__setattr__(self, "kind", NodeKind.DEVICE)
        object.__setattr__(self, "trace", trace)
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        if trace is None:
            raise ValueError("a DeviceNode requires a mobility trace")

    def position_at(self, time: float) -> Optional[Point]:
        """Interpolated position at ``time`` or ``None`` when off the road."""
        return self.trace.position_at(time)

    def is_active(self, time: float) -> bool:
        """True when the device is powered and mobile at ``time``."""
        return self.trace.is_active(time)


@dataclass(frozen=True)
class SinkNode(Node):
    """A static LoRaWAN gateway."""

    position: Point = Point(0.0, 0.0)

    def __init__(self, node_id: str, position: Point) -> None:
        object.__setattr__(self, "node_id", node_id)
        object.__setattr__(self, "kind", NodeKind.SINK)
        object.__setattr__(self, "position", position)
        if not node_id:
            raise ValueError("node_id must be a non-empty string")

    def position_at(self, time: float) -> Point:
        """A sink's position is time-invariant."""
        return self.position

    def is_active(self, time: float) -> bool:
        """Gateways are always on."""
        return True
