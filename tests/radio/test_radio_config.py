"""RadioConfig validation and derivation helpers."""

import pytest

from repro.radio.config import SF_POLICIES, RadioConfig


class TestRadioConfig:
    def test_default_is_the_paper_setting(self):
        config = RadioConfig()
        assert config.num_channels == 1
        assert config.sf_policy == "fixed-sf7"
        assert config.is_default

    def test_policies_catalogue(self):
        assert set(SF_POLICIES) == {"fixed-sf7", "distance-based", "random"}

    @pytest.mark.parametrize("policy", SF_POLICIES)
    def test_every_registered_policy_accepted(self, policy):
        assert RadioConfig(sf_policy=policy).sf_policy == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="sf_policy"):
            RadioConfig(sf_policy="adr")

    def test_non_positive_channels_rejected(self):
        with pytest.raises(ValueError, match="num_channels"):
            RadioConfig(num_channels=0)

    def test_with_helpers_derive_copies(self):
        config = RadioConfig()
        multi = config.with_channels(3).with_sf_policy("random")
        assert multi == RadioConfig(num_channels=3, sf_policy="random")
        assert not multi.is_default
        assert config == RadioConfig()  # original untouched
