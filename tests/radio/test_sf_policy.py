"""Spreading-factor / channel allocation policies."""

import numpy as np
import pytest

from repro.mobility.geometry import Point
from repro.phy.constants import SpreadingFactor
from repro.radio.config import RadioConfig
from repro.radio.sf_policy import RadioAssignment, allocate_radio, distance_based_sf

DEVICES = [f"bus-{i:04d}" for i in range(12)]


class TestDistanceRings:
    def test_ring_edges(self):
        assert distance_based_sf(0.0, 1000.0) == SpreadingFactor.SF7
        assert distance_based_sf(166.0, 1000.0) == SpreadingFactor.SF7
        assert distance_based_sf(500.0, 1000.0) == SpreadingFactor.SF10
        assert distance_based_sf(999.0, 1000.0) == SpreadingFactor.SF12
        assert distance_based_sf(5000.0, 1000.0) == SpreadingFactor.SF12

    def test_monotone_in_distance(self):
        sfs = [distance_based_sf(d, 1000.0) for d in range(0, 2000, 50)]
        assert sfs == sorted(sfs)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            distance_based_sf(-1.0, 1000.0)
        with pytest.raises(ValueError):
            distance_based_sf(100.0, 0.0)


class TestFixedSf7:
    def test_everyone_on_sf7_channel_round_robin(self):
        assignments = allocate_radio(RadioConfig(num_channels=3), DEVICES)
        assert set(assignments) == set(DEVICES)
        assert all(
            a.spreading_factor == SpreadingFactor.SF7 for a in assignments.values()
        )
        channels = [assignments[d].channel for d in DEVICES]
        assert channels == [i % 3 for i in range(len(DEVICES))]

    def test_needs_neither_positions_nor_rng(self):
        assignments = allocate_radio(RadioConfig(), DEVICES)
        assert all(a == RadioAssignment() for a in assignments.values())


class TestDistanceBased:
    def test_sf_grows_with_gateway_distance(self):
        config = RadioConfig(sf_policy="distance-based")
        positions = {d: Point(100.0 * i, 0.0) for i, d in enumerate(DEVICES)}
        assignments = allocate_radio(
            config,
            DEVICES,
            device_positions=positions,
            gateway_positions=[Point(0.0, 0.0)],
            gateway_range_m=1000.0,
        )
        sfs = [int(assignments[d].spreading_factor) for d in DEVICES]
        assert sfs == sorted(sfs)
        assert sfs[0] == 7
        assert sfs[-1] == 12

    def test_nearest_gateway_wins(self):
        config = RadioConfig(sf_policy="distance-based")
        assignments = allocate_radio(
            config,
            ["bus-0000"],
            device_positions={"bus-0000": Point(950.0, 0.0)},
            gateway_positions=[Point(0.0, 0.0), Point(1000.0, 0.0)],
            gateway_range_m=1000.0,
        )
        # 50 m from the second gateway → innermost ring despite being at the
        # edge of the first gateway's cell.
        assert assignments["bus-0000"].spreading_factor == SpreadingFactor.SF7

    def test_unplaceable_device_gets_longest_reach(self):
        config = RadioConfig(sf_policy="distance-based")
        assignments = allocate_radio(
            config,
            ["ghost"],
            device_positions={"ghost": None},
            gateway_positions=[Point(0.0, 0.0)],
        )
        assert assignments["ghost"].spreading_factor == SpreadingFactor.SF12

    def test_missing_gateways_rejected(self):
        with pytest.raises(ValueError, match="gateway positions"):
            allocate_radio(RadioConfig(sf_policy="distance-based"), DEVICES)


class TestRandom:
    def test_deterministic_under_a_seeded_rng(self):
        config = RadioConfig(num_channels=8, sf_policy="random")
        first = allocate_radio(config, DEVICES, rng=np.random.default_rng(5))
        second = allocate_radio(config, DEVICES, rng=np.random.default_rng(5))
        assert first == second
        assert {int(a.spreading_factor) for a in first.values()} <= set(range(7, 13))

    def test_requires_an_rng(self):
        with pytest.raises(ValueError, match="RNG"):
            allocate_radio(RadioConfig(sf_policy="random"), DEVICES)
