"""RadioMedium: per-SF airtime/sensitivity, orthogonality, capture, pruning."""

import numpy as np
import pytest

from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.constants import SENSITIVITY_DBM, SpreadingFactor
from repro.radio.config import RadioConfig
from repro.radio.medium import COLLISION_RETENTION_S, PRUNE_THRESHOLD, RadioMedium


def make_medium(**kwargs) -> RadioMedium:
    return RadioMedium(config=RadioConfig(num_channels=3), **kwargs)


class TestPerSfAirtime:
    def test_sf7_matches_the_plain_calculator(self):
        medium = make_medium()
        reference = AirtimeCalculator(LoRaTransmissionParameters())
        for payload in (0, 20, 100, 255):
            assert medium.airtime_s(payload) == reference.time_on_air_s(payload)

    def test_airtime_grows_with_spreading_factor(self):
        medium = make_medium()
        airtimes = [
            medium.airtime_s(51, sf) for sf in SpreadingFactor
        ]
        assert airtimes == sorted(airtimes)
        # SF12 frames are one and a half orders of magnitude longer than SF7.
        assert airtimes[-1] > 20 * airtimes[0]

    def test_payload_clamped_to_lora_maximum(self):
        medium = make_medium()
        assert medium.airtime_s(10_000) == medium.airtime_s(255)

    def test_ldro_engaged_for_sf11_and_sf12(self):
        medium = make_medium()
        for sf in SpreadingFactor:
            parameters = medium.airtime_calculator(sf).parameters
            expected = sf in (SpreadingFactor.SF11, SpreadingFactor.SF12)
            assert parameters.low_data_rate_optimize is expected, sf

    def test_calculators_are_cached(self):
        medium = make_medium()
        assert medium.airtime_calculator(SpreadingFactor.SF9) is (
            medium.airtime_calculator(SpreadingFactor.SF9)
        )


class TestPerSfSensitivity:
    def test_link_quality_uses_each_sfs_sensitivity(self):
        medium = make_medium()
        for sf in SpreadingFactor:
            assert medium.link_quality(sf).sensitivity_dbm == SENSITIVITY_DBM[sf]

    def test_slower_sf_decodes_weaker_frames(self):
        medium = make_medium()
        rssi = -130.0  # below SF7 sensitivity, above SF12's
        sf7 = medium.transmit("a", 0.0, 20, {"gw": rssi}, SpreadingFactor.SF7, 0)
        sf12 = medium.transmit("b", 100.0, 20, {"gw": rssi}, SpreadingFactor.SF12, 0)
        assert not medium.frame_received(sf7, "gw")
        # Probability 1 region for SF12 (sensitivity -137, margin 10 → sure
        # above -127)?  -130 is inside the ramp, so force the deterministic
        # threshold path (no RNG → p >= 0.5 decides).
        assert medium.frame_received(sf12, "gw")


class TestOrthogonality:
    def overlapping_pair(self, medium, channel_a, channel_b, sf_a, sf_b):
        first = medium.transmit("a", 0.0, 100, {"gw": -60.0}, sf_a, channel_a)
        second = medium.transmit("b", 0.0, 100, {"gw": -60.0}, sf_b, channel_b)
        return first, second

    def test_same_channel_same_sf_collides(self):
        medium = make_medium()
        first, second = self.overlapping_pair(
            medium, 0, 0, SpreadingFactor.SF7, SpreadingFactor.SF7
        )
        assert not medium.is_decodable(first, "gw")
        assert not medium.is_decodable(second, "gw")

    def test_cross_channel_frames_do_not_collide(self):
        medium = make_medium()
        first, second = self.overlapping_pair(
            medium, 0, 1, SpreadingFactor.SF7, SpreadingFactor.SF7
        )
        assert medium.is_decodable(first, "gw")
        assert medium.is_decodable(second, "gw")

    def test_cross_sf_frames_do_not_collide(self):
        medium = make_medium()
        first, second = self.overlapping_pair(
            medium, 0, 0, SpreadingFactor.SF7, SpreadingFactor.SF9
        )
        assert medium.is_decodable(first, "gw")
        assert medium.is_decodable(second, "gw")

    def test_capture_still_applies_within_a_channel(self):
        medium = make_medium()
        strong = medium.transmit("a", 0.0, 100, {"gw": -50.0}, SpreadingFactor.SF7, 2)
        weak = medium.transmit("b", 0.0, 100, {"gw": -80.0}, SpreadingFactor.SF7, 2)
        assert medium.is_decodable(strong, "gw")
        assert not medium.is_decodable(weak, "gw")


class TestGatewayResolution:
    def test_best_rssi_gateway_wins(self):
        medium = make_medium()
        transmission = medium.transmit(
            "a", 0.0, 20, {"gw-0": -90.0, "gw-1": -60.0, "not-a-gw": -10.0}
        )
        winner = medium.resolve_gateway_reception(transmission, {"gw-0", "gw-1"})
        assert winner == "gw-1"

    def test_collided_gateway_skipped_for_the_next_best(self):
        medium = make_medium()
        # A same-channel interferer audible only at gw-1 kills the best
        # candidate; resolution falls through to gw-0.
        transmission = medium.transmit("a", 0.0, 20, {"gw-0": -90.0, "gw-1": -60.0})
        medium.transmit("b", 0.0, 20, {"gw-1": -58.0})
        winner = medium.resolve_gateway_reception(transmission, {"gw-0", "gw-1"})
        assert winner == "gw-0"

    def test_no_gateway_decodes_returns_none(self):
        medium = make_medium()
        transmission = medium.transmit("a", 0.0, 20, {"gw-0": -200.0})
        assert medium.resolve_gateway_reception(transmission, {"gw-0"}) is None

    def test_reception_draw_uses_the_given_stream(self):
        rng = np.random.default_rng(3)
        medium = make_medium(reception_rng=rng)
        # RSSI inside the success ramp: outcomes must follow the stream, i.e.
        # be reproducible with an identically seeded medium.
        outcomes = []
        for start in range(0, 40):
            t = medium.transmit("a", float(start * 10), 20, {"gw": -115.0})
            outcomes.append(medium.resolve_gateway_reception(t, {"gw"}))
        rng2 = np.random.default_rng(3)
        medium2 = make_medium(reception_rng=rng2)
        outcomes2 = []
        for start in range(0, 40):
            t = medium2.transmit("a", float(start * 10), 20, {"gw": -115.0})
            outcomes2.append(medium2.resolve_gateway_reception(t, {"gw"}))
        assert outcomes == outcomes2
        assert len(set(outcomes)) == 2  # both success and failure occur


class TestRegistryPruning:
    def test_prune_is_a_noop_below_the_threshold(self):
        medium = make_medium()
        for i in range(PRUNE_THRESHOLD):
            medium.transmit(f"d{i}", 0.0, 20, {"gw": -60.0})
        medium.prune(now=1e9)
        assert len(medium) == PRUNE_THRESHOLD

    def test_old_transmissions_dropped_after_the_retention_window(self):
        medium = make_medium()
        airtime = medium.airtime_s(20)
        for i in range(PRUNE_THRESHOLD + 10):
            medium.transmit(f"old-{i}", float(i) * 0.001, 20, {"gw": -60.0})
        last_end = (PRUNE_THRESHOLD + 9) * 0.001 + airtime
        # Just inside the retention window: everything is kept...
        medium.prune(now=last_end + COLLISION_RETENTION_S - 0.5)
        assert len(medium) == PRUNE_THRESHOLD + 10
        # ...and once the window has passed, the registry empties.
        medium.prune(now=last_end + COLLISION_RETENTION_S + 0.5)
        assert len(medium) == 0

    def test_live_transmissions_survive_a_prune(self):
        medium = make_medium()
        for i in range(PRUNE_THRESHOLD + 1):
            medium.transmit(f"old-{i}", 0.0, 20, {"gw": -60.0})
        fresh = medium.transmit("fresh", 1000.0, 20, {"gw": -60.0})
        medium.prune(now=1000.0 + COLLISION_RETENTION_S)
        assert medium.collisions.active_transmissions == [fresh]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RadioMedium(retention_s=0.0)
        with pytest.raises(ValueError):
            RadioMedium(prune_threshold=-1)
