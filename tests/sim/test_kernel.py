"""Unit tests for the simulator kernel and processes."""

import pytest

from repro.sim.kernel import Simulator, Timeout, every


class TestSimulatorScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_advances_clock_to_last_event(self):
        sim = Simulator()
        sim.schedule(3.5)
        sim.run()
        assert sim.now == 3.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, payload="a")
        sim.schedule(10.0, fired.append, payload="b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_events_at_exactly_until_still_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, payload="edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_schedule_in_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda _p: sim.schedule_in(3.0, lambda _q: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(2.0, lambda _p: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(1.0)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0)

    def test_run_returns_number_of_fired_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t)
        assert sim.run() == 3

    def test_max_events_limits_execution(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t)
        assert sim.run(max_events=2) == 2
        assert sim.pending_events == 1


class TestRunUntilClock:
    """The clock must land exactly on ``until`` whenever the run covered
    everything scheduled up to it — including early queue drains and
    ``max_events`` stops — and must never pass it."""

    def test_clock_lands_on_until_when_queue_drains_early(self):
        sim = Simulator()
        sim.schedule(1.0)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_clock_lands_on_until_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_clock_lands_on_until_when_max_events_exhausts_queue(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t)
        fired = sim.run(until=10.0, max_events=3)
        assert fired == 3
        assert sim.now == 10.0

    def test_clock_lands_on_until_when_remaining_events_are_later(self):
        sim = Simulator()
        sim.schedule(1.0)
        sim.schedule(50.0)
        sim.run(until=10.0, max_events=1)
        assert sim.now == 10.0
        assert sim.pending_events == 1

    def test_clock_stays_at_last_event_when_backlog_remains(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t)
        sim.run(until=10.0, max_events=1)
        # Events at 2.0 and 3.0 are still due before `until`: jumping to 10.0
        # would time-travel past them, so the clock holds at the fired event.
        assert sim.now == 1.0
        sim.run(until=10.0)
        assert sim.now == 10.0
        assert sim.pending_events == 0

    def test_clock_never_passes_until(self):
        sim = Simulator()
        sim.schedule(4.0)
        sim.schedule(11.0)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.run(until=12.0)
        assert sim.now == 12.0

    def test_clock_lands_on_until_when_tail_events_are_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0)
        tail = sim.schedule(5.0)
        tail.cancel()
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestProcesses:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        ticks = []

        def proc():
            ticks.append(sim.now)
            yield Timeout(2.0)
            ticks.append(sim.now)
            yield Timeout(3.0)
            ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert ticks == [0.0, 2.0, 5.0]

    def test_process_start_delay(self):
        sim = Simulator()
        ticks = []

        def proc():
            ticks.append(sim.now)
            yield Timeout(1.0)

        sim.process(proc(), delay=4.0)
        sim.run()
        assert ticks == [4.0]

    def test_process_yielding_wrong_type_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_stopped_process_does_not_resume(self):
        sim = Simulator()
        ticks = []

        def proc():
            while True:
                ticks.append(sim.now)
                yield Timeout(1.0)

        handle = sim.process(proc())
        sim.run(until=2.5)
        handle.stop()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_timeout_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Timeout(-0.1)

    def test_every_invokes_callback_periodically(self):
        sim = Simulator()
        calls = []
        every(sim, interval=10.0, callback=calls.append, start=5.0)
        sim.run(until=36.0)
        assert calls == [5.0, 15.0, 25.0, 35.0]

    def test_every_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            every(Simulator(), interval=0.0, callback=lambda _t: None)
