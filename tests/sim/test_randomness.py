"""Unit tests for named random streams."""

import pytest

from repro.sim.randomness import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream_reproduces_values(self):
        a = RandomStreams(42).stream("mobility").random(5)
        b = RandomStreams(42).stream("mobility").random(5)
        assert list(a) == list(b)

    def test_different_names_give_independent_streams(self):
        streams = RandomStreams(42)
        a = streams.stream("mobility").random(5)
        b = streams.stream("shadowing").random(5)
        assert list(a) != list(b)

    def test_different_seeds_give_different_values(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_is_cached_not_recreated(self):
        streams = RandomStreams(7)
        first = streams.stream("x")
        first.random(3)
        assert streams.stream("x") is first

    def test_spawn_is_deterministic(self):
        a = RandomStreams(9).spawn("rep-1").stream("x").random(3)
        b = RandomStreams(9).spawn("rep-1").stream("x").random(3)
        assert list(a) == list(b)

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(9)
        child = parent.spawn("rep-1")
        assert list(parent.stream("x").random(3)) != list(child.stream("x").random(3))

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).stream("")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("not-a-seed")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RandomStreams(123).seed == 123
