"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventCancelled, EventQueue


class TestEvent:
    def test_fire_invokes_callback_with_payload(self):
        seen = []
        event = Event(time=1.0, callback=seen.append, payload="x")
        event.fire()
        assert seen == ["x"]

    def test_fire_without_callback_is_allowed(self):
        event = Event(time=0.0)
        event.fire()
        assert event.fired

    def test_fire_twice_raises(self):
        event = Event(time=0.0)
        event.fire()
        with pytest.raises(EventCancelled):
            event.fire()

    def test_cancelled_event_cannot_fire(self):
        event = Event(time=0.0)
        event.cancel()
        with pytest.raises(EventCancelled):
            event.fire()

    def test_cannot_cancel_after_firing(self):
        event = Event(time=0.0)
        event.fire()
        with pytest.raises(EventCancelled):
            event.cancel()

    def test_pending_reflects_lifecycle(self):
        event = Event(time=0.0)
        assert event.pending
        event.fire()
        assert not event.pending


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        queue.schedule(5.0)
        queue.schedule(1.0)
        queue.schedule(3.0)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_equal_times_fire_in_insertion_order(self):
        queue = EventQueue()
        first = queue.schedule(2.0, payload="first")
        second = queue.schedule(2.0, payload="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_priority_breaks_ties_before_insertion_order(self):
        queue = EventQueue()
        low_priority = queue.schedule(2.0, priority=5)
        high_priority = queue.schedule(2.0, priority=1)
        assert queue.pop() is high_priority
        assert queue.pop() is low_priority

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0)

    def test_len_ignores_cancelled_events(self):
        queue = EventQueue()
        event = queue.schedule(1.0)
        queue.schedule(2.0)
        event.cancel()
        assert len(queue) == 1

    def test_bool_false_when_only_cancelled_events_remain(self):
        queue = EventQueue()
        event = queue.schedule(1.0)
        event.cancel()
        assert not queue

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(1.0)
        queue.schedule(4.0)
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises_index_error(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.clear()
        assert len(queue) == 0
