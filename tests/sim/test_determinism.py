"""Determinism regression tests.

Two runs of the same seeded configuration must agree on *every* metric field
(not just aggregates) — this is the property the parallel sweep executor and
its per-run seed derivation lean on.  Different seeds must actually change
the realisation.
"""

from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario


def _run(config):
    scenario = build_scenario(config)
    simulation = MLoRaSimulation(scenario)
    metrics = simulation.run()
    return metrics, simulation


class TestSimulationDeterminism:
    def test_same_seed_bit_identical(self, small_scenario_config):
        config = small_scenario_config.with_scheme("robc")
        first, first_sim = _run(config)
        second, second_sim = _run(config)
        # Dataclass equality covers every field: counts, per-delivery delay and
        # hop lists, delivery timestamps and per-device counters.
        assert first == second
        assert first_sim.handover_count == second_sim.handover_count
        assert first_sim.handed_over_messages == second_sim.handed_over_messages

    def test_same_seed_bit_identical_without_forwarding(self, small_scenario_config):
        first, _ = _run(small_scenario_config)
        second, _ = _run(small_scenario_config)
        assert first == second

    def test_different_seeds_produce_different_realisations(self, small_scenario_config):
        config = small_scenario_config.with_scheme("robc")
        first, _ = _run(config)
        second, _ = _run(config.with_seed(small_scenario_config.seed + 1))
        # The whole mobility plan and every protocol stream re-derive from the
        # master seed, so a different seed must change the fine-grained record.
        assert first != second
        assert (
            first.delivery_times_s != second.delivery_times_s
            or first.transmissions_per_device != second.transmissions_per_device
        )

    def test_rebuilding_scenario_does_not_leak_state(self, small_scenario_config):
        # Interleaved builds/runs must not perturb each other through module or
        # class level state.
        config_a = small_scenario_config.with_scheme("rca-etx")
        config_b = small_scenario_config.with_scheme("robc")
        first_a, _ = _run(config_a)
        first_b, _ = _run(config_b)
        second_a, _ = _run(config_a)
        second_b, _ = _run(config_b)
        assert first_a == second_a
        assert first_b == second_b
