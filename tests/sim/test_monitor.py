"""Unit tests for the statistics probes."""

import math

import pytest

from repro.sim.monitor import CounterProbe, SeriesProbe, TallyProbe


class TestCounterProbe:
    def test_unknown_counter_defaults_to_zero(self):
        assert CounterProbe().value("missing") == 0

    def test_increment_accumulates(self):
        probe = CounterProbe()
        probe.increment("tx")
        probe.increment("tx", 4)
        assert probe.value("tx") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterProbe().increment("tx", -1)

    def test_as_dict_returns_copy(self):
        probe = CounterProbe()
        probe.increment("a")
        snapshot = probe.as_dict()
        snapshot["a"] = 99
        assert probe.value("a") == 1


class TestTallyProbe:
    def test_summary_of_known_samples(self):
        probe = TallyProbe()
        probe.extend([1.0, 2.0, 3.0, 4.0])
        summary = probe.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_empty_summary_is_nan(self):
        summary = TallyProbe().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_nan_sample_rejected(self):
        with pytest.raises(ValueError):
            TallyProbe().record(float("nan"))

    def test_len_tracks_samples(self):
        probe = TallyProbe()
        probe.record(1.0)
        probe.record(2.0)
        assert len(probe) == 2

    def test_samples_returns_copy(self):
        probe = TallyProbe()
        probe.record(1.0)
        probe.samples.append(99.0)
        assert len(probe) == 1


class TestSeriesProbe:
    def test_binned_sums_values_per_window(self):
        probe = SeriesProbe()
        probe.record(10.0, 1.0)
        probe.record(20.0, 2.0)
        probe.record(130.0, 5.0)
        starts, sums = probe.binned(bin_width=60.0, horizon=180.0)
        assert list(starts) == [0.0, 60.0, 120.0]
        assert list(sums) == [3.0, 0.0, 5.0]

    def test_observations_beyond_horizon_dropped(self):
        probe = SeriesProbe()
        probe.record(500.0, 1.0)
        _, sums = probe.binned(bin_width=60.0, horizon=120.0)
        assert sums.sum() == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SeriesProbe().record(-1.0)

    def test_invalid_bin_parameters_rejected(self):
        probe = SeriesProbe()
        with pytest.raises(ValueError):
            probe.binned(bin_width=0.0, horizon=10.0)
        with pytest.raises(ValueError):
            probe.binned(bin_width=10.0, horizon=0.0)

    def test_points_round_trip(self):
        probe = SeriesProbe()
        probe.record(1.0, 2.0)
        assert probe.points == [(1.0, 2.0)]
        assert len(probe) == 1
