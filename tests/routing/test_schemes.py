"""Unit tests for the forwarding schemes."""

import pytest

from repro.mac.device import DeviceConfig, EndDevice
from repro.mac.frames import DataMessage, UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing import (
    SCHEME_REGISTRY,
    build_scheme,
    make_scheme,
    register_scheme_factory,
    scheme_names,
)
from repro.routing.base import ForwardingDecision
from repro.routing.config import RoutingConfig
from repro.routing.epidemic import EpidemicScheme
from repro.routing.no_routing import NoRoutingScheme
from repro.routing.prophet import ProphetScheme
from repro.routing.rca_etx_scheme import RCAETXScheme
from repro.routing.robc_scheme import ROBCScheme
from repro.routing.spray_and_wait import SprayAndWaitScheme, get_tickets

CAPACITY = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0)
GOOD_RSSI = -85.0


def _device(device_id="bus-x", queued=5, disconnected_for=5):
    device = EndDevice(device_id, config=DeviceConfig())
    for i in range(queued):
        device.generate_message(float(i))
    # A good gateway contact followed by an optional long outage; with the
    # default of five missed slots the device is a natural forwarding
    # candidate, with zero it keeps its own (cheap) route.
    device.rca_etx.observe_transmission_slot(0.0, 100.0)
    for slot in range(1, disconnected_for + 1):
        device.rca_etx.observe_transmission_slot(slot * 180.0, 0.0)
    return device


def _packet(sender="bus-y", rca_etx=2.0, queue_length=1):
    messages = (DataMessage(source=sender, created_at=0.0),)
    return UplinkPacket(
        sender=sender, sent_at=1000.0, messages=messages,
        rca_etx_s=rca_etx, queue_length=queue_length,
    )


class TestRegistry:
    def test_all_schemes_registered(self):
        expected = {
            "no-routing", "rca-etx", "robc", "epidemic", "spray-and-wait", "prophet"
        }
        assert set(SCHEME_REGISTRY) == expected
        # Both registries (class map and factory map) agree on the catalogue.
        assert set(scheme_names()) == expected

    def test_make_scheme_builds_instances(self):
        assert isinstance(make_scheme("robc"), ROBCScheme)
        assert isinstance(make_scheme("no-routing"), NoRoutingScheme)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("definitely-not-a-scheme")
        with pytest.raises(ValueError):
            build_scheme("definitely-not-a-scheme")

    def test_build_scheme_applies_routing_config(self):
        routing = RoutingConfig(max_handover_messages=3, spray_initial_copies=9)
        spray = build_scheme("spray-and-wait", routing)
        assert spray.initial_copies == 9
        assert spray.max_handover_messages == 3
        robc = build_scheme("robc", RoutingConfig(rgq_phi_max=2.5))
        assert robc.rgq.phi_max == 2.5
        prophet = build_scheme("prophet", RoutingConfig(prophet_beta=0.5))
        assert prophet.beta == 0.5

    def test_build_scheme_returns_fresh_instances(self):
        # Stateful schemes (prophet) must not leak state across scenarios.
        assert build_scheme("prophet") is not build_scheme("prophet")

    def test_factory_registry_is_open(self):
        class FlipScheme(NoRoutingScheme):
            name = "flip-test-scheme"

        register_scheme_factory("flip-test-scheme", lambda routing: FlipScheme())
        try:
            assert isinstance(build_scheme("flip-test-scheme"), FlipScheme)
            with pytest.raises(ValueError):
                register_scheme_factory("flip-test-scheme", lambda routing: FlipScheme())
        finally:
            from repro.routing import registry as registry_module

            registry_module._FACTORIES.pop("flip-test-scheme")


class TestForwardingDecision:
    def test_no_decision(self):
        decision = ForwardingDecision.no()
        assert not decision.forward and decision.message_limit == 0

    def test_forward_requires_positive_limit(self):
        with pytest.raises(ValueError):
            ForwardingDecision(forward=True, message_limit=0)


class TestNoRouting:
    def test_never_forwards(self):
        scheme = NoRoutingScheme()
        decision = scheme.on_overhear(_device(), _packet(), GOOD_RSSI, CAPACITY, 1000.0)
        assert not decision.forward
        assert not scheme.uses_forwarding
        assert not scheme.requires_queue_length


class TestRCAETXScheme:
    def test_forwards_to_better_neighbour(self):
        decision = RCAETXScheme().on_overhear(_device(), _packet(rca_etx=2.0), GOOD_RSSI, CAPACITY, 1000.0)
        assert decision.forward
        assert decision.message_limit > 0
        assert not decision.copy

    def test_does_not_forward_to_worse_neighbour(self):
        decision = RCAETXScheme().on_overhear(
            _device(), _packet(rca_etx=1e6), GOOD_RSSI, CAPACITY, 1000.0
        )
        assert not decision.forward

    def test_does_not_forward_without_metric_field(self):
        packet = UplinkPacket(
            sender="bus-y", sent_at=0.0, messages=(DataMessage(source="bus-y", created_at=0.0),)
        )
        assert not RCAETXScheme().on_overhear(_device(), packet, GOOD_RSSI, CAPACITY, 0.0).forward

    def test_does_not_forward_with_empty_queue(self):
        empty = _device(queued=0)
        assert not RCAETXScheme().on_overhear(empty, _packet(), GOOD_RSSI, CAPACITY, 0.0).forward

    def test_limit_respects_own_queue_and_configuration(self):
        decision = RCAETXScheme(max_handover_messages=3).on_overhear(
            _device(queued=10), _packet(rca_etx=1.0), GOOD_RSSI, CAPACITY, 1000.0
        )
        assert decision.message_limit == 3

    def test_connected_device_keeps_its_data(self):
        connected = _device(disconnected_for=0)
        decision = RCAETXScheme().on_overhear(connected, _packet(rca_etx=50.0), GOOD_RSSI, CAPACITY, 0.0)
        assert not decision.forward


class TestROBCScheme:
    def test_forwards_when_backpressure_positive(self):
        decision = ROBCScheme().on_overhear(
            _device(queued=10), _packet(rca_etx=2.0, queue_length=0), GOOD_RSSI, CAPACITY, 1000.0
        )
        assert decision.forward
        assert 0 < decision.message_limit <= 10

    def test_does_not_forward_to_more_loaded_neighbour(self):
        decision = ROBCScheme().on_overhear(
            _device(queued=1), _packet(rca_etx=1e6, queue_length=60), GOOD_RSSI, CAPACITY, 1000.0
        )
        assert not decision.forward

    def test_requires_queue_length_field(self):
        packet = _packet(queue_length=None)
        assert not ROBCScheme().on_overhear(_device(), packet, GOOD_RSSI, CAPACITY, 0.0).forward
        assert ROBCScheme.requires_queue_length

    def test_does_not_forward_over_dead_link(self):
        decision = ROBCScheme().on_overhear(
            _device(queued=10), _packet(queue_length=0), -130.0, CAPACITY, 1000.0
        )
        assert not decision.forward

    def test_transfer_limited_by_max_handover(self):
        decision = ROBCScheme(max_handover_messages=2).on_overhear(
            _device(queued=20), _packet(rca_etx=1.0, queue_length=0), GOOD_RSSI, CAPACITY, 1000.0
        )
        assert decision.message_limit <= 2


class TestEpidemic:
    def test_always_replicates_when_data_present(self):
        decision = EpidemicScheme().on_overhear(_device(), _packet(), GOOD_RSSI, CAPACITY, 0.0)
        assert decision.forward and decision.copy

    def test_no_data_no_forwarding(self):
        assert not EpidemicScheme().on_overhear(
            _device(queued=0), _packet(), GOOD_RSSI, CAPACITY, 0.0
        ).forward


class TestSprayAndWait:
    def test_sprays_while_tickets_remain(self):
        scheme = SprayAndWaitScheme(initial_copies=4)
        device = _device(queued=3)
        decision = scheme.on_overhear(device, _packet(), GOOD_RSSI, CAPACITY, 0.0)
        assert decision.forward and decision.copy

    def test_wait_phase_when_single_ticket(self):
        scheme = SprayAndWaitScheme(initial_copies=1)
        device = _device(queued=3)
        assert not scheme.on_overhear(device, _packet(), GOOD_RSSI, CAPACITY, 0.0).forward

    def test_split_tickets_halves(self):
        scheme = SprayAndWaitScheme(initial_copies=8)
        message = DataMessage(source="bus-x", created_at=0.0)
        given = scheme.split_tickets(message)
        assert given == 4
        assert get_tickets(message, 8) == 4

    def test_split_exhausted_message_gives_nothing(self):
        scheme = SprayAndWaitScheme(initial_copies=1)
        message = DataMessage(source="bus-x", created_at=0.0)
        assert scheme.split_tickets(message) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SprayAndWaitScheme(initial_copies=0)
        with pytest.raises(ValueError):
            RCAETXScheme(max_handover_messages=0)
        with pytest.raises(ValueError):
            ROBCScheme(max_handover_messages=0)


class TestProphet:
    def test_predictability_grows_on_gateway_contact(self):
        scheme = ProphetScheme(p_init=0.5)
        scheme.observe_transmission_slot("bus-x", True, 0.0)
        assert scheme.predictability("bus-x", 0.0) == pytest.approx(0.5)
        scheme.observe_transmission_slot("bus-x", True, 0.0)
        assert scheme.predictability("bus-x", 0.0) == pytest.approx(0.75)

    def test_predictability_ages_between_contacts(self):
        scheme = ProphetScheme(p_init=0.5, gamma=0.99)
        scheme.observe_transmission_slot("bus-x", True, 0.0)
        aged = scheme.predictability("bus-x", 100.0)
        assert aged == pytest.approx(0.5 * 0.99**100)

    def test_disconnected_slot_only_ages(self):
        scheme = ProphetScheme(p_init=0.5, gamma=1.0)
        scheme.observe_transmission_slot("bus-x", True, 0.0)
        scheme.observe_transmission_slot("bus-x", False, 50.0)
        assert scheme.predictability("bus-x", 50.0) == pytest.approx(0.5)

    def test_forwards_to_better_connected_sender(self):
        scheme = ProphetScheme()
        scheme.observe_transmission_slot("bus-y", True, 999.0)
        decision = scheme.on_overhear(_device(), _packet(sender="bus-y"), GOOD_RSSI, CAPACITY, 1000.0)
        assert decision.forward and decision.copy
        assert decision.message_limit > 0

    def test_does_not_forward_to_unknown_sender(self):
        scheme = ProphetScheme()
        decision = scheme.on_overhear(_device(), _packet(sender="bus-y"), GOOD_RSSI, CAPACITY, 1000.0)
        assert not decision.forward

    def test_does_not_forward_without_data(self):
        scheme = ProphetScheme()
        scheme.observe_transmission_slot("bus-y", True, 999.0)
        empty = _device(queued=0)
        decision = scheme.on_overhear(empty, _packet(sender="bus-y"), GOOD_RSSI, CAPACITY, 1000.0)
        assert not decision.forward

    def test_transitive_update_raises_receiver_predictability(self):
        scheme = ProphetScheme(p_init=0.8, beta=0.25, gamma=1.0)
        scheme.observe_transmission_slot("bus-y", True, 0.0)
        scheme.on_overhear(_device("bus-x"), _packet(sender="bus-y"), GOOD_RSSI, CAPACITY, 1.0)
        assert scheme.predictability("bus-x", 1.0) == pytest.approx(0.8 * 0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProphetScheme(p_init=0.0)
        with pytest.raises(ValueError):
            ProphetScheme(beta=1.5)
        with pytest.raises(ValueError):
            ProphetScheme(gamma=0.0)
        with pytest.raises(ValueError):
            ProphetScheme(max_handover_messages=0)
