"""``on_overhear_batch`` must be an exact drop-in for the scalar loop.

The array engine's hot path hands every overhearer of a transmission to the
scheme in one call; the contract is that the returned decision list — and any
scheme-internal state mutation (PRoPHET's predictability table, lazy spray
tickets) — is indistinguishable from calling :meth:`on_overhear` once per
receiver in the same order.  These tests run both paths on identically
constructed worlds and compare decisions field by field and state dict by
dict, for every registered scheme (schemes without an override exercise the
base-class delegating default).
"""

from __future__ import annotations

from repro.mac.device import DeviceConfig, EndDevice
from repro.mac.frames import DataMessage, UplinkPacket
from repro.phy.link import LinkCapacityModel
from repro.routing import make_scheme, scheme_names
from repro.routing.spray_and_wait import get_tickets

CAPACITY = LinkCapacityModel(
    max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
)
NOW = 1000.0


def _device(device_id, queued, disconnected_for):
    device = EndDevice(device_id, config=DeviceConfig())
    for i in range(queued):
        device.generate_message(float(i))
    device.rca_etx.observe_transmission_slot(0.0, 100.0)
    for slot in range(1, disconnected_for + 1):
        device.rca_etx.observe_transmission_slot(slot * 180.0, 0.0)
    return device


def _packet(sender="bus-tx", rca_etx=2.0, queue_length=3):
    messages = (DataMessage(source=sender, created_at=0.0),)
    return UplinkPacket(
        sender=sender, sent_at=NOW, messages=messages,
        rca_etx_s=rca_etx, queue_length=queue_length,
    )


#: (queued, disconnected_for) per receiver — empty queues, loaded queues,
#: well-connected and long-disconnected carriers, in a deliberate mix.
RECEIVER_SHAPES = [(0, 0), (5, 5), (3, 0), (8, 2), (1, 5), (0, 5), (12, 1)]


def _world():
    """A fresh (receivers, rssi, models) triple; built twice per test so the
    scalar and batch paths never share mutable state."""
    receivers = [
        _device(f"bus-{i}", queued, outage)
        for i, (queued, outage) in enumerate(RECEIVER_SHAPES)
    ]
    rssi = [-85.0 - 3.0 * i for i in range(len(receivers))]
    models = [CAPACITY] * len(receivers)
    return receivers, rssi, models


def _decision_tuples(decisions):
    return [(d.forward, d.message_limit, d.copy) for d in decisions]


def _scheme_state(scheme):
    """Observable scheme-internal state that decisions may mutate."""
    return (
        dict(getattr(scheme, "_predictability", {})),
        dict(getattr(scheme, "_last_update", {})),
    )


def test_batch_matches_scalar_for_every_scheme():
    packet = _packet()
    for name in scheme_names():
        scalar_scheme = make_scheme(name)
        batch_scheme = make_scheme(name)

        receivers_a, rssi, models = _world()
        scalar = [
            scalar_scheme.on_overhear(receiver, packet, r, model, NOW)
            for receiver, r, model in zip(receivers_a, rssi, models)
        ]

        receivers_b, rssi_b, models_b = _world()
        batch = batch_scheme.on_overhear_batch(
            [packet] * len(receivers_b), receivers_b, rssi_b, models_b,
            [NOW] * len(receivers_b),
        )

        assert _decision_tuples(batch) == _decision_tuples(scalar), name
        assert _scheme_state(batch_scheme) == _scheme_state(scalar_scheme), name
        # Lazily initialised per-message state (spray tickets) must also end
        # up identical on the receivers' queues.
        for dev_a, dev_b in zip(receivers_a, receivers_b):
            tickets_a = [get_tickets(m, 4) for m in dev_a.queue.peek_all()]
            tickets_b = [get_tickets(m, 4) for m in dev_b.queue.peek_all()]
            assert tickets_a == tickets_b, name


def test_prophet_batch_preserves_update_order():
    """PRoPHET's transitive update is order-sensitive: the sender's aged
    predictability read by receiver k must reflect updates 0..k-1 exactly as
    in the scalar loop.  Seeding the table with distinct values makes any
    reordering change a decision or a stored float."""
    scalar_scheme = make_scheme("prophet")
    batch_scheme = make_scheme("prophet")
    packet = _packet(sender="bus-tx")
    for scheme in (scalar_scheme, batch_scheme):
        scheme.observe_transmission_slot("bus-tx", True, 0.0)
        scheme.observe_transmission_slot("bus-1", True, 100.0)
        scheme.observe_transmission_slot("bus-3", True, 900.0)

    receivers_a, rssi, models = _world()
    scalar = [
        scalar_scheme.on_overhear(receiver, packet, r, model, NOW)
        for receiver, r, model in zip(receivers_a, rssi, models)
    ]
    receivers_b, rssi_b, models_b = _world()
    batch = batch_scheme.on_overhear_batch(
        [packet] * len(receivers_b), receivers_b, rssi_b, models_b,
        [NOW] * len(receivers_b),
    )
    assert _decision_tuples(batch) == _decision_tuples(scalar)
    assert _scheme_state(batch_scheme) == _scheme_state(scalar_scheme)
