"""Shared test fixtures."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout in an offline environment).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_scenario_config():
    """A tiny scenario that runs in well under a second."""
    from repro.experiments.config import ScenarioConfig

    return ScenarioConfig(
        duration_s=1800.0,
        area_km2=20.0,
        num_gateways=3,
        num_routes=4,
        trips_per_route=2,
        stops_per_route=5,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        seed=11,
    )
