"""Relaxed-mode differential matrix: RunMetrics equality without bit-lock.

``strict_equivalence=False`` lets the array engine chain generation events
and coalesce same-time completion groups instead of replaying the oracle's
event interleaving move for move.  The contract weakens from "bit-identical
event trace" to "equal RunMetrics": every observable the harness fingerprints
(delivery counts, delays, hops, per-device transmissions and energy) must
still match the object oracle exactly.

The matrix runs every forwarding scheme at two fleet sizes of the urban-full
scenario.  Bus traces have staggered service starts, so completion times
rarely tie and the group path may never fire there; a synchronized
random-waypoint fleet (every node active from t = 0) is added to *provably*
exercise group coalescing, with a counter asserting groups actually formed.

``strict_equivalence`` must also stay digest-transparent at its default so
pre-existing cache entries and goldens keyed on default configs stay valid.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import EngineConfig
from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.bench import fleet_config
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import config_digest
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import build_scenario

#: Every registered forwarding scheme; rca-etx has no ``on_overhear_batch``
#: override, so it exercises the generation-chaining half of relaxed mode
#: through the scalar decision path.
ALL_SCHEMES = ("robc", "rca-etx", "epidemic", "spray-and-wait", "prophet")

#: Schemes with a batched decision hook — the ones the group path batches.
BATCH_SCHEMES = ("robc", "epidemic", "spray-and-wait", "prophet")

#: A small fleet where *every* node is active from t = 0, so uplinks started
#: in the same slot complete at exactly the same float time and the relaxed
#: engine forms same-time completion groups by the hundreds.
SYNCHRONIZED_RWP = ScenarioConfig(
    duration_s=1800.0,
    area_km2=4.0,
    num_gateways=2,
    num_routes=3,
    trips_per_route=2,
    stops_per_route=5,
    min_block_repeats=1,
    max_block_repeats=2,
    device_range_m=1000.0,
    seed=7,
).with_mobility("random-waypoint", num_nodes=24)


def _differential(config: ScenarioConfig, fingerprint) -> None:
    relaxed = config.with_engine(strict_equivalence=False)
    oracle = MLoRaSimulation(build_scenario(config)).run()
    array = ArrayMLoRaSimulation(build_scenario(relaxed)).run()
    assert fingerprint(array) == fingerprint(oracle)


@pytest.mark.parametrize("fraction", [0.25, 0.5], ids=["240-buses", "480-buses"])
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_relaxed_matches_oracle_metrics(scheme, fraction, metrics_fingerprint):
    """Relaxed array RunMetrics == object oracle, all schemes × fleet sizes."""
    _differential(
        fleet_config(fraction, scheme=scheme, duration_s=900.0), metrics_fingerprint
    )


@pytest.mark.parametrize("scheme", BATCH_SCHEMES)
def test_relaxed_group_coalescing_fires_and_matches(
    scheme, monkeypatch, metrics_fingerprint
):
    """The same-time completion-group path actually runs and stays exact.

    Synchronized traces make same-time completions routine; the wrapped
    resolver counts multi-member groups so a silently-dead fast path (e.g. a
    predicate typo disabling ``_relaxed_groups``) fails loudly instead of
    vacuously passing the equality check.
    """
    config = SYNCHRONIZED_RWP.with_scheme(scheme)
    groups = {"count": 0}
    real = ArrayMLoRaSimulation._resolve_completion_group

    def counting(self, time, payload):
        groups["count"] += 1
        return real(self, time, payload)

    monkeypatch.setattr(ArrayMLoRaSimulation, "_resolve_completion_group", counting)
    _differential(config, metrics_fingerprint)
    assert groups["count"] > 0, "no completion group ever formed"


def test_strict_equivalence_default_stays_digest_omitted():
    """``strict_equivalence=True`` (the default) must not perturb the digest.

    The relaxed flag joins the digest only when set: an explicit default
    engine section — including an explicitly spelled ``strict_equivalence=
    True`` — hashes identically to an omitted one, while the relaxed value
    keys its own cache entries.
    """
    base = ScenarioConfig()
    explicit = dataclasses.replace(
        base, engine=EngineConfig(strict_equivalence=True)
    )
    assert config_digest(explicit) == config_digest(base)
    assert config_digest(base.with_engine(strict_equivalence=True)) == config_digest(base)
    assert config_digest(base.with_engine(strict_equivalence=False)) != config_digest(base)
