"""The engine configuration section: selection, digests, serialization.

The ``engine`` section must behave like the radio/mobility/routing sections
before it: a *default* section is invisible (omitted from the configuration
digest, so every pre-engine-layer cache entry stays valid) and any
non-default section is part of the cache key.  Engine selection layers the
``REPRO_ENGINE`` environment override (the CI matrix) beneath an explicit
per-configuration choice (the ``megacity-10k`` preset).
"""

import dataclasses

import pytest

from repro.engine import ENGINE_ENV_VAR, ENGINES, EngineConfig, resolve_engine_name
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import config_digest
from repro.experiments.serialization import (
    scenario_from_json,
    scenario_from_toml,
    scenario_to_json,
    scenario_to_toml,
)


class TestEngineConfig:
    def test_registry_and_validation(self):
        assert ENGINES == ("object", "array")
        assert EngineConfig().is_default
        assert not EngineConfig(engine="array").is_default
        assert not EngineConfig(tick_s=5.0).is_default
        with pytest.raises(ValueError):
            EngineConfig(engine="gpu")
        with pytest.raises(ValueError):
            EngineConfig(tick_s=0.0)

    def test_with_engine_helper_composes(self):
        config = ScenarioConfig().with_engine("array", tick_s=7.0)
        assert config.engine == EngineConfig(engine="array", tick_s=7.0)
        relaxed = config.with_engine(strict_equivalence=False)
        assert relaxed.engine.engine == "array"
        assert not relaxed.engine.strict_equivalence


class TestDigestTransparency:
    def test_explicit_default_engine_is_digest_transparent(self):
        base = ScenarioConfig()
        explicit = dataclasses.replace(base, engine=EngineConfig())
        assert config_digest(explicit) == config_digest(base)

    def test_non_default_engine_changes_the_digest(self):
        base = ScenarioConfig()
        digests = {
            config_digest(base),
            config_digest(base.with_engine("array")),
            config_digest(base.with_engine(tick_s=5.0)),
            config_digest(base.with_engine(strict_equivalence=False)),
        }
        assert len(digests) == 4


class TestSerialization:
    def test_engine_section_round_trips(self):
        config = ScenarioConfig().with_engine("array", tick_s=7.5).with_engine(
            strict_equivalence=False
        )
        assert scenario_from_json(scenario_to_json(config)) == config
        assert scenario_from_toml(scenario_to_toml(config)) == config

    def test_unknown_engine_in_file_is_rejected(self):
        text = scenario_to_json(ScenarioConfig()).replace('"object"', '"warp"')
        with pytest.raises(ValueError):
            scenario_from_json(text)


class TestResolution:
    def test_default_resolves_to_object(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name(ScenarioConfig()) == "object"

    def test_env_overrides_default_only(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "array")
        assert resolve_engine_name(ScenarioConfig()) == "array"
        # An explicit choice (e.g. the megacity-10k preset) beats the env.
        pinned = ScenarioConfig().with_engine("array").with_engine(tick_s=5.0)
        monkeypatch.setenv(ENGINE_ENV_VAR, "object")
        assert resolve_engine_name(pinned) == "array"

    def test_invalid_env_value_is_an_error(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ValueError):
            resolve_engine_name(ScenarioConfig())
