"""The megacity-10k preset: the array engine's flagship scenario.

Ten thousand buses is far beyond what the object engine can run
interactively, so the preset pins ``engine = "array"`` in its configuration
— an explicit choice that survives the ``REPRO_ENGINE`` environment
override.  The full preset is benchmark territory
(``benchmarks/test_bench_engine_core.py``); here a density-preserving shrink
proves the configuration is runnable end-to-end on the array path.
"""

from repro.engine import resolve_engine_name
from repro.experiments.registry import apply_overrides, get_preset
from repro.experiments.runner import run_scenario


class TestMegacityPreset:
    def test_preset_is_a_10k_bus_array_engine_scenario(self):
        config = get_preset("megacity-10k").config
        assert config.num_routes * config.trips_per_route == 10_000
        assert config.engine.engine == "array"
        assert resolve_engine_name(config) == "array"
        # Urban density: ~10 km² and ~16 buses per gateway, as in urban-full.
        assert config.area_km2 / config.num_gateways == 10.0

    def test_env_cannot_push_the_preset_off_the_array_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "object")
        assert resolve_engine_name(get_preset("megacity-10k").config) == "array"

    def test_scaled_smoke_run_executes_on_the_array_path(self):
        config = apply_overrides(
            get_preset("megacity-10k").config, scale=0.01, duration_s=600.0
        )
        assert config.engine.engine == "array"
        metrics = run_scenario(config)
        assert metrics.messages_generated > 0
        assert metrics.scheme == "no-routing"
