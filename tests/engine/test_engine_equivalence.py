"""Differential harness: the array engine against the object-graph oracle.

The array engine (:class:`repro.engine.array_engine.ArrayMLoRaSimulation`)
reimplements the event loop over NumPy prefilters, per-(channel, SF) buckets
and a disconnected fast path; its contract is *bit-identical*
:class:`~repro.analysis.metrics.RunMetrics` with the untouched oracle
(:class:`repro.experiments.runner.MLoRaSimulation`) on every configuration.
Three layers enforce that contract:

* a Hypothesis property over randomly drawn scenario configurations —
  schemes, radio plans, mobility models, buffer policies, device classes,
  seeds;
* a deterministic stress matrix covering every subsystem dimension the
  property could under-sample;
* pinned golden fingerprints for every pre-existing preset (scaled for test
  runtime) run through ``run_scenario`` with ``engine = "array"`` — the
  goldens were recorded from the *object* engine, so a pass means the
  dispatcher picked the array engine and the array engine matched the oracle.

Both engines mutate scenario state, so every comparison builds the scenario
twice.  RunMetrics is a plain dataclass: ``==`` compares every raw field
(per-message delays, per-device transmissions and energy), which is exactly
the bit-identity the contract demands.
"""

import hashlib
import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import get_preset
from repro.experiments.runner import MLoRaSimulation, run_scenario
from repro.experiments.scenario import build_scenario


def _run_object(config: ScenarioConfig):
    return MLoRaSimulation(build_scenario(config)).run()


def _run_array(config: ScenarioConfig):
    return ArrayMLoRaSimulation(build_scenario(config)).run()


def _fingerprint(metrics) -> str:
    payload = {
        "scheme": metrics.scheme,
        "messages_generated": metrics.messages_generated,
        "messages_delivered": metrics.messages_delivered,
        "delays_s": metrics.delays_s,
        "hop_counts": metrics.hop_counts,
        "delivery_times_s": metrics.delivery_times_s,
        "transmissions_per_device": metrics.transmissions_per_device,
        "energy_joules_per_device": metrics.energy_joules_per_device,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    ).hexdigest()


#: The familiar SMALL scenario of the radio/routing equivalence suites, at a
#: shorter horizon so the full matrix stays inside the tier-1 budget.
BASE = ScenarioConfig(
    duration_s=1200.0,
    area_km2=20.0,
    num_gateways=3,
    num_routes=4,
    trips_per_route=2,
    stops_per_route=5,
    min_block_repeats=1,
    max_block_repeats=2,
    device_range_m=1000.0,
    seed=11,
)

#: Deterministic stress matrix: one case per subsystem dimension.
STRESS_CASES = {
    "no-routing": BASE,
    "rca-etx": BASE.with_scheme("rca-etx"),
    "robc": BASE.with_scheme("robc"),
    "epidemic": BASE.with_scheme("epidemic"),
    "spray-and-wait": BASE.with_scheme("spray-and-wait"),
    "prophet": BASE.with_scheme("prophet"),
    "multichannel": BASE.with_scheme("robc").with_radio(num_channels=3),
    "random-sf": BASE.with_scheme("robc").with_radio(num_channels=8, sf_policy="random"),
    "distance-sf": BASE.with_radio(sf_policy="distance-based"),
    "class-a": replace(BASE, device_class="class-a"),
    "queue-class-a": replace(BASE, device_class="queue-based-class-a"),
    "shadowing": replace(BASE, shadowing=True),
    "shadowing-robc": replace(BASE.with_scheme("robc"), shadowing=True),
    "rwp": BASE.with_mobility("random-waypoint", num_nodes=8),
    "manhattan": BASE.with_mobility("grid-manhattan", num_nodes=8),
    "buffer-drop-oldest": BASE.with_scheme("robc").with_buffer(
        policy="drop-oldest", capacity=4
    ),
    "buffer-ttl": BASE.with_buffer(policy="ttl-expiry", ttl_s=300.0),
    "buffer-priority": BASE.with_scheme("epidemic").with_buffer(
        policy="priority-age", capacity=8
    ),
    "tick-7s": BASE.with_scheme("robc").with_engine(tick_s=7.0),
    "relaxed": BASE.with_scheme("rca-etx").with_engine(strict_equivalence=False),
}


class TestStressMatrix:
    @pytest.mark.parametrize("case", sorted(STRESS_CASES))
    def test_array_engine_matches_oracle(self, case):
        config = STRESS_CASES[case]
        assert _run_array(config) == _run_object(config), (
            f"array engine diverged from the object oracle on {case!r}"
        )


@st.composite
def scenario_configs(draw) -> ScenarioConfig:
    config = ScenarioConfig(
        duration_s=float(draw(st.sampled_from([600, 1200]))),
        area_km2=float(draw(st.sampled_from([10, 20]))),
        num_gateways=draw(st.integers(1, 3)),
        num_routes=draw(st.integers(1, 4)),
        trips_per_route=draw(st.integers(1, 2)),
        stops_per_route=5,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        shadowing=draw(st.booleans()),
        seed=draw(st.integers(0, 2**31 - 1)),
        scheme=draw(
            st.sampled_from(
                ["no-routing", "rca-etx", "robc", "epidemic", "spray-and-wait", "prophet"]
            )
        ),
        device_class=draw(
            st.sampled_from(["modified-class-c", "class-a", "queue-based-class-a"])
        ),
    )
    config = config.with_radio(
        num_channels=draw(st.sampled_from([1, 3])),
        sf_policy=draw(st.sampled_from(["fixed-sf7", "random", "distance-based"])),
    )
    policy = draw(st.sampled_from(["drop-new", "drop-oldest", "ttl-expiry"]))
    if policy == "ttl-expiry":
        config = config.with_buffer(policy=policy, ttl_s=300.0)
    elif policy != "drop-new":
        config = config.with_buffer(policy=policy, capacity=8)
    return config.with_engine(tick_s=float(draw(st.sampled_from([7, 30, 120]))))


class TestHypothesisDifferential:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=scenario_configs())
    def test_random_scenarios_are_engine_invariant(self, config):
        assert _run_array(config) == _run_object(config)


# --------------------------------------------------------------------- #
# Per-preset goldens under engine = "array"
# --------------------------------------------------------------------- #
def preset_golden_config(name: str) -> ScenarioConfig:
    """The preset's configuration shrunk to golden-test size, on the array
    engine.  Deterministic in the preset definition: roughly three routes,
    a 900 s horizon, density-preserving spatial scale."""
    config = get_preset(name).config
    config = config.scaled(min(1.0, 3.0 / config.num_routes))
    return replace(config, duration_s=900.0).with_engine("array")


#: Array-engine RunMetrics fingerprints for every pre-existing preset,
#: recorded from the OBJECT engine on the same configurations.
GOLDEN_ARRAY_FINGERPRINTS = {
    "dense-gateways": "a6b721a05e69992083076e338eb6c23ea1adee2d0ac26fdb1bcdd9458f194cba",
    "epidemic-urban": "837a499fe879c9ce5d594b93d339924d34340c64ed2ea0bc5021718a3cbe83b7",
    "mega-fleet": "99c4833c19169c24694a9ae2cf4339f10d9cc073cea3dbfdd16a9ec6d627b700",
    "quickstart": "d59058e84bed8b4d449c88b9f6b819ea54de4c008f8d9841ee1a3c3c58c2535d",
    "rural": "0a1cf97ca76664ab74126d4155fb7ad59e5faf56cef25fbee6fdb7faf60bf05a",
    "rural-full": "0a1cf97ca76664ab74126d4155fb7ad59e5faf56cef25fbee6fdb7faf60bf05a",
    "rural-smoke": "159d4f042f57f3a1344ce244c8bd5d2263f1e215e3e352b9f85fdd1bc05c1480",
    "sparse-gateways": "e60db6e6750d32a7464cac52e9220f7c2d5b5a0fde0da2ef780c251fa2195b16",
    "spray-and-wait-urban": "553853252087e7ca7628c44686f1d4edcd0219f3117d675c1df08cb123ab8fe0",
    "urban": "0a1cf97ca76664ab74126d4155fb7ad59e5faf56cef25fbee6fdb7faf60bf05a",
    "urban-buffer-pressure": "0a1cf97ca76664ab74126d4155fb7ad59e5faf56cef25fbee6fdb7faf60bf05a",
    "urban-class-a": "8ebd61c003be0b2a2715de40d78b4ef8788ac987e2cbe0873177a81370f7c432",
    "urban-full": "0a1cf97ca76664ab74126d4155fb7ad59e5faf56cef25fbee6fdb7faf60bf05a",
    "urban-manhattan": "af9f5f89566851b02e397715a5caee2375c00cdba7c43ecea0216c6dbab04807",
    "urban-multisf": "1abbd21a417ed76593f59c2b35328e59ac5ad23ee386727cc23026eb3074d7e1",
    "urban-prophet": "2c8e32fa485b9aa13f58ddef5077917f36fbf6be268dbc6c13b389e09d9e4d45",
    "urban-random-placement": "4a9b79e0d5878fae9e974dea320d1c044b94b020a3aff6b0123be4cfc6de73d9",
    "urban-rwp": "5088d439416d26fd0a1636f6f4b676e2307c6bcde2120d392bc31f2111068333",
    "urban-smoke": "159d4f042f57f3a1344ce244c8bd5d2263f1e215e3e352b9f85fdd1bc05c1480",
}


class TestPresetGoldens:
    @pytest.mark.parametrize("preset_name", sorted(GOLDEN_ARRAY_FINGERPRINTS))
    def test_array_engine_reproduces_oracle_golden(self, preset_name):
        metrics = run_scenario(preset_golden_config(preset_name))
        assert _fingerprint(metrics) == GOLDEN_ARRAY_FINGERPRINTS[preset_name], (
            f"the array engine diverged from the oracle-recorded golden for "
            f"preset {preset_name!r}"
        )

    @pytest.mark.parametrize("preset_name", ["urban", "rural-smoke", "urban-prophet"])
    def test_goldens_are_oracle_derived(self, preset_name):
        """Spot-check: the object engine reproduces the same goldens, so the
        pins really are cross-engine, not array-self-consistency."""
        config = preset_golden_config(preset_name)
        metrics = MLoRaSimulation(build_scenario(config)).run()
        assert _fingerprint(metrics) == GOLDEN_ARRAY_FINGERPRINTS[preset_name]
