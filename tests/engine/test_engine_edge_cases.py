"""Edge-case regressions for the engine pair.

Boundary conditions the differential property suite is unlikely to sample:
empty fleets, devices that never reach a gateway, duty-cycle denials landing
exactly on the array engine's prefilter tick boundary, and the end-of-run
clock landing when the array engine's heap drains before ``duration_s``.
``ScenarioConfig`` validation requires at least one route, so these scenarios
are assembled by hand through the ``manual_scenario`` factory.
"""

from dataclasses import replace

import pytest

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import MLoRaSimulation
from repro.mac.device import DeviceConfig
from repro.mobility.geometry import Point


def _config(**overrides) -> ScenarioConfig:
    defaults = dict(duration_s=1200.0, num_routes=1, trips_per_route=1, seed=5)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _run_pair(manual_scenario, config, devices, gateways):
    """Both engines on independently built copies of the same hand scenario."""
    object_sim = MLoRaSimulation(manual_scenario(config, devices, gateways))
    array_sim = ArrayMLoRaSimulation(manual_scenario(config, devices, gateways))
    return object_sim, array_sim


class TestZeroDevices:
    def test_empty_fleet_runs_to_completion_on_both_engines(self, manual_scenario):
        config = _config()
        object_sim, array_sim = _run_pair(
            manual_scenario, config, {}, {"gw-000": Point(0.0, 0.0)}
        )
        object_metrics = object_sim.run()
        array_metrics = array_sim.run()
        assert object_metrics == array_metrics
        assert array_metrics.messages_generated == 0
        assert array_metrics.messages_delivered == 0
        assert array_sim.now == config.duration_s


class TestNoGatewayInRange:
    def test_out_of_range_device_retries_and_never_delivers(self, manual_scenario):
        # 100 km from the only gateway: every uplink fails, the retry chain
        # runs against the duty cycle for the whole window.
        config = _config()
        devices = {"bus-000": Point(0.0, 0.0)}
        gateways = {"gw-000": Point(100_000.0, 0.0)}
        object_sim, array_sim = _run_pair(manual_scenario, config, devices, gateways)
        object_metrics = object_sim.run()
        array_metrics = array_sim.run()
        assert object_metrics == array_metrics
        assert array_metrics.messages_delivered == 0
        assert array_metrics.messages_generated > 0
        device = array_sim.scenario.devices["bus-000"]
        assert device.stats.uplink_transmissions > 1  # the chain did retry


class TestDutyCycleAtTickBoundary:
    def test_duty_denial_exactly_on_prefilter_tick(self, manual_scenario):
        # Generation every 5 s with tick_s = 5 s puts every generation-time
        # attempt exactly on an array-prefilter tick boundary, and the ~6 s
        # duty-cycle off-time after each frame means many of those attempts
        # are denied at the boundary and rescheduled mid-tick.
        config = replace(
            _config(duration_s=300.0),
            device=DeviceConfig(message_interval_s=5.0),
        ).with_engine(tick_s=5.0)
        devices = {"bus-000": Point(0.0, 0.0)}
        gateways = {"gw-000": Point(50.0, 0.0)}
        object_sim, array_sim = _run_pair(manual_scenario, config, devices, gateways)
        object_metrics = object_sim.run()
        array_metrics = array_sim.run()
        assert object_metrics == array_metrics
        assert array_metrics.messages_generated == 60
        assert array_metrics.messages_delivered > 0
        device = array_sim.scenario.devices["bus-000"]
        # The duty cycle actually bit: fewer frames than messages.
        assert 0 < device.stats.uplink_transmissions < 60


class TestClockLandsOnUntil:
    def test_array_engine_lands_on_duration_after_draining_early(
        self, manual_scenario
    ):
        # One message at t = 0, delivered within a frame's airtime; the heap
        # is empty long before duration_s.  Idle-energy accounting depends on
        # the final clock, so both engines must land exactly on `until`.
        config = _config(duration_s=150.0)
        devices = {"bus-000": Point(0.0, 0.0)}
        gateways = {"gw-000": Point(50.0, 0.0)}
        object_sim, array_sim = _run_pair(manual_scenario, config, devices, gateways)
        object_metrics = object_sim.run()
        array_metrics = array_sim.run()
        assert object_metrics == array_metrics
        assert array_metrics.messages_delivered == 1
        assert array_sim.now == pytest.approx(config.duration_s, abs=0.0)
        assert object_sim.simulator.now == pytest.approx(config.duration_s, abs=0.0)
