"""Idle-energy accounting at the end of the simulated window.

``account_idle_energy`` charges each device for its in-window non-transmit
time as ``active - tx_time``.  When the *last* frame straddles the end of the
window (transmission starts before ``duration_s``, ends after), its full
airtime is recorded as TX time but only the in-window part overlaps the
active interval — so the straddling tail used to be subtracted from idle time
twice.  Only the final frame can straddle: the mandatory duty-cycle off-time
after any frame is ~99 airtimes, far longer than the frame itself, so a
device's own frames never overlap.

The discriminating scenario: one static device, one gateway far out of range
(every uplink fails), default 1 % duty cycle.  Frame 1 occupies ``[0, A]``
(A = airtime of a one-message bundle), the retry fires at the duty-cycle
boundary ``100 A``; a run of ``100.5 A`` cuts that second frame in half.
Idle time must be ``99 A`` (the gap between the frames, ``t2 - A``), not the
``98.5 A`` the double-count produced.
"""

import pytest

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import MLoRaSimulation
from repro.mac.frames import METRIC_FIELD_BYTES, PACKET_OVERHEAD_BYTES
from repro.mobility.geometry import Point
from repro.phy.constants import SpreadingFactor
from repro.phy.energy import RadioState
from repro.radio.medium import RadioMedium

from repro.experiments.runner import account_idle_energy  # noqa: F401  (unit under test)

ENGINES = {"object": MLoRaSimulation, "array": ArrayMLoRaSimulation}

#: Airtime of a single-message uplink: 13 B overhead + 4 B RCA metric + 20 B.
BUNDLE_BYTES = PACKET_OVERHEAD_BYTES + METRIC_FIELD_BYTES + 20
AIRTIME = RadioMedium().airtime_s(BUNDLE_BYTES, SpreadingFactor.SF7)


def _out_of_range_scenario(manual_scenario, duration_s: float):
    config = ScenarioConfig(
        duration_s=duration_s,
        num_routes=1,
        trips_per_route=1,
        seed=3,
    )
    return manual_scenario(
        config,
        {"bus-000": Point(0.0, 0.0)},
        {"gw-000": Point(100_000.0, 0.0)},  # 100 km: never in range
    )


def _idle_seconds(device) -> float:
    return device.energy.seconds_in(RadioState.RX) + device.energy.seconds_in(
        RadioState.SLEEP
    )


@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestFinalPartialFrame:
    def test_straddling_final_frame_counts_once(self, manual_scenario, engine):
        # Frame 1 at [0, A]; retry at the duty-cycle boundary 100 A runs past
        # the end of the window at 100.5 A.
        scenario = _out_of_range_scenario(manual_scenario, 100.5 * AIRTIME)
        ENGINES[engine](scenario).run()
        device = scenario.devices["bus-000"]
        assert device.stats.uplink_transmissions == 2
        assert device.energy.seconds_in(RadioState.TX) == pytest.approx(
            2 * AIRTIME, rel=1e-9
        )
        assert device.last_uplink_end > scenario.config.duration_s
        # The idle time is exactly the silence between the two frames.
        assert _idle_seconds(device) == pytest.approx(99 * AIRTIME, rel=1e-9)

    def test_fully_contained_frames_unchanged(self, manual_scenario, engine):
        # Same scenario but the window closes after frame 2 completes: no
        # overshoot, idle is the plain active - tx_time difference.
        scenario = _out_of_range_scenario(manual_scenario, 101.5 * AIRTIME)
        ENGINES[engine](scenario).run()
        device = scenario.devices["bus-000"]
        assert device.stats.uplink_transmissions == 2
        assert device.last_uplink_end < scenario.config.duration_s
        assert _idle_seconds(device) == pytest.approx(99.5 * AIRTIME, rel=1e-9)
