"""Shared fixtures for the engine differential test suite.

The tests in this package compare the object-graph oracle
(:class:`repro.experiments.runner.MLoRaSimulation`) against the array engine
(:class:`repro.engine.array_engine.ArrayMLoRaSimulation`) on the *same*
configuration, so every helper here builds scenarios fresh per engine —
engines mutate device and queue state, a built scenario cannot be reused.

``manual_scenario`` assembles a :class:`BuiltScenario` by hand from explicit
device/gateway positions.  ``ScenarioConfig`` validation (``num_routes > 0``)
makes zero-device and single-device edge cases impossible to express through
``build_scenario``; the factory sidesteps the mobility model entirely with
static traces.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Mapping, Optional, Tuple

import pytest

from repro.engine.array_engine import ArrayMLoRaSimulation
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import MLoRaSimulation
from repro.experiments.scenario import BuiltScenario, build_scenario, make_device_class
from repro.mac.device import EndDevice
from repro.mac.gateway import Gateway
from repro.mac.queueing import make_buffer_policy
from repro.mobility.geometry import BoundingBox, Point
from repro.mobility.trace import MobilityTrace
from repro.network.node import DeviceNode, SinkNode
from repro.network.topology import TimeVaryingTopology, TopologyConfig
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import LogDistancePathLoss
from repro.radio.sf_policy import RadioAssignment
from repro.routing import build_scheme
from repro.sim.randomness import RandomStreams

ENGINES = {"object": MLoRaSimulation, "array": ArrayMLoRaSimulation}


def fingerprint(metrics) -> str:
    """A SHA-256 over every raw field of a RunMetrics (order-independent).

    Same payload as the goldens in ``tests/experiments``; restated here so
    the engine suite cannot drift with those modules.
    """
    payload = {
        "scheme": metrics.scheme,
        "messages_generated": metrics.messages_generated,
        "messages_delivered": metrics.messages_delivered,
        "delays_s": metrics.delays_s,
        "hop_counts": metrics.hop_counts,
        "delivery_times_s": metrics.delivery_times_s,
        "transmissions_per_device": metrics.transmissions_per_device,
        "energy_joules_per_device": metrics.energy_joules_per_device,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    ).hexdigest()


def build_manual_scenario(
    config: ScenarioConfig,
    device_positions: Mapping[str, Point],
    gateway_positions: Mapping[str, Point],
    trace_windows: Optional[Mapping[str, Tuple[float, float]]] = None,
) -> BuiltScenario:
    """A BuiltScenario with hand-placed static devices and gateways.

    ``trace_windows`` bounds a device's in-service interval; devices without
    an entry are in service for the whole run (open-ended static trace).
    """
    streams = RandomStreams(config.seed)
    windows = dict(trace_windows or {})
    traces: Dict[str, MobilityTrace] = {}
    for device_id, position in device_positions.items():
        start, end = windows.get(device_id, (0.0, math.inf))
        traces[device_id] = MobilityTrace.static(
            position, start=start, end=end, node_id=device_id
        )
    buffer = config.routing.buffer
    devices = {
        device_id: EndDevice(
            device_id,
            config=config.device,
            device_class=make_device_class(config.device_class),
            queue_policy=make_buffer_policy(buffer.policy, buffer.ttl_s),
            queue_capacity=buffer.capacity if buffer.capacity > 0 else None,
        )
        for device_id in traces
    }
    gateways = {
        gateway_id: Gateway(gateway_id, position)
        for gateway_id, position in gateway_positions.items()
    }
    points = list(device_positions.values()) + list(gateway_positions.values())
    margin = 1000.0
    box = BoundingBox(
        min(p.x for p in points) - margin,
        min(p.y for p in points) - margin,
        max(p.x for p in points) + margin,
        max(p.y for p in points) + margin,
    )
    capacity_model = LinkCapacityModel.for_spreading_factor()
    topology = TimeVaryingTopology(
        devices=[DeviceNode(device_id, trace) for device_id, trace in traces.items()],
        sinks=[SinkNode(gid, gw.position) for gid, gw in gateways.items()],
        config=TopologyConfig(
            gateway_range_m=config.gateway_range_m,
            device_range_m=config.device_range_m,
            shadowing_enabled=config.shadowing,
        ),
        path_loss=LogDistancePathLoss(),
        capacity_model=capacity_model,
        rng=streams.stream("shadowing"),
    )
    return BuiltScenario(
        config=config,
        streams=streams,
        bounding_box=box,
        traces=traces,
        devices=devices,
        gateways=gateways,
        topology=topology,
        scheme=build_scheme(config.scheme, config.routing),
        capacity_model=capacity_model,
        radio_assignments={device_id: RadioAssignment() for device_id in traces},
    )


@pytest.fixture
def manual_scenario():
    """Factory fixture: hand-built scenarios for edge-case tests."""
    return build_manual_scenario


@pytest.fixture
def metrics_fingerprint():
    return fingerprint


@pytest.fixture
def run_both():
    """Run both engines on ``config`` (fresh scenario each) and return their
    RunMetrics as an ``(object, array)`` pair."""

    def _run(config: ScenarioConfig):
        object_metrics = MLoRaSimulation(build_scenario(config)).run()
        array_metrics = ArrayMLoRaSimulation(build_scenario(config)).run()
        return object_metrics, array_metrics

    return _run
