"""Unit tests for run-level metrics."""

import math

import pytest

from repro.analysis.metrics import RunMetrics, compute_run_metrics
from repro.mac.device import EndDevice
from repro.mac.frames import DataMessage, UplinkPacket
from repro.mac.network_server import NetworkServer


def _metrics(**overrides):
    defaults = dict(
        scheme="robc",
        num_gateways=40,
        device_range_m=500.0,
        duration_s=3600.0,
        messages_generated=100,
        messages_delivered=80,
        delays_s=[10.0, 20.0, 30.0],
        hop_counts=[1, 2, 3],
        delivery_times_s=[100.0, 700.0, 1300.0],
        transmissions_per_device={"a": 10, "b": 30},
        energy_joules_per_device={"a": 1.0, "b": 3.0},
    )
    defaults.update(overrides)
    return RunMetrics(**defaults)


class TestRunMetrics:
    def test_delivery_ratio(self):
        assert _metrics().delivery_ratio == pytest.approx(0.8)
        assert _metrics(messages_generated=0).delivery_ratio == 0.0

    def test_mean_delay_and_ci(self):
        metrics = _metrics()
        assert metrics.mean_delay_s == pytest.approx(20.0)
        mean, half = metrics.delay_ci95_s
        assert mean == pytest.approx(20.0)
        assert half > 0.0

    def test_mean_delay_nan_when_nothing_delivered(self):
        assert math.isnan(_metrics(delays_s=[]).mean_delay_s)

    def test_hop_and_overhead_means(self):
        metrics = _metrics()
        assert metrics.mean_hop_count == pytest.approx(2.0)
        assert metrics.mean_messages_sent_per_node == pytest.approx(20.0)
        assert metrics.mean_energy_joules == pytest.approx(2.0)

    def test_throughput_timeseries_bins(self):
        starts, counts = _metrics().throughput_timeseries(bin_width_s=600.0)
        assert len(starts) == 6
        assert counts.sum() == 3.0


class TestComputeRunMetrics:
    def test_assembles_from_devices_and_server(self):
        device = EndDevice("bus-0001")
        message = device.generate_message(now=5.0)
        server = NetworkServer()
        packet = UplinkPacket(sender="bus-0001", sent_at=65.0, messages=(message,))
        server.process_uplink(packet, "gw-1", now=65.0)
        device.record_uplink(now=65.0, airtime_s=0.4)

        metrics = compute_run_metrics(
            scheme="no-routing",
            num_gateways=4,
            device_range_m=500.0,
            duration_s=3600.0,
            devices=[device],
            server=server,
        )
        assert metrics.messages_generated == 1
        assert metrics.messages_delivered == 1
        assert metrics.delays_s == [pytest.approx(60.0)]
        assert metrics.hop_counts == [1]
        assert metrics.transmissions_per_device == {"bus-0001": 1}
        assert metrics.energy_joules_per_device["bus-0001"] > 0.0

    def test_hops_counted_through_handover(self):
        origin = EndDevice("bus-0001")
        carrier = EndDevice("bus-0002")
        message = origin.generate_message(now=0.0)
        origin.release_messages([message.message_id])
        carrier.accept_handover([message], sender="bus-0001")
        server = NetworkServer()
        packet = UplinkPacket(sender="bus-0002", sent_at=10.0, messages=(message,))
        server.process_uplink(packet, "gw-1", now=10.0)
        metrics = compute_run_metrics("rca-etx", 4, 500.0, 100.0, [origin, carrier], server)
        assert metrics.hop_counts == [2]
        assert metrics.messages_generated == 1

    def test_unknown_message_source_still_counted_as_delivery(self):
        server = NetworkServer()
        message = DataMessage(source="ghost", created_at=0.0)
        server.process_uplink(
            UplinkPacket(sender="ghost", sent_at=1.0, messages=(message,)), "gw-1", 1.0
        )
        metrics = compute_run_metrics("no-routing", 1, 500.0, 10.0, [], server)
        assert metrics.messages_delivered == 1
