"""Unit tests for time-series binning."""

import pytest

from repro.analysis.timeseries import bin_events, cumulative_counts, moving_average


class TestBinEvents:
    def test_counts_events_per_bin(self):
        starts, counts = bin_events([5.0, 15.0, 16.0, 25.0], bin_width_s=10.0, horizon_s=30.0)
        assert list(starts) == [0.0, 10.0, 20.0]
        assert list(counts) == [1.0, 2.0, 1.0]

    def test_weights_are_summed(self):
        _, counts = bin_events([1.0, 2.0], 10.0, 10.0, weights=[2.0, 3.0])
        assert list(counts) == [5.0]

    def test_events_beyond_horizon_dropped(self):
        _, counts = bin_events([50.0], 10.0, 30.0)
        assert counts.sum() == 0.0

    def test_total_count_preserved_within_horizon(self):
        times = [float(t) for t in range(0, 86400, 613)]
        _, counts = bin_events(times, 600.0, 86400.0)
        assert counts.sum() == len(times)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            bin_events([1.0], 0.0, 10.0)
        with pytest.raises(ValueError):
            bin_events([1.0], 10.0, 10.0, weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            bin_events([-1.0], 10.0, 10.0)


class TestCumulativeCounts:
    def test_cumulative_is_monotone_and_ends_at_total(self):
        times = [100.0, 200.0, 5000.0]
        _, cumulative = cumulative_counts(times, horizon_s=6000.0, resolution_s=600.0)
        assert list(cumulative) == sorted(cumulative)
        assert cumulative[-1] == 3.0


class TestMovingAverage:
    def test_smooths_with_window(self):
        assert moving_average([0.0, 10.0, 20.0], window=2) == [0.0, 5.0, 15.0]

    def test_window_one_is_identity(self):
        assert moving_average([1.0, 2.0, 3.0], window=1) == [1.0, 2.0, 3.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)
