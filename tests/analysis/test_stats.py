"""Unit tests for statistical helpers."""

import math

import pytest

from repro.analysis.stats import (
    confidence_interval_95,
    improvement_percent,
    mean_and_std,
    reduction_percent,
    relative_change,
)


class TestMeanAndStd:
    def test_known_values(self):
        mean, std = mean_and_std([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_empty_input_gives_nan(self):
        mean, std = mean_and_std([])
        assert math.isnan(mean) and math.isnan(std)


class TestConfidenceInterval:
    def test_zero_width_for_single_sample(self):
        mean, half = confidence_interval_95([5.0])
        assert mean == 5.0 and half == 0.0

    def test_width_shrinks_with_more_samples(self):
        few = confidence_interval_95([1.0, 3.0] * 5)[1]
        many = confidence_interval_95([1.0, 3.0] * 50)[1]
        assert many < few

    def test_empty_input_gives_nan(self):
        mean, half = confidence_interval_95([])
        assert math.isnan(mean) and math.isnan(half)


class TestRelativeChange:
    def test_improvement(self):
        assert relative_change(100.0, 153.0) == pytest.approx(0.53)
        assert improvement_percent(100.0, 153.0) == pytest.approx(53.0)

    def test_reduction(self):
        assert reduction_percent(200.0, 150.0) == pytest.approx(25.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_change(0.0, 1.0)
