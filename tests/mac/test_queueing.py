"""Unit tests for the data queue and its buffer-management policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.frames import DataMessage
from repro.mac.queueing import (
    BUFFER_POLICY_FACTORIES,
    DataQueue,
    DropNewPolicy,
    DropOldestPolicy,
    PriorityAgePolicy,
    TTLExpiryPolicy,
    make_buffer_policy,
)

POLICY_NAMES = sorted(BUFFER_POLICY_FACTORIES)


def _policy(name, ttl_s=120.0):
    return make_buffer_policy(name, ttl_s)


def _message(i=0):
    return DataMessage(source=f"bus-{i}", created_at=float(i))


class TestDataQueue:
    def test_push_and_len(self):
        queue = DataQueue()
        queue.push(_message())
        queue.push(_message())
        assert len(queue) == 2

    def test_duplicate_message_rejected(self):
        queue = DataQueue()
        message = _message()
        assert queue.push(message)
        assert not queue.push(message)
        assert len(queue) == 1

    def test_capacity_enforced_and_drops_counted(self):
        queue = DataQueue(max_size=2)
        assert queue.push(_message(1))
        assert queue.push(_message(2))
        assert not queue.push(_message(3))
        assert queue.dropped == 1
        assert queue.is_full

    def test_duplicate_and_capacity_counters_are_split(self):
        # A duplicate is dedup (the data is still carried), a capacity
        # rejection is loss; buffer sweeps need to tell them apart.
        queue = DataQueue(max_size=1)
        message = _message(1)
        assert queue.push(message)
        assert not queue.push(message)
        assert not queue.push(_message(2))
        assert queue.rejected_duplicate == 1
        assert queue.dropped_full == 1
        assert queue.dropped == queue.dropped_full

    def test_peek_preserves_fifo_order_without_removal(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(5)]
        queue.extend(messages)
        assert queue.peek(3) == messages[:3]
        assert len(queue) == 5

    def test_pop_front_removes_in_order(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(4)]
        queue.extend(messages)
        popped = queue.pop_front(2)
        assert popped == messages[:2]
        assert queue.peek_all() == messages[2:]

    def test_remove_by_id(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(3)]
        queue.extend(messages)
        removed = queue.remove([messages[1].message_id, 999_999])
        assert removed == [messages[1]]
        assert len(queue) == 2

    def test_contains_by_id(self):
        queue = DataQueue()
        message = _message()
        queue.push(message)
        assert message.message_id in queue
        assert -1 not in queue

    def test_clear_returns_everything(self):
        queue = DataQueue()
        queue.extend(_message(i) for i in range(3))
        assert len(queue.clear()) == 3
        assert len(queue) == 0

    def test_extend_reports_accepted_count(self):
        queue = DataQueue(max_size=2)
        accepted = queue.extend(_message(i) for i in range(5))
        assert accepted == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DataQueue(max_size=0)
        with pytest.raises(ValueError):
            DataQueue().peek(-1)
        with pytest.raises(ValueError):
            make_buffer_policy("not-a-policy")
        with pytest.raises(ValueError):
            TTLExpiryPolicy(ttl_s=0.0)


class TestPolicies:
    def test_factory_builds_every_registered_policy(self):
        built = {name: _policy(name) for name in POLICY_NAMES}
        assert isinstance(built["drop-new"], DropNewPolicy)
        assert isinstance(built["drop-oldest"], DropOldestPolicy)
        assert isinstance(built["ttl-expiry"], TTLExpiryPolicy)
        assert isinstance(built["priority-age"], PriorityAgePolicy)
        for name, policy in built.items():
            assert policy.name == name

    def test_drop_oldest_evicts_head_to_admit_new(self):
        queue = DataQueue(max_size=2, policy=DropOldestPolicy())
        first, second, third = _message(1), _message(2), _message(3)
        queue.extend([first, second])
        assert queue.push(third)
        assert queue.peek_all() == [second, third]
        assert queue.dropped_full == 1
        assert first.message_id not in queue

    def test_priority_age_serves_oldest_created_first(self):
        queue = DataQueue(policy=PriorityAgePolicy())
        newer, older = _message(5), _message(1)
        queue.push(newer)
        queue.push(older)  # arrives later but was created earlier
        assert queue.peek(1) == [older]
        assert queue.peek_all() == [older, newer]

    def test_priority_age_evicts_oldest_created_when_full(self):
        queue = DataQueue(max_size=2, policy=PriorityAgePolicy())
        newer, older, incoming = _message(5), _message(1), _message(9)
        queue.extend([newer, older])
        assert queue.push(incoming)
        assert older.message_id not in queue
        assert queue.peek_all() == [newer, incoming]
        assert queue.dropped_full == 1

    def test_ttl_expires_stale_messages_on_touch(self):
        queue = DataQueue(policy=TTLExpiryPolicy(ttl_s=10.0))
        stale, fresh = _message(0), _message(9)
        queue.extend([stale, fresh], now=9.0)
        assert len(queue) == 2
        assert queue.peek_all(now=10.5) == [fresh]
        assert queue.expired_ttl == 1

    def test_ttl_without_time_is_inert(self):
        queue = DataQueue(policy=TTLExpiryPolicy(ttl_s=10.0))
        queue.push(_message(0))
        assert queue.peek_all() == queue.peek_all(now=None)
        assert queue.expired_ttl == 0

    def test_explicit_expire_reports_removed_count(self):
        queue = DataQueue(policy=TTLExpiryPolicy(ttl_s=10.0))
        queue.extend([_message(0), _message(1), _message(20)])
        assert queue.expire(15.0) == 2
        assert queue.expire(15.0) == 0
        assert len(queue) == 1

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_capacity_one_queue(self, name):
        # The degenerate capacity: every policy must keep exactly one
        # message, lose exactly one per overflowing push and stay usable.
        queue = DataQueue(max_size=1, policy=_policy(name, ttl_s=1e9))
        first, second = _message(1), _message(2)
        assert queue.push(first, now=1.0)
        admitted = queue.push(second, now=2.0)
        assert len(queue) == 1
        assert queue.dropped_full == 1
        survivor = queue.peek_all()[0]
        assert survivor is (second if admitted else first)
        popped = queue.pop_front(1)
        assert popped == [survivor]
        assert len(queue) == 0

    def test_pop_front_and_remove_interact_with_ttl_expiry(self):
        queue = DataQueue(policy=TTLExpiryPolicy(ttl_s=10.0))
        stale, fresh, other = _message(0), _message(14), _message(15)
        queue.extend([stale, fresh, other])
        # pop_front with a current time expires first: the stale head is
        # removed by TTL (counted as expiry), not served.
        popped = queue.pop_front(1, now=15.0)
        assert popped == [fresh]
        assert queue.expired_ttl == 1
        # remove() of an already-expired id is a clean no-op.
        assert queue.remove([stale.message_id]) == []
        assert queue.remove([other.message_id]) == [other]
        assert len(queue) == 0


class TestPolicyProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        policy_name=st.sampled_from(POLICY_NAMES),
        max_size=st.integers(min_value=1, max_value=6),
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),  # message index (dups likely)
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            ),
            max_size=40,
        ),
    )
    def test_every_policy_keeps_ids_unique_and_respects_capacity(
        self, policy_name, max_size, events
    ):
        """Invariants of any buffer policy under arbitrary workloads:

        unique message ids, never above capacity, monotone non-decreasing
        time-ordered pushes, and conservation: every push is accounted as
        stored, duplicate-rejected, capacity-lost or TTL-expired.
        """
        queue = DataQueue(max_size=max_size, policy=_policy(policy_name, ttl_s=50.0))
        messages = {}
        accepted = 0
        clock = 0.0
        for index, advance in events:
            clock += advance
            if index not in messages:
                messages[index] = DataMessage(source=f"bus-{index}", created_at=clock)
            if queue.push(messages[index], now=clock):
                accepted += 1
            ids = [m.message_id for m in queue.peek_all()]
            assert len(ids) == len(set(ids))
            assert len(queue) <= max_size
        # Conservation.  Tail-drop policies (drop-new, ttl-expiry) count a
        # rejected push as the capacity loss; admitting policies (drop-oldest,
        # priority-age) admit the push and count the eviction instead.
        pushes = len(events)
        if policy_name in ("drop-new", "ttl-expiry"):
            assert pushes == accepted + queue.rejected_duplicate + queue.dropped_full
            assert accepted == len(queue) + queue.expired_ttl
        else:
            assert pushes == accepted + queue.rejected_duplicate
            assert accepted == len(queue) + queue.dropped_full
            assert queue.expired_ttl == 0
