"""Unit tests for the FIFO data queue."""

import pytest

from repro.mac.frames import DataMessage
from repro.mac.queueing import DataQueue


def _message(i=0):
    return DataMessage(source=f"bus-{i}", created_at=float(i))


class TestDataQueue:
    def test_push_and_len(self):
        queue = DataQueue()
        queue.push(_message())
        queue.push(_message())
        assert len(queue) == 2

    def test_duplicate_message_rejected(self):
        queue = DataQueue()
        message = _message()
        assert queue.push(message)
        assert not queue.push(message)
        assert len(queue) == 1

    def test_capacity_enforced_and_drops_counted(self):
        queue = DataQueue(max_size=2)
        assert queue.push(_message(1))
        assert queue.push(_message(2))
        assert not queue.push(_message(3))
        assert queue.dropped == 1
        assert queue.is_full

    def test_peek_preserves_fifo_order_without_removal(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(5)]
        queue.extend(messages)
        assert queue.peek(3) == messages[:3]
        assert len(queue) == 5

    def test_pop_front_removes_in_order(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(4)]
        queue.extend(messages)
        popped = queue.pop_front(2)
        assert popped == messages[:2]
        assert queue.peek_all() == messages[2:]

    def test_remove_by_id(self):
        queue = DataQueue()
        messages = [_message(i) for i in range(3)]
        queue.extend(messages)
        removed = queue.remove([messages[1].message_id, 999_999])
        assert removed == [messages[1]]
        assert len(queue) == 2

    def test_contains_by_id(self):
        queue = DataQueue()
        message = _message()
        queue.push(message)
        assert message.message_id in queue
        assert -1 not in queue

    def test_clear_returns_everything(self):
        queue = DataQueue()
        queue.extend(_message(i) for i in range(3))
        assert len(queue.clear()) == 3
        assert len(queue) == 0

    def test_extend_reports_accepted_count(self):
        queue = DataQueue(max_size=2)
        accepted = queue.extend(_message(i) for i in range(5))
        assert accepted == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DataQueue(max_size=0)
        with pytest.raises(ValueError):
            DataQueue().peek(-1)
