"""Unit tests for the end-device MAC state."""

import pytest

from repro.mac.device import DeviceConfig, EndDevice
from repro.mac.device_classes import ClassADevice, QueueBasedClassA
from repro.mac.frames import DataMessage
from repro.phy.energy import RadioState


@pytest.fixture
def device():
    return EndDevice("bus-0001", config=DeviceConfig(max_queue_size=32))


class TestMessageGeneration:
    def test_generate_enqueues_and_counts(self, device):
        message = device.generate_message(now=10.0)
        assert device.queue_length() == 1
        assert device.stats.messages_generated == 1
        assert message.source == "bus-0001"

    def test_generation_resets_retransmission_counter(self, device):
        device.generate_message(0.0)
        device.on_uplink_failed()
        device.on_uplink_failed()
        device.generate_message(180.0)
        assert device.retransmission_count == 0


class TestUplink:
    def test_build_uplink_bundles_up_to_limit(self, device):
        for i in range(20):
            device.generate_message(float(i))
        packet = device.build_uplink(now=30.0, include_queue_length=True)
        assert len(packet) == device.config.max_messages_per_packet
        assert packet.queue_length == 20
        assert packet.rca_etx_s is not None

    def test_build_uplink_without_queue_length_field(self, device):
        device.generate_message(0.0)
        packet = device.build_uplink(now=1.0, include_queue_length=False)
        assert packet.queue_length is None

    def test_build_uplink_empty_queue_raises(self, device):
        with pytest.raises(ValueError):
            device.build_uplink(0.0, include_queue_length=False)

    def test_record_uplink_updates_duty_cycle_energy_and_stats(self, device):
        device.generate_message(0.0)
        device.record_uplink(now=0.0, airtime_s=0.5)
        assert device.stats.uplink_transmissions == 1
        assert not device.can_transmit(1.0)
        assert device.energy.seconds_in(RadioState.TX) == 0.5
        assert device.last_uplink_end == 0.5

    def test_acknowledgement_clears_messages(self, device):
        messages = [device.generate_message(float(i)) for i in range(3)]
        removed = device.on_acknowledged([m.message_id for m in messages[:2]])
        assert len(removed) == 2
        assert device.queue_length() == 1
        assert device.stats.messages_acked == 2

    def test_uplink_failure_respects_retry_limit(self, device):
        device.generate_message(0.0)
        allowed = [device.on_uplink_failed() for _ in range(device.config.max_retransmissions + 1)]
        assert all(allowed[:-1])
        assert not allowed[-1]


class TestHandover:
    def test_transferable_messages_excludes_loop_back(self, device):
        own = device.generate_message(0.0)
        foreign = DataMessage(source="bus-0002", created_at=0.0)
        foreign.handover(device.device_id)
        foreign.received_from = "bus-0002"
        device.queue.push(foreign)
        eligible = device.transferable_messages("bus-0002", limit=10)
        assert own in eligible
        assert foreign not in eligible

    def test_transferable_messages_respects_limit(self, device):
        for i in range(10):
            device.generate_message(float(i))
        assert len(device.transferable_messages("bus-0002", limit=4)) == 4

    def test_release_messages_removes_and_counts(self, device):
        messages = [device.generate_message(float(i)) for i in range(3)]
        removed = device.release_messages([m.message_id for m in messages])
        assert len(removed) == 3
        assert device.stats.messages_handed_over == 3
        assert device.queue_length() == 0

    def test_accept_handover_increments_hops_and_stats(self, device):
        incoming = [DataMessage(source="bus-0002", created_at=0.0) for _ in range(2)]
        accepted = device.accept_handover(incoming, sender="bus-0002")
        assert accepted == 2
        assert device.stats.messages_received_from_peers == 2
        assert all(m.carried_by == device.device_id for m in device.queue.peek_all())
        assert all(m.hops == 1 for m in device.queue.peek_all())

    def test_accept_handover_respects_queue_capacity(self):
        device = EndDevice("bus-0001", config=DeviceConfig(max_queue_size=2))
        incoming = [DataMessage(source="bus-0002", created_at=0.0) for _ in range(5)]
        assert device.accept_handover(incoming, "bus-0002") == 2


class TestListeningAndEnergy:
    def test_modified_class_c_always_listening(self, device):
        assert device.is_listening(123.0)

    def test_class_a_device_does_not_overhear(self):
        device = EndDevice("bus-0001", device_class=ClassADevice())
        assert not device.is_listening(123.0)

    def test_queue_based_class_a_listening_depends_on_backlog(self):
        device = EndDevice(
            "bus-0001",
            config=DeviceConfig(max_queue_size=16),
            device_class=QueueBasedClassA(),
        )
        assert not device.is_listening(10.0)
        for i in range(16):
            device.generate_message(float(i))
        device.record_uplink(now=20.0, airtime_s=0.4)
        assert device.listening_fraction() > 0.0

    def test_account_idle_period_splits_rx_and_sleep(self):
        device = EndDevice("bus-0001", device_class=ClassADevice())
        device.account_idle_period(100.0)
        assert device.energy.seconds_in(RadioState.SLEEP) == pytest.approx(100.0)
        always_on = EndDevice("bus-0002")
        always_on.account_idle_period(100.0)
        assert always_on.energy.seconds_in(RadioState.RX) == pytest.approx(100.0)

    def test_negative_idle_period_rejected(self, device):
        with pytest.raises(ValueError):
            device.account_idle_period(-1.0)


class TestValidation:
    def test_empty_device_id_rejected(self):
        with pytest.raises(ValueError):
            EndDevice("")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(message_interval_s=0.0)
        with pytest.raises(ValueError):
            DeviceConfig(max_queue_size=0)
        with pytest.raises(ValueError):
            DeviceConfig(duty_cycle=1.5)
