"""Unit tests for the duty-cycle regulator."""

import pytest

from repro.mac.duty_cycle import DutyCycleRegulator


class TestDutyCycleRegulator:
    def test_initially_allowed(self):
        assert DutyCycleRegulator(0.01).can_transmit(0.0)

    def test_one_percent_off_time_is_99x_airtime(self):
        regulator = DutyCycleRegulator(0.01)
        next_allowed = regulator.record_transmission(now=0.0, airtime_s=1.0)
        assert next_allowed == pytest.approx(100.0)
        assert not regulator.can_transmit(50.0)
        assert regulator.can_transmit(100.0)

    def test_wait_time_counts_down(self):
        regulator = DutyCycleRegulator(0.01)
        regulator.record_transmission(0.0, 1.0)
        assert regulator.wait_time(40.0) == pytest.approx(60.0)
        assert regulator.wait_time(200.0) == 0.0

    def test_transmission_during_off_time_rejected(self):
        regulator = DutyCycleRegulator(0.01)
        regulator.record_transmission(0.0, 1.0)
        with pytest.raises(ValueError):
            regulator.record_transmission(10.0, 1.0)

    def test_full_duty_cycle_never_blocks(self):
        regulator = DutyCycleRegulator(1.0)
        regulator.record_transmission(0.0, 1.0)
        assert regulator.can_transmit(1.0)

    def test_airtime_accumulates(self):
        regulator = DutyCycleRegulator(0.5)
        regulator.record_transmission(0.0, 1.0)
        regulator.record_transmission(10.0, 2.0)
        assert regulator.total_airtime_s == pytest.approx(3.0)
        assert regulator.transmission_count == 2

    def test_utilisation(self):
        regulator = DutyCycleRegulator(0.5)
        regulator.record_transmission(0.0, 1.0)
        assert regulator.utilisation(100.0) == pytest.approx(0.01)

    def test_long_run_airtime_respects_duty_cycle(self):
        regulator = DutyCycleRegulator(0.01)
        now = 0.0
        airtime = 0.5
        for _ in range(50):
            now = max(now, regulator.next_allowed_time)
            regulator.record_transmission(now, airtime)
        horizon = regulator.next_allowed_time
        assert regulator.utilisation(horizon) <= 0.01 + 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DutyCycleRegulator(0.0)
        regulator = DutyCycleRegulator(0.01)
        with pytest.raises(ValueError):
            regulator.record_transmission(0.0, 0.0)
        with pytest.raises(ValueError):
            regulator.utilisation(0.0)


class TestPerChannelAccounting:
    def test_off_time_is_owed_per_channel(self):
        regulator = DutyCycleRegulator(0.01)
        regulator.record_transmission(0.0, 1.0, channel=0)
        # Channel 0 is blocked for 99 s; channel 1 is immediately free.
        assert not regulator.can_transmit(50.0, channel=0)
        assert regulator.can_transmit(50.0, channel=1)
        regulator.record_transmission(50.0, 1.0, channel=1)
        assert regulator.next_allowed_time_on(0) == pytest.approx(100.0)
        assert regulator.next_allowed_time_on(1) == pytest.approx(150.0)

    def test_violation_names_the_channel(self):
        regulator = DutyCycleRegulator(0.01)
        regulator.record_transmission(0.0, 1.0, channel=2)
        with pytest.raises(ValueError, match="channel 2"):
            regulator.record_transmission(10.0, 1.0, channel=2)

    def test_next_allowed_time_reports_the_busiest_channel(self):
        regulator = DutyCycleRegulator(0.5)
        assert regulator.next_allowed_time == 0.0
        regulator.record_transmission(0.0, 1.0, channel=0)
        regulator.record_transmission(0.0, 2.0, channel=1)
        assert regulator.next_allowed_time == pytest.approx(4.0)

    def test_airtime_accumulates_across_channels(self):
        regulator = DutyCycleRegulator(0.5)
        regulator.record_transmission(0.0, 1.0, channel=0)
        regulator.record_transmission(0.0, 2.0, channel=1)
        assert regulator.total_airtime_s == pytest.approx(3.0)
        assert regulator.transmission_count == 2

    def test_default_channel_keeps_single_channel_semantics(self):
        shared = DutyCycleRegulator(0.01)
        explicit = DutyCycleRegulator(0.01)
        shared.record_transmission(0.0, 1.0)
        explicit.record_transmission(0.0, 1.0, channel=0)
        assert shared.next_allowed_time == explicit.next_allowed_time
