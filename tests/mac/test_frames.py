"""Unit tests for messages, packets and acknowledgements."""

import pytest

from repro.mac.frames import (
    Acknowledgement,
    DataMessage,
    PACKET_OVERHEAD_BYTES,
    UplinkPacket,
    bundle_messages,
)


class TestDataMessage:
    def test_ids_are_unique(self):
        a = DataMessage(source="bus-1", created_at=0.0)
        b = DataMessage(source="bus-1", created_at=0.0)
        assert a.message_id != b.message_id

    def test_initial_carrier_is_source(self):
        message = DataMessage(source="bus-1", created_at=0.0)
        assert message.carried_by == "bus-1"
        assert message.hops == 0
        assert message.delivery_hop_count == 1

    def test_handover_updates_carrier_and_hops(self):
        message = DataMessage(source="bus-1", created_at=0.0)
        message.handover("bus-2")
        assert message.carried_by == "bus-2"
        assert message.received_from == "bus-1"
        assert message.hops == 1
        assert message.delivery_hop_count == 2

    def test_two_handover_chain(self):
        message = DataMessage(source="bus-1", created_at=0.0)
        message.handover("bus-2")
        message.handover("bus-3")
        assert message.received_from == "bus-2"
        assert message.delivery_hop_count == 3

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            DataMessage(source="bus-1", created_at=-1.0)
        with pytest.raises(ValueError):
            DataMessage(source="bus-1", created_at=0.0, size_bytes=0)
        message = DataMessage(source="bus-1", created_at=0.0)
        with pytest.raises(ValueError):
            message.handover("")


class TestUplinkPacket:
    def _messages(self, count):
        return tuple(DataMessage(source="bus-1", created_at=0.0) for _ in range(count))

    def test_payload_counts_overhead_and_messages(self):
        packet = UplinkPacket(sender="bus-1", sent_at=0.0, messages=self._messages(3))
        assert packet.payload_bytes == PACKET_OVERHEAD_BYTES + 3 * 20

    def test_metric_fields_add_bytes(self):
        bare = UplinkPacket(sender="bus-1", sent_at=0.0, messages=self._messages(1))
        with_metrics = UplinkPacket(
            sender="bus-1", sent_at=0.0, messages=self._messages(1),
            rca_etx_s=12.0, queue_length=4,
        )
        assert with_metrics.payload_bytes == bare.payload_bytes + 8

    def test_message_ids_and_len(self):
        messages = self._messages(2)
        packet = UplinkPacket(sender="bus-1", sent_at=0.0, messages=messages)
        assert len(packet) == 2
        assert packet.message_ids == tuple(m.message_id for m in messages)

    def test_handover_packet_requires_destination(self):
        with pytest.raises(ValueError):
            UplinkPacket(
                sender="bus-1", sent_at=0.0, messages=self._messages(1), is_handover=True
            )

    def test_empty_sender_rejected(self):
        with pytest.raises(ValueError):
            UplinkPacket(sender="", sent_at=0.0, messages=())


class TestBundling:
    def test_bundle_respects_limit(self):
        messages = [DataMessage(source="b", created_at=float(i)) for i in range(20)]
        assert len(bundle_messages(messages, limit=12)) == 12

    def test_bundle_keeps_fifo_order(self):
        messages = [DataMessage(source="b", created_at=float(i)) for i in range(5)]
        bundled = bundle_messages(messages, limit=3)
        assert bundled == messages[:3]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            bundle_messages([], limit=0)


class TestAcknowledgement:
    def test_valid_acknowledgement(self):
        ack = Acknowledgement("gw-1", "bus-1", (1, 2, 3), 10.0)
        assert ack.acked_message_ids == (1, 2, 3)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            Acknowledgement("", "bus-1", (), 0.0)
        with pytest.raises(ValueError):
            Acknowledgement("gw-1", "bus-1", (), -1.0)
