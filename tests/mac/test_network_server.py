"""Unit tests for the gateway and network server."""

import pytest

from repro.mac.frames import DataMessage, UplinkPacket
from repro.mac.gateway import Gateway
from repro.mac.network_server import NetworkServer
from repro.mobility.geometry import Point


def _packet(sender="bus-1", count=2, sent_at=10.0):
    messages = tuple(DataMessage(source=sender, created_at=1.0) for _ in range(count))
    return UplinkPacket(sender=sender, sent_at=sent_at, messages=messages)


class TestGateway:
    def test_receive_updates_counters(self):
        gateway = Gateway("gw-1", Point(0, 0))
        gateway.receive(_packet(count=3))
        gateway.receive(_packet(sender="bus-2", count=1))
        assert gateway.frames_received == 2
        assert gateway.messages_received == 4
        assert gateway.distinct_devices_heard == 2

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Gateway("", Point(0, 0))


class TestNetworkServer:
    def test_process_uplink_records_deliveries(self):
        server = NetworkServer()
        packet = _packet(count=2, sent_at=30.0)
        ack = server.process_uplink(packet, "gw-1", now=30.0)
        assert server.delivered_count == 2
        assert set(ack.acked_message_ids) == set(packet.message_ids)
        assert server.frames_processed == 1

    def test_duplicates_acknowledged_but_not_recounted(self):
        server = NetworkServer()
        packet = _packet(count=2)
        server.process_uplink(packet, "gw-1", now=10.0)
        ack = server.process_uplink(packet, "gw-2", now=11.0)
        assert server.delivered_count == 2
        assert server.duplicate_messages == 2
        assert len(ack.acked_message_ids) == 2

    def test_delay_uses_creation_and_delivery_times(self):
        server = NetworkServer()
        message = DataMessage(source="bus-1", created_at=5.0)
        packet = UplinkPacket(sender="bus-1", sent_at=47.0, messages=(message,))
        server.process_uplink(packet, "gw-1", now=47.0)
        assert server.delays() == [pytest.approx(42.0)]

    def test_hop_count_reflects_handovers(self):
        server = NetworkServer()
        message = DataMessage(source="bus-1", created_at=0.0)
        message.handover("bus-2")
        packet = UplinkPacket(sender="bus-2", sent_at=10.0, messages=(message,))
        server.process_uplink(packet, "gw-1", now=10.0)
        record = server.deliveries[0]
        assert record.delivery_hop_count == 2
        assert record.carrier == "bus-2"
        assert record.source == "bus-1"

    def test_is_delivered_and_lookup(self):
        server = NetworkServer()
        packet = _packet(count=1)
        server.process_uplink(packet, "gw-1", now=10.0)
        message_id = packet.message_ids[0]
        assert server.is_delivered(message_id)
        assert server.delivery(message_id).gateway_id == "gw-1"
        assert server.delivery(123456789) is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NetworkServer().process_uplink(_packet(), "gw-1", now=-1.0)
