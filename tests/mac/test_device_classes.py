"""Unit tests for the LoRaWAN device classes including the paper's variants."""

from repro.mac.device_classes import (
    ClassADevice,
    ClassCDevice,
    ModifiedClassC,
    QueueBasedClassA,
)


class TestClassA:
    def test_not_listening_before_any_uplink(self):
        assert not ClassADevice().is_listening(10.0, -1.0, 0, 64, 10.0)

    def test_listening_inside_rx1_window(self):
        device = ClassADevice()
        assert device.is_listening(now=101.2, last_uplink_end=100.0,
                                   queue_length=0, max_queue=64, sink_metric_s=10.0)

    def test_listening_inside_rx2_window(self):
        device = ClassADevice()
        assert device.is_listening(102.3, 100.0, 0, 64, 10.0)

    def test_not_listening_between_windows(self):
        device = ClassADevice()
        assert not device.is_listening(101.8, 100.0, 0, 64, 10.0)

    def test_not_listening_long_after_uplink(self):
        assert not ClassADevice().is_listening(200.0, 100.0, 0, 64, 10.0)

    def test_zero_listening_fraction(self):
        assert ClassADevice().listening_fraction(10, 64, 5.0) == 0.0


class TestClassC:
    def test_always_listening(self):
        device = ClassCDevice()
        assert device.is_listening(0.0, -1.0, 0, 64, 10.0)
        assert device.listening_fraction(0, 64, 10.0) == 1.0

    def test_plain_class_c_does_not_overhear_devices(self):
        assert not ClassCDevice().overhears_devices


class TestModifiedClassC:
    def test_always_listening_and_overhears(self):
        device = ModifiedClassC()
        assert device.is_listening(12345.0, -1.0, 5, 64, 100.0)
        assert device.overhears_devices
        assert device.listening_fraction(5, 64, 100.0) == 1.0


class TestQueueBasedClassA:
    def test_empty_queue_behaves_like_class_a(self):
        device = QueueBasedClassA()
        assert device.listening_fraction(0, 64, 10.0) == 0.0
        assert not device.is_listening(500.0, 100.0, 0, 64, 10.0)

    def test_full_queue_poor_gateway_listens_continuously(self):
        device = QueueBasedClassA()
        assert device.listening_fraction(64, 64, 1e6) == 1.0
        assert device.is_listening(1e6, 100.0, 64, 64, 1e6)

    def test_fractional_window_opens_right_after_uplink(self):
        # A well-connected device (sink metric 0.2 s -> phi clamps at phi_max)
        # with a small backlog gets a genuinely fractional window.
        device = QueueBasedClassA(reference_interval_s=100.0)
        fraction = device.listening_fraction(4, 64, 0.2)
        assert 0.0 < fraction < 1.0
        # Listening right after the uplink, closed once the window elapses.
        assert device.is_listening(100.0 + fraction * 100.0 * 0.5, 100.0, 4, 64, 0.2)
        assert not device.is_listening(100.0 + fraction * 100.0 + 50.0, 100.0, 4, 64, 0.2)

    def test_window_grows_with_queue(self):
        device = QueueBasedClassA()
        assert device.listening_fraction(32, 64, 10.0) >= device.listening_fraction(4, 64, 10.0)

    def test_overhears_devices(self):
        assert QueueBasedClassA().overhears_devices
