"""Unit tests for the CA-ETX baseline estimator."""

import pytest

from repro.core.ca_etx import CAETXEstimator


class TestCAETXEstimator:
    def test_no_history_returns_cap(self):
        assert CAETXEstimator(max_value_s=123.0).value == 123.0

    def test_deterministic_gaps_give_mean_residual_half_gap(self):
        estimator = CAETXEstimator()
        for _ in range(10):
            estimator.record_contact(transmission_time_s=2.0, preceding_gap_s=100.0)
        # Zero variance: residual wait is gap/2.
        assert estimator.value == pytest.approx(2.0 + 50.0)

    def test_variance_increases_expected_wait(self):
        regular = CAETXEstimator()
        bursty = CAETXEstimator()
        for gap in (100.0, 100.0, 100.0, 100.0):
            regular.record_contact(1.0, gap)
        for gap in (10.0, 190.0, 10.0, 190.0):
            bursty.record_contact(1.0, gap)
        assert bursty.value > regular.value

    def test_zero_gaps_mean_always_connected(self):
        estimator = CAETXEstimator()
        estimator.record_contact(3.0, 0.0)
        assert estimator.value == pytest.approx(3.0)

    def test_value_capped(self):
        estimator = CAETXEstimator(max_value_s=60.0)
        estimator.record_contact(1.0, 1e9)
        assert estimator.value == 60.0

    def test_statistics_accessors(self):
        estimator = CAETXEstimator()
        estimator.record_contact(2.0, 10.0)
        estimator.record_contact(4.0, 30.0)
        assert estimator.sample_count == 2
        assert estimator.mean_transmission_time == pytest.approx(3.0)
        assert estimator.mean_gap == pytest.approx(20.0)
        assert estimator.gap_variance == pytest.approx(100.0)

    def test_negative_inputs_rejected(self):
        estimator = CAETXEstimator()
        with pytest.raises(ValueError):
            estimator.record_contact(-1.0, 1.0)
        with pytest.raises(ValueError):
            estimator.record_contact(1.0, -1.0)
