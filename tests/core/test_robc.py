"""Unit tests for ROBC weights, transfer amounts (Eq. 10) and Eq. (11)."""

import pytest

from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import (
    queue_based_class_a_window_fraction,
    robc_transfer_amount,
    robc_weight,
)

RGQ = RealTimeGatewayQuality(phi_min=1e-6, phi_max=10.0)


class TestRobcWeight:
    def test_positive_when_own_corrected_backlog_larger(self):
        # Own device: 10 messages, poor gateway (metric 100 s);
        # neighbour: 2 messages, good gateway (metric 2 s).
        assert robc_weight(10, 100.0, 2, 2.0, RGQ) > 0

    def test_negative_when_neighbour_more_loaded(self):
        assert robc_weight(1, 2.0, 50, 2.0, RGQ) < 0

    def test_zero_for_identical_states(self):
        assert robc_weight(5, 10.0, 5, 10.0, RGQ) == pytest.approx(0.0)

    def test_equal_queues_push_towards_better_gateway(self):
        # Same backlog, but the neighbour drains faster -> positive weight.
        assert robc_weight(5, 100.0, 5, 1.0, RGQ) > 0


class TestRobcTransferAmount:
    def test_zero_when_weight_not_positive(self):
        assert robc_transfer_amount(1, 2.0, 50, 2.0, RGQ) == 0.0

    def test_equal_quality_transfers_queue_difference(self):
        # phi_x == phi_y, so delta = Q_x - Q_y.
        assert robc_transfer_amount(10, 5.0, 4, 5.0, RGQ) == pytest.approx(6.0)

    def test_transfer_never_exceeds_own_queue(self):
        amount = robc_transfer_amount(3, 1000.0, 0, 0.5, RGQ)
        assert 0 < amount <= 3

    def test_transfer_non_negative(self):
        assert robc_transfer_amount(0, 100.0, 0, 1.0, RGQ) == 0.0

    def test_better_neighbour_gateway_increases_transfer(self):
        small = robc_transfer_amount(10, 50.0, 5, 40.0, RGQ)
        large = robc_transfer_amount(10, 50.0, 5, 1.0, RGQ)
        assert large >= small


class TestQueueBasedClassAWindow:
    def test_empty_queue_gives_zero_window(self):
        assert queue_based_class_a_window_fraction(0, 64, 10.0, RGQ) == 0.0

    def test_fraction_clamped_to_one(self):
        assert queue_based_class_a_window_fraction(64, 64, 1e9, RGQ) == 1.0

    def test_longer_queue_opens_longer_window(self):
        # A well-connected device (small metric, large phi) so the fraction
        # stays below the clamp and the queue-length dependence is visible.
        short = queue_based_class_a_window_fraction(2, 64, 0.2, RGQ)
        long = queue_based_class_a_window_fraction(20, 64, 0.2, RGQ)
        assert long > short

    def test_worse_gateway_quality_opens_longer_window(self):
        good = queue_based_class_a_window_fraction(8, 64, 1.0, RGQ)
        poor = queue_based_class_a_window_fraction(8, 64, 1000.0, RGQ)
        assert poor >= good

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            queue_based_class_a_window_fraction(1, 0, 1.0, RGQ)
        with pytest.raises(ValueError):
            queue_based_class_a_window_fraction(-1, 10, 1.0, RGQ)
