"""Unit tests for RCA-ETX link metric and the Eq. (1) handover rule."""

import pytest

from repro.core.rca_etx import RCAETXState, link_rca_etx, should_forward_greedy
from repro.phy.link import LinkCapacityModel


@pytest.fixture
def capacity_model():
    return LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0)


class TestLinkRcaEtx:
    def test_strong_link_has_small_metric(self, capacity_model):
        assert link_rca_etx(-80.0, capacity_model, packet_bits=100.0) == pytest.approx(1.0)

    def test_disconnected_link_returns_cap(self, capacity_model):
        assert link_rca_etx(-130.0, capacity_model, packet_bits=100.0, max_value=999.0) == 999.0

    def test_metric_decreases_with_rssi(self, capacity_model):
        weak = link_rca_etx(-115.0, capacity_model, packet_bits=100.0)
        strong = link_rca_etx(-90.0, capacity_model, packet_bits=100.0)
        assert strong < weak

    def test_metric_scales_with_packet_size(self, capacity_model):
        small = link_rca_etx(-90.0, capacity_model, packet_bits=100.0)
        large = link_rca_etx(-90.0, capacity_model, packet_bits=200.0)
        assert large == pytest.approx(2.0 * small)

    def test_invalid_packet_bits_rejected(self, capacity_model):
        with pytest.raises(ValueError):
            link_rca_etx(-90.0, capacity_model, packet_bits=0.0)


class TestHandoverRule:
    def test_forwards_when_neighbour_route_strictly_cheaper(self):
        assert should_forward_greedy(100.0, 40.0, 10.0)

    def test_keeps_data_when_neighbour_route_equal_cost(self):
        assert not should_forward_greedy(50.0, 40.0, 10.0)

    def test_keeps_data_when_neighbour_route_more_expensive(self):
        assert not should_forward_greedy(50.0, 60.0, 10.0)

    def test_expensive_link_blocks_forwarding(self):
        assert not should_forward_greedy(100.0, 10.0, 95.0)

    def test_negative_metrics_rejected(self):
        with pytest.raises(ValueError):
            should_forward_greedy(-1.0, 1.0, 1.0)


class TestRCAETXState:
    def test_sink_metric_tracks_observations(self):
        state = RCAETXState(packet_bits=100.0)
        state.observe_transmission_slot(0.0, 100.0)
        assert state.sink_metric() == pytest.approx(1.0)

    def test_should_forward_to_connected_neighbour_when_disconnected(self, capacity_model):
        state = RCAETXState(packet_bits=100.0)
        state.observe_transmission_slot(0.0, 10.0)      # one old contact
        for slot in range(1, 6):
            state.observe_transmission_slot(slot * 180.0, 0.0)   # long outage
        assert state.should_forward_to(
            neighbour_sink_metric=2.0, rssi_dbm=-85.0, capacity_model=capacity_model
        )

    def test_should_not_forward_when_own_route_good(self, capacity_model):
        state = RCAETXState(packet_bits=100.0)
        state.observe_transmission_slot(0.0, 100.0)
        assert not state.should_forward_to(
            neighbour_sink_metric=2.0, rssi_dbm=-85.0, capacity_model=capacity_model
        )

    def test_explicit_own_metric_override(self, capacity_model):
        state = RCAETXState(packet_bits=100.0)
        assert state.should_forward_to(
            neighbour_sink_metric=1.0,
            rssi_dbm=-85.0,
            capacity_model=capacity_model,
            own_sink_metric=1000.0,
        )

    def test_link_metric_uses_configured_packet_bits(self, capacity_model):
        state = RCAETXState(packet_bits=200.0)
        assert state.link_metric(-80.0, capacity_model) == pytest.approx(2.0)
