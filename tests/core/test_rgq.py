"""Unit tests for Real-time Gateway Quality (ϕ)."""

import pytest

from repro.core.rgq import RealTimeGatewayQuality


class TestRealTimeGatewayQuality:
    def test_phi_is_reciprocal_of_metric_inside_bounds(self):
        rgq = RealTimeGatewayQuality(phi_min=0.001, phi_max=10.0)
        assert rgq.phi(4.0) == pytest.approx(0.25)

    def test_phi_clamped_to_upper_bound(self):
        rgq = RealTimeGatewayQuality(phi_min=0.001, phi_max=2.0)
        assert rgq.phi(0.1) == 2.0

    def test_phi_clamped_to_lower_bound(self):
        rgq = RealTimeGatewayQuality(phi_min=0.01, phi_max=10.0)
        assert rgq.phi(1e6) == 0.01

    def test_zero_metric_maps_to_best_quality(self):
        rgq = RealTimeGatewayQuality(phi_max=5.0)
        assert rgq.phi(0.0) == 5.0

    def test_corrected_queue_divides_by_phi(self):
        rgq = RealTimeGatewayQuality(phi_min=0.001, phi_max=10.0)
        assert rgq.corrected_queue(10.0, 2.0) == pytest.approx(20.0)

    def test_worse_gateway_quality_inflates_corrected_queue(self):
        rgq = RealTimeGatewayQuality()
        good = rgq.corrected_queue(10.0, 1.0)
        poor = rgq.corrected_queue(10.0, 100.0)
        assert poor > good

    def test_negative_inputs_rejected(self):
        rgq = RealTimeGatewayQuality()
        with pytest.raises(ValueError):
            rgq.phi(-1.0)
        with pytest.raises(ValueError):
            rgq.corrected_queue(-1.0, 1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RealTimeGatewayQuality(phi_min=5.0, phi_max=1.0)
        with pytest.raises(ValueError):
            RealTimeGatewayQuality(phi_min=0.0, phi_max=1.0)
