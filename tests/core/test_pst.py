"""Unit tests for PST/RPST (Eqs. 2-3) and the sink-contact tracker."""

import pytest

from repro.core.pst import RealTimePacketServiceTime, SinkContactTracker


class TestSinkContactTracker:
    def test_initial_state_has_no_history(self):
        tracker = SinkContactTracker()
        assert not tracker.has_contact_history
        assert tracker.contact_count == 0

    def test_connected_observation_recorded_as_contact(self):
        tracker = SinkContactTracker()
        tracker.observe(10.0, 50.0)
        assert tracker.has_contact_history
        assert tracker.last_contact_time == 10.0
        assert tracker.last_contact_capacity_bps == 50.0

    def test_disconnected_observation_keeps_last_contact(self):
        tracker = SinkContactTracker()
        tracker.observe(10.0, 50.0)
        tracker.observe(20.0, 0.0)
        assert tracker.last_slot_capacity_bps == 0.0
        assert tracker.last_contact_time == 10.0

    def test_contact_count_counts_disconnection_separated_contacts(self):
        tracker = SinkContactTracker()
        tracker.observe(0.0, 10.0)
        tracker.observe(1.0, 20.0)   # same contact
        tracker.observe(2.0, 0.0)    # gap
        tracker.observe(3.0, 30.0)   # new contact
        assert tracker.contact_count == 2

    def test_out_of_order_observation_rejected(self):
        tracker = SinkContactTracker()
        tracker.observe(10.0, 1.0)
        with pytest.raises(ValueError):
            tracker.observe(5.0, 1.0)

    def test_negative_values_rejected(self):
        tracker = SinkContactTracker()
        with pytest.raises(ValueError):
            tracker.observe(-1.0, 1.0)
        with pytest.raises(ValueError):
            tracker.observe(1.0, -1.0)


class TestRealTimePacketServiceTime:
    def test_no_history_returns_ceiling(self):
        pst = RealTimePacketServiceTime(packet_bits=100.0, max_service_time_s=1000.0)
        assert pst.rpst(now=50.0) == 1000.0
        assert pst.expected == 1000.0

    def test_connected_rpst_is_transmission_time_plus_wait(self):
        pst = RealTimePacketServiceTime(packet_bits=100.0)
        pst.tracker.observe(0.0, 50.0)
        assert pst.rpst(now=0.0, wait_s=3.0) == pytest.approx(100.0 / 50.0 + 3.0)

    def test_disconnected_rpst_grows_with_elapsed_time(self):
        pst = RealTimePacketServiceTime(packet_bits=100.0)
        pst.tracker.observe(0.0, 50.0)
        pst.tracker.observe(60.0, 0.0)
        early = pst.rpst(now=60.0)
        late = pst.rpst(now=600.0)
        assert late > early
        assert late == pytest.approx(100.0 / 50.0 + 600.0)

    def test_rpst_capped_at_maximum(self):
        pst = RealTimePacketServiceTime(packet_bits=100.0, max_service_time_s=500.0)
        pst.tracker.observe(0.0, 50.0)
        pst.tracker.observe(10.0, 0.0)
        assert pst.rpst(now=1e6) == 500.0

    def test_observe_slot_feeds_ewma(self):
        pst = RealTimePacketServiceTime(alpha=0.5, packet_bits=100.0)
        first = pst.observe_slot(0.0, 100.0)
        second = pst.observe_slot(10.0, 50.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert pst.expected == pytest.approx(1.5)
        assert pst.sample_count == 2

    def test_better_capacity_means_smaller_metric(self):
        good = RealTimePacketServiceTime(packet_bits=100.0)
        poor = RealTimePacketServiceTime(packet_bits=100.0)
        good.observe_slot(0.0, 100.0)
        poor.observe_slot(0.0, 5.0)
        assert good.expected < poor.expected

    def test_device_in_long_outage_has_growing_expected_metric(self):
        pst = RealTimePacketServiceTime(alpha=0.5, packet_bits=100.0)
        pst.observe_slot(0.0, 50.0)
        baseline = pst.expected
        for slot in range(1, 6):
            pst.observe_slot(slot * 180.0, 0.0)
        assert pst.expected > baseline

    def test_transmission_time_handles_zero_capacity(self):
        pst = RealTimePacketServiceTime(packet_bits=100.0, max_service_time_s=777.0)
        assert pst.transmission_time(0.0) == 777.0

    def test_reset_restores_initial_state(self):
        pst = RealTimePacketServiceTime()
        pst.observe_slot(0.0, 10.0)
        pst.reset()
        assert not pst.tracker.has_contact_history
        assert pst.expected == pst.max_service_time_s

    def test_negative_wait_rejected(self):
        pst = RealTimePacketServiceTime()
        with pytest.raises(ValueError):
            pst.rpst(0.0, wait_s=-1.0)

    def test_invalid_packet_bits_rejected(self):
        with pytest.raises(ValueError):
            RealTimePacketServiceTime(packet_bits=0.0)
