"""Unit tests for the classic ETX baseline."""

import pytest

from repro.core.etx import DeliveryRatioEstimator, ETXEstimator


class TestDeliveryRatioEstimator:
    def test_no_history_gives_zero_ratio(self):
        assert DeliveryRatioEstimator().ratio == 0.0

    def test_ratio_counts_successes(self):
        estimator = DeliveryRatioEstimator(window=4)
        for outcome in (True, True, False, True):
            estimator.record(outcome)
        assert estimator.ratio == pytest.approx(0.75)

    def test_window_slides(self):
        estimator = DeliveryRatioEstimator(window=2)
        estimator.record(False)
        estimator.record(True)
        estimator.record(True)
        assert estimator.ratio == 1.0
        assert estimator.sample_count == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DeliveryRatioEstimator(window=0)


class TestETXEstimator:
    def test_perfect_link_has_etx_one(self):
        etx = ETXEstimator()
        for _ in range(4):
            etx.record_forward(True)
            etx.record_reverse(True)
        assert etx.value == pytest.approx(1.0)

    def test_half_duplex_loss_gives_etx_two(self):
        etx = ETXEstimator()
        for outcome in (True, False, True, False):
            etx.record_forward(outcome)
            etx.record_reverse(True)
        assert etx.value == pytest.approx(2.0)

    def test_dead_link_capped_at_max(self):
        etx = ETXEstimator(max_etx=50.0)
        etx.record_forward(False)
        etx.record_reverse(False)
        assert etx.value == 50.0

    def test_value_without_history_is_max(self):
        assert ETXEstimator(max_etx=77.0).value == 77.0

    def test_invalid_max_rejected(self):
        with pytest.raises(ValueError):
            ETXEstimator(max_etx=1.0)
