"""Unit tests for the EWMA estimator (Eq. 4)."""

import pytest

from repro.core.ewma import ExponentialMovingAverage


class TestExponentialMovingAverage:
    def test_first_sample_initialises_estimate(self):
        ewma = ExponentialMovingAverage(alpha=0.5)
        assert ewma.update(10.0) == 10.0
        assert ewma.value == 10.0

    def test_update_follows_equation_4(self):
        ewma = ExponentialMovingAverage(alpha=0.25)
        ewma.update(100.0)
        assert ewma.update(0.0) == pytest.approx(75.0)
        assert ewma.update(0.0) == pytest.approx(56.25)

    def test_alpha_one_tracks_latest_sample(self):
        ewma = ExponentialMovingAverage(alpha=1.0)
        ewma.update(5.0)
        assert ewma.update(42.0) == 42.0

    def test_higher_alpha_adapts_faster(self):
        slow = ExponentialMovingAverage(alpha=0.1)
        fast = ExponentialMovingAverage(alpha=0.9)
        for estimator in (slow, fast):
            estimator.update(100.0)
            estimator.update(0.0)
        assert fast.value < slow.value

    def test_sample_count_and_initialised(self):
        ewma = ExponentialMovingAverage()
        assert not ewma.initialised
        ewma.update(1.0)
        ewma.update(2.0)
        assert ewma.sample_count == 2
        assert ewma.initialised

    def test_reset_clears_state(self):
        ewma = ExponentialMovingAverage()
        ewma.update(3.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.sample_count == 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)

    def test_non_finite_sample_rejected(self):
        ewma = ExponentialMovingAverage()
        with pytest.raises(ValueError):
            ewma.update(float("nan"))
        with pytest.raises(ValueError):
            ewma.update(float("inf"))
