"""Unit tests for contact extraction."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint
from repro.network.contact import (
    ContactInterval,
    extract_contact_graph,
    extract_contacts,
    extract_sink_contacts,
    inter_contact_times,
    sample_times,
    total_contact_time,
)


def _linear_trace(node_id, start_xy, end_xy, duration):
    return MobilityTrace(
        [TracePoint(0.0, Point(*start_xy)), TracePoint(duration, Point(*end_xy))],
        node_id=node_id,
    )


class TestContactInterval:
    def test_duration_and_contains(self):
        interval = ContactInterval("a", "b", 10.0, 30.0)
        assert interval.duration == 20.0
        assert interval.contains(20.0)
        assert not interval.contains(31.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ContactInterval("a", "b", 10.0, 5.0)


class TestExtractContacts:
    def test_static_nodes_in_range_single_full_contact(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0, node_id="a")
        b = MobilityTrace.static(Point(50, 0), start=0.0, end=100.0, node_id="b")
        contacts = extract_contacts(a, b, range_m=100.0, step_s=10.0)
        assert len(contacts) == 1
        assert contacts[0].start == 0.0
        assert contacts[0].end == pytest.approx(100.0)

    def test_static_nodes_out_of_range_no_contact(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0)
        b = MobilityTrace.static(Point(500, 0), start=0.0, end=100.0)
        assert extract_contacts(a, b, range_m=100.0) == []

    def test_drive_by_creates_single_bounded_contact(self):
        mover = _linear_trace("m", (-1000, 0), (1000, 0), duration=2000.0)
        static = MobilityTrace.static(Point(0, 0), start=0.0, end=2000.0, node_id="s")
        contacts = extract_contacts(mover, static, range_m=200.0, step_s=10.0)
        assert len(contacts) == 1
        # In range roughly between x=-200 and x=+200, i.e. t in [800, 1200].
        assert contacts[0].start == pytest.approx(800.0, abs=20.0)
        assert contacts[0].end == pytest.approx(1200.0, abs=20.0)

    def test_invalid_parameters_rejected(self):
        a = MobilityTrace.static(Point(0, 0), end=10.0)
        b = MobilityTrace.static(Point(1, 0), end=10.0)
        with pytest.raises(ValueError):
            extract_contacts(a, b, range_m=0.0)
        with pytest.raises(ValueError):
            extract_contacts(a, b, range_m=100.0, step_s=0.0)

    def test_single_sample_contact_is_a_zero_duration_point_contact(self):
        # The mover is within 50 m of the static node only at the t=20 sample:
        # the contact is real but the grid cannot resolve its width, so it is
        # reported as a zero-duration interval (documented behaviour).
        mover = MobilityTrace(
            [
                TracePoint(0.0, Point(1000, 0)),
                TracePoint(20.0, Point(0, 0)),
                TracePoint(40.0, Point(1000, 0)),
            ],
            node_id="m",
        )
        static = MobilityTrace.static(Point(0, 0), start=0.0, end=40.0, node_id="s")
        contacts = extract_contacts(mover, static, range_m=50.0, step_s=20.0)
        assert contacts == [ContactInterval("m", "s", 20.0, 20.0)]
        assert contacts[0].duration == 0.0
        assert total_contact_time(contacts) == 0.0

    def test_open_ended_traces_cannot_be_grid_sampled(self):
        a = MobilityTrace.static(Point(0, 0))  # no end: active forever
        b = MobilityTrace.static(Point(1, 0))
        with pytest.raises(ValueError, match="open-ended"):
            extract_contacts(a, b, range_m=100.0)


class TestSampleTimes:
    def test_grid_is_index_based_not_accumulated(self):
        times = sample_times(0.0, 100.0, 10.0)
        assert list(times) == [10.0 * k for k in range(11)]

    def test_endpoint_within_tolerance_is_kept(self):
        # 0.1 * 3 overshoots 0.30000000000000004 > 0.3; the relative
        # one-part-per-billion-of-a-step tolerance keeps the final sample.
        assert len(sample_times(0.0, 0.3, 0.1)) == 4

    def test_empty_when_interval_is_empty(self):
        assert sample_times(5.0, 5.0, 1.0).size == 0
        assert sample_times(5.0, 4.0, 1.0).size == 0


class TestExtractSinkContacts:
    def test_contact_with_any_gateway_counts(self):
        mover = _linear_trace("m", (0, 0), (4000, 0), duration=4000.0)
        sinks = [Point(1000, 0), Point(3000, 0)]
        contacts = extract_sink_contacts(mover, sinks, range_m=300.0, step_s=10.0)
        assert len(contacts) == 2

    def test_no_sinks_means_no_contacts(self):
        mover = _linear_trace("m", (0, 0), (100, 0), duration=100.0)
        assert extract_sink_contacts(mover, [], range_m=100.0) == []

    def test_overlapping_sink_coverage_unions_into_one_interval(self):
        # Two gateways whose coverage discs overlap along the path: the
        # device is never out of contact with the sink *set*, so the two
        # per-gateway contacts merge into a single (x, S) interval.
        mover = _linear_trace("m", (0, 0), (2000, 0), duration=2000.0)
        sinks = [Point(500, 0), Point(1200, 0)]
        contacts = extract_sink_contacts(mover, sinks, range_m=400.0, step_s=10.0)
        assert len(contacts) == 1
        assert contacts[0].start == pytest.approx(100.0, abs=10.0)
        assert contacts[0].end == pytest.approx(1600.0, abs=10.0)

    def test_disjoint_sink_coverage_stays_separate(self):
        mover = _linear_trace("m", (0, 0), (4000, 0), duration=4000.0)
        sinks = [Point(500, 0), Point(3500, 0)]
        contacts = extract_sink_contacts(mover, sinks, range_m=300.0, step_s=10.0)
        assert len(contacts) == 2
        assert contacts[0].end < contacts[1].start

    def test_sink_contact_naming(self):
        mover = _linear_trace("m", (0, 0), (10, 0), duration=100.0)
        contacts = extract_sink_contacts(mover, [Point(0, 0)], range_m=100.0)
        assert contacts[0].node_a == "m"
        assert contacts[0].node_b == "sinks"


class TestContactGraph:
    def test_matches_all_pairs_extraction(self):
        traces = [
            MobilityTrace.static(Point(0, 0), start=0.0, end=300.0, node_id="a"),
            _linear_trace("b", (-500, 0), (500, 0), duration=300.0),
            MobilityTrace.static(Point(5000, 5000), start=0.0, end=300.0, node_id="c"),
        ]
        brute = [
            interval
            for i, first in enumerate(traces)
            for second in traces[i + 1:]
            for interval in extract_contacts(first, second, 200.0, 10.0)
        ]
        assert extract_contact_graph(traces, 200.0, 10.0) == brute
        # The far-away node really was prunable: only the (a, b) pair meets.
        assert {(c.node_a, c.node_b) for c in brute} == {("a", "b")}

    def test_fewer_than_two_traces_is_empty(self):
        trace = MobilityTrace.static(Point(0, 0), start=0.0, end=10.0)
        assert extract_contact_graph([], 100.0) == []
        assert extract_contact_graph([trace], 100.0) == []

    def test_open_ended_traces_rejected(self):
        traces = [
            MobilityTrace.static(Point(0, 0)),
            MobilityTrace.static(Point(1, 0)),
        ]
        with pytest.raises(ValueError, match="bounded"):
            extract_contact_graph(traces, 100.0)


class TestAggregates:
    def test_total_contact_time(self):
        contacts = [ContactInterval("a", "b", 0, 10), ContactInterval("a", "b", 20, 25)]
        assert total_contact_time(contacts) == 15.0

    def test_inter_contact_times(self):
        contacts = [ContactInterval("a", "b", 0, 10), ContactInterval("a", "b", 30, 40),
                    ContactInterval("a", "b", 100, 110)]
        assert inter_contact_times(contacts) == [20.0, 60.0]

    def test_inter_contact_times_touching_intervals_gap_is_zero(self):
        contacts = [ContactInterval("a", "b", 0, 10), ContactInterval("a", "b", 10, 20)]
        assert inter_contact_times(contacts) == [0.0]

    def test_inter_contact_times_skips_overlapping_pairs(self):
        # Overlaps happen when aggregating contacts of different node pairs;
        # they contribute no (negative) gap — documented behaviour.
        contacts = [
            ContactInterval("a", "b", 0, 10),
            ContactInterval("a", "c", 5, 20),
            ContactInterval("a", "b", 30, 40),
        ]
        assert inter_contact_times(contacts) == [10.0]
