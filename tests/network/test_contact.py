"""Unit tests for contact extraction."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint
from repro.network.contact import (
    ContactInterval,
    extract_contacts,
    extract_sink_contacts,
    inter_contact_times,
    total_contact_time,
)


def _linear_trace(node_id, start_xy, end_xy, duration):
    return MobilityTrace(
        [TracePoint(0.0, Point(*start_xy)), TracePoint(duration, Point(*end_xy))],
        node_id=node_id,
    )


class TestContactInterval:
    def test_duration_and_contains(self):
        interval = ContactInterval("a", "b", 10.0, 30.0)
        assert interval.duration == 20.0
        assert interval.contains(20.0)
        assert not interval.contains(31.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ContactInterval("a", "b", 10.0, 5.0)


class TestExtractContacts:
    def test_static_nodes_in_range_single_full_contact(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0, node_id="a")
        b = MobilityTrace.static(Point(50, 0), start=0.0, end=100.0, node_id="b")
        contacts = extract_contacts(a, b, range_m=100.0, step_s=10.0)
        assert len(contacts) == 1
        assert contacts[0].start == 0.0
        assert contacts[0].end == pytest.approx(100.0)

    def test_static_nodes_out_of_range_no_contact(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0)
        b = MobilityTrace.static(Point(500, 0), start=0.0, end=100.0)
        assert extract_contacts(a, b, range_m=100.0) == []

    def test_drive_by_creates_single_bounded_contact(self):
        mover = _linear_trace("m", (-1000, 0), (1000, 0), duration=2000.0)
        static = MobilityTrace.static(Point(0, 0), start=0.0, end=2000.0, node_id="s")
        contacts = extract_contacts(mover, static, range_m=200.0, step_s=10.0)
        assert len(contacts) == 1
        # In range roughly between x=-200 and x=+200, i.e. t in [800, 1200].
        assert contacts[0].start == pytest.approx(800.0, abs=20.0)
        assert contacts[0].end == pytest.approx(1200.0, abs=20.0)

    def test_invalid_parameters_rejected(self):
        a = MobilityTrace.static(Point(0, 0), end=10.0)
        b = MobilityTrace.static(Point(1, 0), end=10.0)
        with pytest.raises(ValueError):
            extract_contacts(a, b, range_m=0.0)


class TestExtractSinkContacts:
    def test_contact_with_any_gateway_counts(self):
        mover = _linear_trace("m", (0, 0), (4000, 0), duration=4000.0)
        sinks = [Point(1000, 0), Point(3000, 0)]
        contacts = extract_sink_contacts(mover, sinks, range_m=300.0, step_s=10.0)
        assert len(contacts) == 2

    def test_no_sinks_means_no_contacts(self):
        mover = _linear_trace("m", (0, 0), (100, 0), duration=100.0)
        assert extract_sink_contacts(mover, [], range_m=100.0) == []


class TestAggregates:
    def test_total_contact_time(self):
        contacts = [ContactInterval("a", "b", 0, 10), ContactInterval("a", "b", 20, 25)]
        assert total_contact_time(contacts) == 15.0

    def test_inter_contact_times(self):
        contacts = [ContactInterval("a", "b", 0, 10), ContactInterval("a", "b", 30, 40),
                    ContactInterval("a", "b", 100, 110)]
        assert inter_contact_times(contacts) == [20.0, 60.0]
