"""Unit tests for the time-varying topology G(N, L, C(t))."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint
from repro.network.node import DeviceNode, SinkNode
from repro.network.topology import TimeVaryingTopology, TopologyConfig
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import DiscPathLoss


def _moving_device(device_id, start_xy, end_xy, duration=1000.0):
    trace = MobilityTrace(
        [TracePoint(0.0, Point(*start_xy)), TracePoint(duration, Point(*end_xy))],
        node_id=device_id,
    )
    return DeviceNode(device_id, trace)


def _static_device(device_id, xy, start=0.0, end=1000.0):
    return DeviceNode(device_id, MobilityTrace.static(Point(*xy), start=start, end=end))


def _topology(devices, sinks, device_range=500.0, gateway_range=1000.0):
    return TimeVaryingTopology(
        devices=devices,
        sinks=sinks,
        config=TopologyConfig(
            gateway_range_m=gateway_range, device_range_m=device_range
        ),
        path_loss=DiscPathLoss(radius_m=10_000.0, in_range_rssi_dbm=-90.0),
        capacity_model=LinkCapacityModel(
            max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
        ),
        position_cache_window_s=0.0,
    )


class TestConstruction:
    def test_requires_at_least_one_sink(self):
        with pytest.raises(ValueError):
            _topology([_static_device("d1", (0, 0))], [])

    def test_duplicate_device_ids_rejected(self):
        devices = [_static_device("d1", (0, 0)), _static_device("d1", (5, 5))]
        with pytest.raises(ValueError):
            _topology(devices, [SinkNode("gw", Point(0, 0))])

    def test_device_and_sink_id_overlap_rejected(self):
        with pytest.raises(ValueError):
            _topology([_static_device("x", (0, 0))], [SinkNode("x", Point(0, 0))])


class TestLinks:
    def test_device_link_connected_within_range(self):
        topology = _topology(
            [_static_device("a", (0, 0)), _static_device("b", (300, 0))],
            [SinkNode("gw", Point(10_000, 10_000))],
            device_range=500.0,
        )
        state = topology.device_link("a", "b", 10.0)
        assert state.connected
        assert state.distance_m == pytest.approx(300.0)

    def test_device_link_disconnected_beyond_range(self):
        topology = _topology(
            [_static_device("a", (0, 0)), _static_device("b", (600, 0))],
            [SinkNode("gw", Point(10_000, 10_000))],
            device_range=500.0,
        )
        assert not topology.device_link("a", "b", 10.0).connected

    def test_device_link_to_inactive_device_disconnected(self):
        topology = _topology(
            [_static_device("a", (0, 0)), _static_device("b", (100, 0), start=0.0, end=50.0)],
            [SinkNode("gw", Point(10_000, 10_000))],
        )
        assert topology.device_link("a", "b", 60.0).connected is False

    def test_in_contact_symmetry(self):
        topology = _topology(
            [_static_device("a", (0, 0)), _static_device("b", (100, 0))],
            [SinkNode("gw", Point(10_000, 10_000))],
        )
        assert topology.in_contact("a", "b", 1.0) == topology.in_contact("b", "a", 1.0)

    def test_unknown_device_raises(self):
        topology = _topology([_static_device("a", (0, 0))], [SinkNode("gw", Point(0, 0))])
        with pytest.raises(KeyError):
            topology.device_position("nope", 0.0)


class TestGatewayLinks:
    def test_best_gateway_is_the_closest_in_range(self):
        topology = _topology(
            [_static_device("a", (0, 0))],
            [SinkNode("gw-near", Point(200, 0)), SinkNode("gw-far", Point(900, 0))],
        )
        best_id, state = topology.best_gateway("a", 10.0)
        assert best_id == "gw-near"
        assert state.connected

    def test_no_gateway_in_range_returns_none(self):
        topology = _topology(
            [_static_device("a", (0, 0))],
            [SinkNode("gw", Point(5000, 0))],
            gateway_range=1000.0,
        )
        best_id, state = topology.best_gateway("a", 10.0)
        assert best_id is None
        assert not state.connected
        assert topology.sink_capacity("a", 10.0) == 0.0

    def test_gateways_in_range_lists_all_reachable(self):
        topology = _topology(
            [_static_device("a", (0, 0))],
            [SinkNode("gw1", Point(100, 0)), SinkNode("gw2", Point(0, 800)),
             SinkNode("gw3", Point(3000, 0))],
        )
        in_range = {gateway_id for gateway_id, _ in topology.gateways_in_range("a", 0.0)}
        assert in_range == {"gw1", "gw2"}

    def test_device_regains_gateway_contact_as_it_moves(self):
        device = _moving_device("a", (5000, 0), (0, 0), duration=1000.0)
        topology = _topology([device], [SinkNode("gw", Point(0, 0))])
        assert topology.sink_capacity("a", 0.0) == 0.0
        assert topology.sink_capacity("a", 1000.0) > 0.0


class TestNeighbourhoods:
    def test_neighbours_only_within_device_range(self):
        topology = _topology(
            [
                _static_device("a", (0, 0)),
                _static_device("near", (200, 0)),
                _static_device("far", (2000, 0)),
            ],
            [SinkNode("gw", Point(10_000, 10_000))],
            device_range=500.0,
        )
        neighbours = {n for n, _ in topology.neighbours("a", 10.0)}
        assert neighbours == {"near"}

    def test_neighbours_with_cache_match_exact_computation(self):
        devices = [
            _moving_device("a", (0, 0), (50, 0)),
            _moving_device("b", (300, 0), (350, 0)),
            _moving_device("c", (5000, 0), (5050, 0)),
        ]
        sinks = [SinkNode("gw", Point(10_000, 10_000))]
        exact = _topology(devices, sinks)
        cached = TimeVaryingTopology(
            devices=devices,
            sinks=sinks,
            config=TopologyConfig(gateway_range_m=1000.0, device_range_m=500.0),
            path_loss=DiscPathLoss(radius_m=10_000.0, in_range_rssi_dbm=-90.0),
            capacity_model=LinkCapacityModel(
                max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
            ),
            position_cache_window_s=30.0,
        )
        for time in (0.0, 100.0, 500.0, 999.0):
            assert {n for n, _ in exact.neighbours("a", time)} == {
                n for n, _ in cached.neighbours("a", time)
            }

    def test_active_devices_excludes_finished_trips(self):
        topology = _topology(
            [_static_device("a", (0, 0), end=100.0), _static_device("b", (0, 0), end=1000.0)],
            [SinkNode("gw", Point(0, 0))],
        )
        assert topology.active_devices(500.0) == ["b"]

    def test_connectivity_matrix_symmetric(self):
        topology = _topology(
            [_static_device("a", (0, 0)), _static_device("b", (100, 0)),
             _static_device("c", (5000, 5000))],
            [SinkNode("gw", Point(10_000, 10_000))],
        )
        matrix = topology.connectivity_matrix(10.0)
        assert matrix["a"]["b"] == matrix["b"]["a"]
        assert "c" not in matrix
