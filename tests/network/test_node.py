"""Unit tests for device and sink nodes."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace
from repro.network.node import DeviceNode, NodeKind, SinkNode


class TestDeviceNode:
    def test_position_follows_trace(self):
        trace = MobilityTrace.static(Point(3, 4), start=0.0, end=100.0)
        node = DeviceNode("bus-1", trace)
        assert node.kind is NodeKind.DEVICE
        assert node.position_at(50.0) == Point(3, 4)
        assert node.position_at(200.0) is None

    def test_is_active_mirrors_trace(self):
        trace = MobilityTrace.static(Point(0, 0), start=10.0, end=20.0)
        node = DeviceNode("bus-1", trace)
        assert node.is_active(15.0)
        assert not node.is_active(25.0)

    def test_empty_id_rejected(self):
        trace = MobilityTrace.static(Point(0, 0))
        with pytest.raises(ValueError):
            DeviceNode("", trace)


class TestSinkNode:
    def test_static_position_and_always_active(self):
        sink = SinkNode("gw-1", Point(7, 8))
        assert sink.kind is NodeKind.SINK
        assert sink.position_at(1e9) == Point(7, 8)
        assert sink.is_active(1e9)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SinkNode("", Point(0, 0))
