"""Property tests: the vectorized contact pipeline vs the scalar oracle.

The vectorized extractors promise *identical* output to the brute-force
scalar scan — same grids, same interpolation arithmetic, same merge — so the
properties below are exact-equality checks on random traces, not
approximate ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint
from repro.network.contact import (
    extract_contact_graph,
    extract_contacts,
    extract_contacts_scalar,
    extract_sink_contacts,
    extract_sink_contacts_scalar,
)

coordinates = st.floats(
    min_value=-1500.0, max_value=1500.0, allow_nan=False, allow_infinity=False
)
sample_steps = st.sampled_from([1.0, 2.5, 7.0, 10.0, 33.0])
ranges_m = st.floats(min_value=1.0, max_value=2500.0, allow_nan=False)


@st.composite
def traces(draw, node_id="t"):
    """A random piecewise-linear trace with 1–8 unique-time samples."""
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    points = [
        TracePoint(time, Point(draw(coordinates), draw(coordinates)))
        for time in sorted(times)
    ]
    return MobilityTrace(points, node_id=node_id)


@given(trace=traces(), step=sample_steps)
@settings(max_examples=150, deadline=None)
def test_positions_at_matches_position_at_everywhere(trace, step):
    """Batched sampling equals the scalar query bit-for-bit, incl. boundaries."""
    probes = np.concatenate([
        np.arange(-step, trace.end_time + 2 * step, step),
        np.asarray([trace.start_time, trace.end_time]),
        np.asarray([p.time for p in trace.points]),
    ])
    batch = trace.positions_at(probes)
    for time, row in zip(probes, batch):
        scalar = trace.position_at(float(time))
        if scalar is None:
            assert np.isnan(row).all()
        else:
            assert scalar.x == row[0] and scalar.y == row[1]


@given(trace_a=traces("a"), trace_b=traces("b"), step=sample_steps, range_m=ranges_m)
@settings(max_examples=200, deadline=None)
def test_vectorized_equals_scalar_oracle(trace_a, trace_b, step, range_m):
    assert extract_contacts(trace_a, trace_b, range_m, step) == extract_contacts_scalar(
        trace_a, trace_b, range_m, step
    )


@given(trace_a=traces("a"), trace_b=traces("b"), step=sample_steps, range_m=ranges_m)
@settings(max_examples=150, deadline=None)
def test_intervals_sorted_disjoint_and_bounded(trace_a, trace_b, step, range_m):
    contacts = extract_contacts(trace_a, trace_b, range_m, step)
    overlap_start = max(trace_a.start_time, trace_b.start_time)
    overlap_end = min(trace_a.end_time, trace_b.end_time)
    for contact in contacts:
        assert contact.duration >= 0.0
        assert contact.start >= overlap_start
        assert contact.end <= overlap_end + 1e-6
    for earlier, later in zip(contacts, contacts[1:]):
        # Separated by at least one out-of-range sample, never just touching.
        assert later.start > earlier.end


@given(trace_a=traces("a"), trace_b=traces("b"), step=sample_steps, range_m=ranges_m)
@settings(max_examples=150, deadline=None)
def test_symmetric_under_trace_swap(trace_a, trace_b, step, range_m):
    forward = extract_contacts(trace_a, trace_b, range_m, step)
    backward = extract_contacts(trace_b, trace_a, range_m, step)
    assert [(c.start, c.end) for c in forward] == [(c.start, c.end) for c in backward]


@given(
    trace=traces("mover"),
    sinks=st.lists(
        st.builds(Point, coordinates, coordinates), min_size=0, max_size=4
    ),
    step=sample_steps,
    range_m=ranges_m,
)
@settings(max_examples=150, deadline=None)
def test_sink_contacts_match_scalar_oracle(trace, sinks, step, range_m):
    assert extract_sink_contacts(trace, sinks, range_m, step) == (
        extract_sink_contacts_scalar(trace, sinks, range_m, step)
    )


@given(
    trace_list=st.lists(traces(), min_size=2, max_size=5),
    step=sample_steps,
    range_m=ranges_m,
)
@settings(max_examples=75, deadline=None)
def test_contact_graph_equals_all_pairs_brute_force(trace_list, step, range_m):
    for index, trace in enumerate(trace_list):
        trace.node_id = f"n{index}"
    brute = [
        interval
        for i, first in enumerate(trace_list)
        for second in trace_list[i + 1:]
        for interval in extract_contacts(first, second, range_m, step)
    ]
    assert extract_contact_graph(trace_list, range_m, step) == brute
