"""Property tests for the uniform-grid spatial index.

The grid is a pure candidate filter: for any layout it must reproduce the
brute-force answer exactly — including nodes straddling cell boundaries and
nodes at distance exactly equal to the communication range.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint
from repro.network.node import DeviceNode, SinkNode
from repro.network.spatial import UniformGridIndex
from repro.network.topology import TimeVaryingTopology, TopologyConfig
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import DiscPathLoss

#: Coordinates covering negative space and values far beyond one cell.
_coordinates = st.floats(
    min_value=-5000.0, max_value=5000.0, allow_nan=False, allow_infinity=False
)
_layouts = st.lists(st.tuples(_coordinates, _coordinates), min_size=1, max_size=50)


def _build_index(points, cell_size):
    return UniformGridIndex.from_positions(
        {f"n{i}": Point(x, y) for i, (x, y) in enumerate(points)}, cell_size
    )


class TestUniformGridIndex:
    def test_rejects_non_positive_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex(0.0)

    def test_rejects_duplicate_ids(self):
        index = UniformGridIndex(100.0)
        index.insert("a", Point(0, 0))
        with pytest.raises(ValueError):
            index.insert("a", Point(50, 50))

    def test_rejects_negative_query_ranges(self):
        index = UniformGridIndex(100.0)
        with pytest.raises(ValueError):
            index.candidates_in_disc(Point(0, 0), -1.0)
        with pytest.raises(ValueError):
            index.ids_in_square(Point(0, 0), -1.0)

    def test_contains_and_position_roundtrip(self):
        index = _build_index([(1.0, 2.0)], 10.0)
        assert "n0" in index and "n1" not in index
        assert index.position_of("n0") == Point(1.0, 2.0)
        assert len(index) == 1 and index.cell_count == 1

    @settings(max_examples=60, deadline=None)
    @given(points=_layouts, cell=st.floats(min_value=1.0, max_value=2000.0),
           cx=_coordinates, cy=_coordinates,
           radius=st.floats(min_value=0.0, max_value=3000.0))
    def test_disc_candidates_are_a_superset_of_the_true_disc(
        self, points, cell, cx, cy, radius
    ):
        index = _build_index(points, cell)
        center = Point(cx, cy)
        candidates = set(index.candidates_in_disc(center, radius))
        in_disc = {
            f"n{i}"
            for i, (x, y) in enumerate(points)
            if math.hypot(x - cx, y - cy) <= radius
        }
        assert in_disc <= candidates

    @settings(max_examples=60, deadline=None)
    @given(points=_layouts, cell=st.floats(min_value=1.0, max_value=2000.0),
           cx=_coordinates, cy=_coordinates,
           half=st.floats(min_value=0.0, max_value=3000.0))
    def test_square_query_matches_bruteforce_exactly(self, points, cell, cx, cy, half):
        index = _build_index(points, cell)
        result = index.ids_in_square(Point(cx, cy), half)
        expected = [
            f"n{i}"
            for i, (x, y) in enumerate(points)
            if abs(x - cx) <= half and abs(y - cy) <= half
        ]
        # Exact same membership AND insertion order.
        assert result == expected

    def test_point_on_cell_boundary_found_from_both_sides(self):
        # 100 m cells: a point at exactly x=100 hashes into cell 1 but must be
        # found by queries centred in cell 0 and cell 1 alike.
        index = _build_index([(100.0, 0.0)], 100.0)
        assert index.ids_in_square(Point(99.0, 0.0), 1.0) == ["n0"]
        assert index.ids_in_square(Point(101.0, 0.0), 1.0) == ["n0"]

    def test_distance_exactly_equal_to_radius_is_candidate(self):
        index = _build_index([(500.0, 0.0)], 500.0)
        assert "n0" in index.candidates_in_disc(Point(0.0, 0.0), 500.0)
        assert index.ids_in_square(Point(0.0, 0.0), 500.0) == ["n0"]


# --------------------------------------------------------------------- #
# Topology-level equivalence: grid-indexed queries == brute force
# --------------------------------------------------------------------- #
def _static_device(device_id, x, y, start=0.0, end=1000.0):
    return DeviceNode(device_id, MobilityTrace.static(Point(x, y), start=start, end=end))


def _topology(devices, sinks, device_range, gateway_range, cache_window=0.0):
    return TimeVaryingTopology(
        devices=devices,
        sinks=sinks,
        config=TopologyConfig(
            gateway_range_m=gateway_range, device_range_m=device_range
        ),
        path_loss=DiscPathLoss(radius_m=50_000.0, in_range_rssi_dbm=-90.0),
        capacity_model=LinkCapacityModel(
            max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
        ),
        position_cache_window_s=cache_window,
    )


class TestTopologyAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(
        device_points=st.lists(
            st.tuples(_coordinates, _coordinates), min_size=2, max_size=25
        ),
        sink_points=st.lists(
            st.tuples(_coordinates, _coordinates), min_size=1, max_size=8
        ),
        device_range=st.floats(min_value=10.0, max_value=2000.0),
        gateway_range=st.floats(min_value=10.0, max_value=2000.0),
    )
    def test_neighbours_and_gateways_match_bruteforce(
        self, device_points, sink_points, device_range, gateway_range
    ):
        devices = [
            _static_device(f"d{i}", x, y) for i, (x, y) in enumerate(device_points)
        ]
        sinks = [SinkNode(f"g{i}", Point(x, y)) for i, (x, y) in enumerate(sink_points)]
        topology = _topology(devices, sinks, device_range, gateway_range)
        time = 10.0
        for i, (x, y) in enumerate(device_points):
            neighbours = [n for n, _ in topology.neighbours(f"d{i}", time)]
            expected_neighbours = [
                f"d{j}"
                for j, (ox, oy) in enumerate(device_points)
                if j != i and math.hypot(ox - x, oy - y) <= device_range
            ]
            assert neighbours == expected_neighbours
            gateways = [g for g, _ in topology.gateways_in_range(f"d{i}", time)]
            expected_gateways = [
                f"g{j}"
                for j, (gx, gy) in enumerate(sink_points)
                if math.hypot(gx - x, gy - y) <= gateway_range
            ]
            assert gateways == expected_gateways

    def test_neighbour_at_distance_exactly_range_is_connected(self):
        devices = [_static_device("a", 0.0, 0.0), _static_device("b", 500.0, 0.0)]
        topology = _topology(devices, [SinkNode("g", Point(9000, 9000))], 500.0, 1000.0)
        assert [n for n, _ in topology.neighbours("a", 1.0)] == ["b"]

    def test_neighbours_straddling_cell_boundaries(self):
        # Devices placed just either side of multiples of the 500 m cell size.
        coords = [(-0.001, 0.0), (499.999, 0.0), (500.001, 0.0), (999.999, 0.0),
                  (1000.001, 0.0), (-499.999, 0.0), (-500.001, 0.0)]
        devices = [_static_device(f"d{i}", x, y) for i, (x, y) in enumerate(coords)]
        topology = _topology(devices, [SinkNode("g", Point(9000, 9000))], 500.0, 1000.0)
        for i, (x, y) in enumerate(coords):
            expected = [
                f"d{j}"
                for j, (ox, oy) in enumerate(coords)
                if j != i and math.hypot(ox - x, oy - y) <= 500.0
            ]
            assert [n for n, _ in topology.neighbours(f"d{i}", 5.0)] == expected

    def test_inactive_devices_never_appear(self):
        devices = [
            _static_device("a", 0.0, 0.0),
            _static_device("gone", 10.0, 0.0, start=0.0, end=50.0),
        ]
        topology = _topology(devices, [SinkNode("g", Point(9000, 9000))], 500.0, 1000.0)
        assert [n for n, _ in topology.neighbours("a", 60.0)] == []

    def test_cached_window_matches_exact_for_moving_devices(self):
        def mover(device_id, x0, x1):
            trace = MobilityTrace(
                [TracePoint(0.0, Point(x0, 0.0)), TracePoint(1000.0, Point(x1, 0.0))],
                node_id=device_id,
            )
            return DeviceNode(device_id, trace)

        devices = [
            mover("a", 0.0, 100.0),
            mover("b", 450.0, 550.0),
            mover("c", 3000.0, 3100.0),
        ]
        sinks = [SinkNode("g", Point(9000, 9000))]
        exact = _topology(devices, sinks, 500.0, 1000.0, cache_window=0.0)
        cached = _topology(devices, sinks, 500.0, 1000.0, cache_window=30.0)
        for time in (0.0, 10.0, 29.9, 30.0, 123.4, 500.0, 999.0):
            assert [n for n, _ in exact.neighbours("a", time)] == [
                n for n, _ in cached.neighbours("a", time)
            ]

    def test_query_stats_show_pruning(self):
        # 100 devices on a 450 m lattice; each 500 m query should examine only
        # a 3×3-cell block, far fewer than the 99 candidates a full scan sees.
        devices = [
            _static_device(f"d{i}", (i % 10) * 450.0, (i // 10) * 450.0)
            for i in range(100)
        ]
        topology = _topology(devices, [SinkNode("g", Point(90_000, 90_000))], 500.0, 1000.0)
        for i in range(100):
            topology.neighbours(f"d{i}", 1.0)
        full_scan = topology.neighbour_query_count * (len(devices) - 1)
        assert topology.neighbour_query_count == 100
        assert 0 < topology.neighbour_candidate_count < full_scan / 4
        topology.reset_query_stats()
        assert topology.neighbour_query_count == 0
        assert topology.neighbour_candidate_count == 0
        assert topology.index_rebuild_count == 0
