"""Unit tests for the scenario configuration."""

import pytest

from repro.experiments.config import ScenarioConfig


class TestScenarioConfig:
    def test_defaults_are_paper_scale(self):
        config = ScenarioConfig()
        assert config.area_km2 == 600.0
        assert config.gateway_range_m == 1000.0
        assert config.device.message_interval_s == 180.0

    def test_scaled_preserves_gateway_and_bus_densities(self):
        full = ScenarioConfig()
        scaled = full.scaled(0.1)
        assert scaled.area_km2 == pytest.approx(60.0)
        full_gw_density = full.num_gateways / full.area_km2
        scaled_gw_density = scaled.num_gateways / scaled.area_km2
        assert scaled_gw_density == pytest.approx(full_gw_density, rel=0.2)
        full_fleet_density = full.num_routes * full.trips_per_route / full.area_km2
        scaled_fleet_density = scaled.num_routes * scaled.trips_per_route / scaled.area_km2
        assert scaled_fleet_density == pytest.approx(full_fleet_density, rel=0.2)

    def test_scaled_validates_factor(self):
        with pytest.raises(ValueError):
            ScenarioConfig().scaled(0.0)
        with pytest.raises(ValueError):
            ScenarioConfig().scaled(2.0)

    def test_with_helpers_return_modified_copies(self):
        base = ScenarioConfig()
        assert base.with_scheme("robc").scheme == "robc"
        assert base.with_gateways(77).num_gateways == 77
        assert base.with_device_range(1000.0).device_range_m == 1000.0
        assert base.with_seed(5).seed == 5
        # The original is untouched (frozen dataclass semantics).
        assert base.scheme == "no-routing"

    def test_mobility_config_matches_duration(self):
        config = ScenarioConfig(duration_s=4 * 3600.0)
        mobility = config.mobility_config()
        assert mobility.horizon_s == pytest.approx(4 * 3600.0)
        assert mobility.day_end_s <= mobility.horizon_s

    def test_mobility_config_full_day_keeps_default_window(self):
        mobility = ScenarioConfig(duration_s=24 * 3600.0).mobility_config()
        assert mobility.day_start_s == pytest.approx(5.5 * 3600.0)
        assert mobility.day_end_s == pytest.approx(22.0 * 3600.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(num_gateways=0)
        with pytest.raises(ValueError):
            ScenarioConfig(gateway_placement="hexagon")
        with pytest.raises(ValueError):
            ScenarioConfig(min_block_repeats=3, max_block_repeats=1)
