"""Seed-equivalence of the pluggable mobility subsystem with the old engine.

The mobility refactor (registry of :class:`~repro.mobility.models.MobilityModel`
behind ``ScenarioConfig.mobility``) must not change a single bit of any
default-mobility result: the golden trace fingerprints below were produced by
the *pre-refactor* builder (commit e648f22, where ``experiments/scenario.py``
generated London traces inline), and the refactored builder must keep
reproducing them exactly.  Config digests are pinned the same way — the
digest omits a default mobility section — so archived SweepExecutor caches
stay valid across the refactor.

If a legitimate behaviour change ever invalidates these values, regenerate
them *and* bump ``repro.experiments.parallel.CACHE_SCHEMA_VERSION`` in the
same commit.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor, config_digest
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import build_scenario
from repro.mobility.config import MobilityConfig

#: The scenario of `test_radio_equivalence.SMALL`, restated so these goldens
#: cannot drift with that module.
SMALL = ScenarioConfig(
    duration_s=1800.0,
    area_km2=20.0,
    num_gateways=3,
    num_routes=4,
    trips_per_route=2,
    stops_per_route=5,
    min_block_repeats=1,
    max_block_repeats=2,
    device_range_m=1000.0,
    seed=11,
)

QUICKSTART_LIKE = ScenarioConfig(
    name="q", seed=42, duration_s=2 * 3600.0, area_km2=30.0, num_gateways=4,
    num_routes=6, trips_per_route=4, device_range_m=1000.0, scheme="robc",
)


def traces_fingerprint(traces) -> str:
    """A SHA-256 over every sample of every trace, full float precision."""
    payload = {
        node_id: [
            (repr(p.time), repr(p.position.x), repr(p.position.y))
            for p in trace.points
        ]
        for node_id, trace in traces.items()
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


#: Built-scenario trace fingerprints recorded from the pre-refactor builder.
GOLDEN_TRACE_FINGERPRINTS = {
    "small": "ad4ea3dc7dab02fc01566c4a3a88381abb61a15bf1ea3f368ad7f908b4a0176d",
    "quickstart-like": "5c36a625de1e0476fcda0f8881ad31bdd32392b110cd1ba59dcde8904210d5b6",
}


class TestDigestStability:
    def test_explicit_default_mobility_is_digest_transparent(self):
        explicit = replace(SMALL, mobility=MobilityConfig())
        assert config_digest(explicit) == config_digest(SMALL)

    def test_non_default_mobility_changes_the_digest(self):
        digests = {
            config_digest(SMALL),
            config_digest(SMALL.with_mobility(model="random-waypoint")),
            config_digest(SMALL.with_mobility(model="grid-manhattan")),
            config_digest(
                SMALL.with_mobility(model="random-waypoint", num_nodes=16)
            ),
        }
        assert len(digests) == 4

    def test_editing_a_trace_file_changes_the_digest(self, tmp_path):
        # The replayed file's *contents* are the scenario's mobility: an
        # edited file must not replay stale cached metrics under the old key.
        path = tmp_path / "traces.csv"
        path.write_text(
            "node_id,time_s,x_m,y_m\nn,0.0,0.0,0.0\nn,60.0,10.0,0.0\n",
            encoding="utf-8",
        )
        config = SMALL.with_mobility(trace_file=str(path))
        before = config_digest(config)
        path.write_text(
            "node_id,time_s,x_m,y_m\nn,0.0,0.0,0.0\nn,60.0,999.0,0.0\n",
            encoding="utf-8",
        )
        assert config_digest(config) != before
        # Deterministic for unchanged contents.
        assert config_digest(config) == config_digest(config)

    def test_same_digest_same_metrics_through_executor_cache(self, tmp_path):
        config = SMALL.with_scheme("no-routing")
        explicit = replace(config, mobility=MobilityConfig())
        assert config_digest(config) == config_digest(explicit)
        executor = SweepExecutor(cache_dir=tmp_path)
        first = executor.run([RunSpec(config=config)])[0]
        assert not first.from_cache
        second = executor.run([RunSpec(config=explicit)])[0]
        assert second.from_cache


class TestTraceEquivalence:
    def test_default_mobility_builds_pre_refactor_traces(self):
        built = build_scenario(SMALL)
        assert traces_fingerprint(built.traces) == GOLDEN_TRACE_FINGERPRINTS["small"], (
            "default london-bus traces diverged from the pre-refactor builder; "
            "if intentional, regenerate the goldens and bump CACHE_SCHEMA_VERSION"
        )

    def test_quickstart_sized_scenario_builds_pre_refactor_traces(self):
        built = build_scenario(QUICKSTART_LIKE)
        assert (
            traces_fingerprint(built.traces)
            == GOLDEN_TRACE_FINGERPRINTS["quickstart-like"]
        )


class TestAlternativeModels:
    """The opened-up mobility layer runs end-to-end and actually differs."""

    @pytest.mark.parametrize("model", ["random-waypoint", "grid-manhattan"])
    def test_model_runs_and_diverges_from_london(self, model):
        config = SMALL.with_scheme("robc").with_mobility(model=model)
        metrics = run_scenario(config)
        assert metrics.messages_generated > 0
        built = build_scenario(config)
        assert traces_fingerprint(built.traces) != GOLDEN_TRACE_FINGERPRINTS["small"]

    def test_models_are_seed_deterministic(self):
        config = SMALL.with_scheme("robc").with_mobility(model="random-waypoint")
        first = build_scenario(config)
        second = build_scenario(config)
        assert traces_fingerprint(first.traces) == traces_fingerprint(second.traces)
        shifted = build_scenario(config.with_seed(12))
        assert traces_fingerprint(shifted.traces) != traces_fingerprint(first.traces)

    def test_trace_file_scenario_replays_recorded_traces(self, tmp_path):
        from repro.mobility.models import save_traces_csv

        recorded = build_scenario(SMALL).traces
        path = tmp_path / "recorded.csv"
        save_traces_csv(recorded, path)
        replayed = build_scenario(SMALL.with_mobility(trace_file=str(path))).traces

        def samples(traces):
            # Compare numeric values: the generator produces numpy scalars,
            # the CSV reader plain floats — equal, but with different reprs.
            return {
                node_id: [
                    (float(p.time), float(p.position.x), float(p.position.y))
                    for p in trace.points
                ]
                for node_id, trace in traces.items()
            }

        assert samples(replayed) == samples(recorded)

    def test_trace_file_with_synthetic_model_is_rejected(self):
        # --trace-file implies the trace-file model; silently dropping the
        # file under a synthetic model would be a lie.
        with pytest.raises(ValueError, match="cannot combine"):
            SMALL.with_mobility(model="random-waypoint", trace_file="t.csv")

    def test_scaled_shrinks_an_explicit_synthetic_fleet(self):
        config = SMALL.with_mobility(model="random-waypoint", num_nodes=500)
        scaled = config.scaled(0.1)
        assert scaled.mobility.num_nodes == 50
        # The derived default (0 = follow the bus fleet) stays derived, so
        # default-mobility digests are untouched by scaled().
        assert SMALL.scaled(0.1).mobility == SMALL.mobility

    def test_mobility_sweep_preset_runs_through_cached_executor(self, tmp_path):
        from repro.experiments.figures import SMOKE_SCALE
        from repro.experiments.registry import get_sweep

        executor = SweepExecutor(cache_dir=tmp_path)
        artifact = get_sweep("mobility").runner(SMOKE_SCALE, executor)
        assert artifact.rows, "mobility sweep produced no rows"
        models = {row["mobility_model"] for row in artifact.rows}
        assert models == {"london-bus", "random-waypoint", "grid-manhattan"}
        # A second execution is served entirely from the on-disk cache.
        again = get_sweep("mobility").runner(SMOKE_SCALE, executor)
        assert again.rows == artifact.rows

    def test_cli_mobility_override_matches_api(self):
        from repro.experiments.cli import run_target

        outcome = run_target("urban-smoke", mobility="grid-manhattan")
        from repro.experiments.registry import get_preset

        expected = run_scenario(
            get_preset("urban-smoke").config.with_mobility(model="grid-manhattan")
        )
        assert outcome.metrics.messages_generated == expected.messages_generated
        assert outcome.metrics.messages_delivered == expected.messages_delivered
        assert outcome.metrics.delays_s == expected.delays_s
