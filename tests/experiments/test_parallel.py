"""Equivalence and unit tests for the parallel sweep executor.

The headline guarantee: a sweep run with ``workers=1`` and ``workers=4``
produces bit-identical :class:`RunMetrics` for every key, so parallelism can
never change scientific results.  The failure-handling guarantees — a
crashed run becomes a per-spec failure outcome *after* every finished
sibling was cached — live in ``test_backends.py``.
"""

import dataclasses
import pickle

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    RunSpec,
    SweepExecutor,
    _trace_file_content_digest,
    config_digest,
    derive_run_seed,
    execute_spec,
    replication_specs,
    spec_from_dict,
    spec_to_dict,
    sweep_specs,
)
from repro.experiments.sweeps import run_gateway_sweep, run_replications
from repro.mobility.config import MobilityConfig


@pytest.fixture(scope="module")
def tiny_config():
    """A scenario small enough that a handful of runs stays test-sized."""
    return ScenarioConfig(
        duration_s=1200.0,
        area_km2=12.0,
        num_gateways=2,
        num_routes=3,
        trips_per_route=2,
        stops_per_route=4,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        seed=23,
    )


class TestSerialParallelEquivalence:
    def test_sweep_identical_across_worker_counts(self, tiny_config):
        kwargs = dict(
            gateway_counts=(2, 3),
            schemes=("no-routing", "robc"),
            device_ranges_m=(1000.0,),
        )
        serial = run_gateway_sweep(
            tiny_config, executor=SweepExecutor(workers=1), **kwargs
        )
        parallel = run_gateway_sweep(
            tiny_config, executor=SweepExecutor(workers=4), **kwargs
        )
        assert set(serial.runs) == set(parallel.runs)
        for key, metrics in serial.runs.items():
            # RunMetrics is a dataclass: == compares every field, including the
            # full per-delivery delay/hop lists and per-device counters.
            assert metrics == parallel.runs[key], f"run {key} diverged"

    def test_default_executor_matches_explicit_serial(self, tiny_config):
        kwargs = dict(
            gateway_counts=(2,), schemes=("no-routing",), device_ranges_m=(1000.0,)
        )
        implicit = run_gateway_sweep(tiny_config, **kwargs)
        explicit = run_gateway_sweep(
            tiny_config, executor=SweepExecutor(workers=1), **kwargs
        )
        assert implicit.runs == explicit.runs

    def test_replications_identical_across_worker_counts(self, tiny_config):
        seeds = (5, 6)
        serial = run_replications(tiny_config, seeds, SweepExecutor(workers=1))
        parallel = run_replications(tiny_config, seeds, SweepExecutor(workers=2))
        assert serial == parallel
        assert len(serial) == len(seeds)


class TestSweepExecutor:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)

    def test_outcomes_preserve_spec_order(self, tiny_config):
        specs = sweep_specs(
            tiny_config, (3, 2), ("no-routing",), (1000.0,), gateway_scale=1.0
        )
        outcomes = SweepExecutor(workers=1).run(specs)
        assert [outcome.spec for outcome in outcomes] == specs
        assert [outcome.metrics.num_gateways for outcome in outcomes] == [3, 2]
        assert all(outcome.wall_time_s > 0 for outcome in outcomes)
        assert not any(outcome.from_cache for outcome in outcomes)

    def test_cache_roundtrip(self, tiny_config, tmp_path):
        specs = sweep_specs(tiny_config, (2,), ("no-routing",), (1000.0,))
        first = SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
        assert not first[0].from_cache
        assert list(tmp_path.rglob("*.pkl"))
        second = SweepExecutor(workers=1, cache_dir=tmp_path).run(specs)
        assert second[0].from_cache
        assert second[0].metrics == first[0].metrics

    def test_cache_distinguishes_configurations(self, tiny_config, tmp_path):
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        first = executor.run([RunSpec(config=tiny_config)])
        other = executor.run([RunSpec(config=tiny_config.with_seed(99))])
        assert not other[0].from_cache
        assert first[0].metrics != other[0].metrics

    def test_corrupt_cache_entry_is_unlinked_and_recomputed(self, tiny_config, tmp_path):
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        spec = RunSpec(config=tiny_config)
        good = executor.run([spec])[0]
        path = executor.store.path_for(spec.cache_key())
        path.write_bytes(b"not a pickle")
        recomputed = executor.run([spec])[0]
        assert not recomputed.from_cache
        assert recomputed.metrics == good.metrics
        # The damaged entry was replaced by the recomputed result, not left
        # to be re-read and re-discarded on every future execution.
        assert pickle.loads(path.read_bytes()) == good.metrics
        assert executor.run([spec])[0].from_cache

    def test_corrupt_legacy_flat_entry_is_unlinked(self, tiny_config, tmp_path):
        # The pre-campaign-engine cache layout was flat; a truncated legacy
        # entry must also be removed on load failure instead of lingering.
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        spec = RunSpec(config=tiny_config)
        legacy = tmp_path / f"{spec.cache_key()}.pkl"
        legacy.write_bytes(b"\x80\x04truncated")
        outcome = executor.run([spec])[0]
        assert not outcome.from_cache
        assert not legacy.exists()

    def test_iter_outcomes_streams_and_caches(self, tiny_config, tmp_path):
        specs = sweep_specs(tiny_config, (2, 3), ("no-routing",), (1000.0,))
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        streamed = list(executor.iter_outcomes(specs))
        assert sorted(o.spec.cache_key() for o in streamed) == sorted(
            s.cache_key() for s in specs
        )
        assert all(executor.store.load(s.cache_key()) is not None for s in specs)

    def test_from_env_reads_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert SweepExecutor.from_env().workers == 3
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert SweepExecutor.from_env(default_workers=2).workers == 2

    def test_from_env_rejects_garbage_with_named_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            SweepExecutor.from_env()

    def test_from_env_reads_backend_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        assert SweepExecutor.from_env().backend.name == "serial"
        monkeypatch.delenv("REPRO_SWEEP_BACKEND")
        assert SweepExecutor.from_env().backend.name == "process-pool"

    def test_unknown_backend_name_lists_choices(self):
        with pytest.raises(ValueError, match="serial"):
            SweepExecutor(backend="no-such-backend")

    def test_completeness_assertion_catches_lossy_backend(self, tiny_config):
        from repro.experiments.backends.base import ExecutionBackend, failure_outcome

        class DroppingBackend(ExecutionBackend):
            """Simulates the old silent-loss bug: swallows one outcome."""

            name = "dropping"

            def execute(self, items):
                for index, spec in list(items)[1:]:
                    yield index, failure_outcome(spec, RuntimeError("boom"), 0.0)

        executor = SweepExecutor(backend=DroppingBackend())
        specs = sweep_specs(tiny_config, (2, 3), ("no-routing",), (1000.0,))
        with pytest.raises(RuntimeError, match="bookkeeping"):
            executor.run(specs, allow_failures=True)

    def test_crashing_spec_becomes_failure_outcome(self, tiny_config):
        from repro.experiments.parallel import SweepExecutionError

        bad = RunSpec(
            config=dataclasses.replace(
                tiny_config,
                mobility=MobilityConfig(
                    model="trace-file", trace_file="/nonexistent/trace.csv"
                ),
            )
        )
        executor = SweepExecutor(workers=1)
        with pytest.raises(SweepExecutionError, match="1 of 1"):
            executor.run([bad])
        outcome = executor.run([bad], allow_failures=True)[0]
        assert not outcome.ok
        assert outcome.metrics is None
        assert "trace" in outcome.error or "No such file" in outcome.error


class TestSpecs:
    def test_run_spec_is_picklable(self, tiny_config):
        spec = RunSpec(config=tiny_config, nominal_gateways=40)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key == ("no-routing", 40, 1000.0, 0)

    def test_sweep_specs_apply_gateway_scale(self, tiny_config):
        specs = sweep_specs(tiny_config, (40,), ("robc",), (500.0,), gateway_scale=0.1)
        assert specs[0].config.num_gateways == 4
        assert specs[0].nominal_gateways == 40
        assert specs[0].config.scheme == "robc"
        assert specs[0].config.device_range_m == 500.0

    def test_sweep_specs_reject_bad_scale(self, tiny_config):
        with pytest.raises(ValueError):
            sweep_specs(tiny_config, (40,), ("robc",), (500.0,), gateway_scale=0.0)

    def test_execute_spec_writes_nominal_count_back(self, tiny_config):
        outcome = execute_spec(RunSpec(config=tiny_config, nominal_gateways=40))
        assert outcome.metrics.num_gateways == 40

    def test_replication_specs_derive_distinct_seeds(self, tiny_config):
        specs = replication_specs(tiny_config, 4)
        seeds = [spec.config.seed for spec in specs]
        assert len(set(seeds)) == 4
        assert [spec.replicate for spec in specs] == [0, 1, 2, 3]
        # Pure function of the master config: regenerating gives the same seeds.
        assert [spec.config.seed for spec in replication_specs(tiny_config, 4)] == seeds

    def test_replication_specs_reject_non_positive_count(self, tiny_config):
        with pytest.raises(ValueError):
            replication_specs(tiny_config, 0)


class TestWireFormat:
    def test_spec_dict_roundtrip_preserves_cache_key(self, tiny_config):
        spec = RunSpec(config=tiny_config, nominal_gateways=40, replicate=2)
        clone = spec_from_dict(spec_to_dict(spec))
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_spec_dict_is_json_safe(self, tiny_config):
        import json

        payload = json.dumps(spec_to_dict(RunSpec(config=tiny_config)))
        assert spec_from_dict(json.loads(payload)) == RunSpec(config=tiny_config)


class TestSeedDerivation:
    def test_pinned_value(self):
        # Guards the derivation scheme itself: changing the hash recipe would
        # silently re-seed every archived sweep.
        assert derive_run_seed(7, "robc", 40, 500.0, 0) == 6347970660614576900
        assert derive_run_seed(7, "robc", 40, 500.0, 1) == 4545498674912675524

    def test_each_component_changes_the_seed(self):
        base = derive_run_seed(7, "robc", 40, 500.0, 0)
        assert derive_run_seed(8, "robc", 40, 500.0, 0) != base
        assert derive_run_seed(7, "rca-etx", 40, 500.0, 0) != base
        assert derive_run_seed(7, "robc", 50, 500.0, 0) != base
        assert derive_run_seed(7, "robc", 40, 1000.0, 0) != base
        assert derive_run_seed(7, "robc", 40, 500.0, 2) != base

    def test_seed_fits_numpy_seeding(self):
        seed = derive_run_seed(123456, "no-routing", 100, 1000.0, 7)
        assert 0 <= seed < 2**63


class TestConfigDigest:
    def test_stable_for_equal_configs(self, tiny_config):
        assert config_digest(tiny_config) == config_digest(
            ScenarioConfig(**{
                field: getattr(tiny_config, field)
                for field in tiny_config.__dataclass_fields__
            })
        )

    def test_sensitive_to_any_field(self, tiny_config):
        assert config_digest(tiny_config) != config_digest(tiny_config.with_seed(24))
        assert config_digest(tiny_config) != config_digest(
            tiny_config.with_scheme("robc")
        )

    def test_unreadable_trace_files_digest_distinctly(self, tiny_config):
        # Two scenarios pointing at different unreadable trace files must not
        # collide on one cache key: the sentinel embeds the path.
        a = _trace_file_content_digest("/missing/a.csv")
        b = _trace_file_content_digest("/missing/b.csv")
        assert a != b
        assert "/missing/a.csv" in a

        def with_trace(path):
            return dataclasses.replace(
                tiny_config,
                mobility=MobilityConfig(model="trace-file", trace_file=path),
            )

        assert config_digest(with_trace("/missing/a.csv")) != config_digest(
            with_trace("/missing/b.csv")
        )
