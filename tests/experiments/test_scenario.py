"""Unit tests for scenario construction."""

import pytest

from repro.experiments.scenario import build_scenario, make_device_class
from repro.mac.device_classes import ModifiedClassC, QueueBasedClassA
from repro.routing.no_routing import NoRoutingScheme
from repro.routing.robc_scheme import ROBCScheme


class TestMakeDeviceClass:
    def test_known_classes(self):
        assert isinstance(make_device_class("modified-class-c"), ModifiedClassC)
        assert isinstance(make_device_class("queue-based-class-a"), QueueBasedClassA)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            make_device_class("class-z")


class TestBuildScenario:
    def test_builds_expected_object_counts(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config)
        expected_devices = (
            small_scenario_config.num_routes * small_scenario_config.trips_per_route
        )
        assert scenario.num_devices == expected_devices
        assert len(scenario.gateways) == small_scenario_config.num_gateways
        assert len(scenario.traces) == expected_devices
        assert isinstance(scenario.scheme, NoRoutingScheme)

    def test_scheme_selection(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config.with_scheme("robc"))
        assert isinstance(scenario.scheme, ROBCScheme)

    def test_device_ids_match_between_traces_and_devices(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config)
        assert set(scenario.traces) == set(scenario.devices)

    def test_gateways_inside_service_area(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config)
        for gateway in scenario.gateways.values():
            assert scenario.bounding_box.contains(gateway.position)

    def test_grid_and_random_placement_differ(self, small_scenario_config):
        from dataclasses import replace

        grid = build_scenario(small_scenario_config)
        random_placed = build_scenario(replace(small_scenario_config, gateway_placement="random"))
        grid_positions = [(g.position.x, g.position.y) for g in grid.gateways.values()]
        random_positions = [(g.position.x, g.position.y) for g in random_placed.gateways.values()]
        assert grid_positions != random_positions

    def test_same_seed_reproduces_scenario(self, small_scenario_config):
        a = build_scenario(small_scenario_config)
        b = build_scenario(small_scenario_config)
        a_trace = next(iter(a.traces.values()))
        b_trace = b.traces[a_trace.node_id]
        assert a_trace.points == b_trace.points

    def test_different_seed_changes_mobility(self, small_scenario_config):
        a = build_scenario(small_scenario_config)
        b = build_scenario(small_scenario_config.with_seed(99))
        a_trace = next(iter(a.traces.values()))
        b_trace = b.traces[a_trace.node_id]
        assert a_trace.points != b_trace.points

    def test_device_class_applied_to_all_devices(self, small_scenario_config):
        from dataclasses import replace

        scenario = build_scenario(
            replace(small_scenario_config, device_class="queue-based-class-a")
        )
        assert all(
            isinstance(d.device_class, QueueBasedClassA) for d in scenario.devices.values()
        )
