"""Seed-equivalence of the pluggable routing subsystem with the old engine.

The routing refactor (frozen ``RoutingConfig`` on ``ScenarioConfig``, the
scheme factory registry in :mod:`repro.routing.registry`, and the
``BufferPolicy`` strategy behind :class:`~repro.mac.queueing.DataQueue`) must
not change a single bit of any default-routing result: the golden values
below were produced by the *pre-refactor* engine (commit 59666dd, where
``experiments/scenario.py`` constructed schemes inline with hardcoded
parameters and the queue was a plain FIFO tail-drop) and the refactored
engine must keep reproducing them exactly.  Config digests are pinned for
*every* pre-existing preset — the digest omits a default routing section —
so archived SweepExecutor caches stay valid across the refactor.

If a legitimate behaviour change ever invalidates these values, regenerate
them *and* bump ``repro.experiments.parallel.CACHE_SCHEMA_VERSION`` in the
same commit.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor, config_digest
from repro.experiments.registry import get_preset
from repro.experiments.runner import run_scenario
from repro.routing.config import BufferConfig, RoutingConfig


def metrics_fingerprint(metrics) -> str:
    """A SHA-256 over every pre-refactor raw field of a RunMetrics."""
    payload = {
        "scheme": metrics.scheme,
        "messages_generated": metrics.messages_generated,
        "messages_delivered": metrics.messages_delivered,
        "delays_s": metrics.delays_s,
        "hop_counts": metrics.hop_counts,
        "delivery_times_s": metrics.delivery_times_s,
        "transmissions_per_device": metrics.transmissions_per_device,
        "energy_joules_per_device": metrics.energy_joules_per_device,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    ).hexdigest()


#: The scenario of `test_radio_equivalence.SMALL`, restated so these goldens
#: cannot drift with that module.
SMALL = ScenarioConfig(
    duration_s=1800.0,
    area_km2=20.0,
    num_gateways=3,
    num_routes=4,
    trips_per_route=2,
    stops_per_route=5,
    min_block_repeats=1,
    max_block_repeats=2,
    device_range_m=1000.0,
    seed=11,
)

#: RunMetrics fingerprints of SMALL under every pre-existing scheme,
#: recorded from the pre-refactor engine (inline scheme construction).
GOLDEN_FINGERPRINTS = {
    "no-routing": "df5d4575617e6dd47a626b6644ec8977a329dbcd8c82b6d56b33c25dae5c14c0",
    "rca-etx": "82951fea1663915f31fb49154f557fa7aafe83aab7694a5d0de613e75b34647c",
    "robc": "1b207745bbad074517f143276f4a0ac23e97d8a2fe25b41d965ac89812d50d75",
    "epidemic": "1e28b904831117e221e649251fe9f153bb876c4ad7b40cdede6477e56269c8ac",
    "spray-and-wait": "6c7bf594472dcfd9ba4daf990acec00e2bfc52cb7094a7470b4b65cc6ffd6900",
}

#: Config digests of every preset that existed before the routing refactor,
#: recorded from the pre-refactor engine (no routing field on the config).
GOLDEN_PRESET_DIGESTS = {
    "dense-gateways": "58a0e4f839e9d6937ba41c2e2726de8412f53c84b758f970fa21488887501206",
    "epidemic-urban": "053d0f7a3e797e2c5331125adc73bb6bd695868e44ae2e953c7888fd3a1ff53a",
    "mega-fleet": "5ab88e9ec77d7eab7add6de9f089967fac581b426d7f2a22249008a9da1978d1",
    "quickstart": "84e783aac68387821d5afa9357f61048c9adec48090fc1d1fc6b117331a8e6c1",
    "rural": "094417b0973dbab7f9abdd2ea9a67d9ee070ad5a710d84f07853080b592af50e",
    "rural-full": "e9e69c296db1fbefa5083d4539373d828636f78f55f5ed179f3f1e9ea53f62ed",
    "rural-smoke": "41767ee01d0a9ce0a34e1e2efbc2ce4edf2d19be47f04b1a2744000e8ec21ee2",
    "sparse-gateways": "bcb805ab14148c40c575618078d1fcfe968d0ec9ed9d0ad1b26a36cae0f70850",
    "spray-and-wait-urban": "ace3e7a590fc8e9b003ca4acee90d802ad383e3b5be59598098ba092de118e09",
    "urban": "df1af1e3c5b272f04e810ac0ae1d3dc410beae790b8084a2257adf05fe327d44",
    "urban-class-a": "30c1237edc1c2461762e89006573ad4f6e28de4ed5e14d083bd60d876c95bc3d",
    "urban-full": "d6d56080154cf87c1f8934bffab26203fd02fdc131c35fb71b5b7b239dc3f4b5",
    "urban-manhattan": "4497eb0098a91e0d109a375d2248e05ed8d62c0fd1cdce7d8592b50474058a7c",
    "urban-multisf": "1076cfc638cd8e244813f0399a4a0a0bad7a4143941983563c8438c15f930d6d",
    "urban-random-placement": "7c5596cb6e6a97c8d57fa23861623746306849fbb1377bcbefeaa7a502707d53",
    "urban-rwp": "7d0c299df2f64fdc4692ba0ad08a3190c118dc4cb5e65562b2e833b4fc898b6a",
    "urban-smoke": "8bcfec0f40ee69d06a3fce4e434b171cc8dddb1920e47d3241e233ce163060c9",
}


class TestDigestStability:
    @pytest.mark.parametrize("preset_name", sorted(GOLDEN_PRESET_DIGESTS))
    def test_every_pre_existing_preset_keeps_its_digest(self, preset_name):
        assert (
            config_digest(get_preset(preset_name).config)
            == GOLDEN_PRESET_DIGESTS[preset_name]
        ), (
            f"preset {preset_name} changed its config digest across the "
            "routing refactor; archived sweep caches would go stale"
        )

    def test_explicit_default_routing_is_digest_transparent(self):
        explicit = replace(SMALL, routing=RoutingConfig())
        assert config_digest(explicit) == config_digest(SMALL)
        # is_default is the user-facing spelling of that transparency.
        assert RoutingConfig().is_default and BufferConfig().is_default
        assert not RoutingConfig(max_handover_messages=6).is_default
        assert not BufferConfig(policy="drop-oldest").is_default

    def test_non_default_routing_changes_the_digest(self):
        digests = {
            config_digest(SMALL),
            config_digest(SMALL.with_routing(spray_initial_copies=8)),
            config_digest(SMALL.with_routing(max_handover_messages=6)),
            config_digest(SMALL.with_buffer(policy="drop-oldest")),
            config_digest(SMALL.with_buffer(capacity=8)),
            config_digest(SMALL.with_buffer(policy="ttl-expiry", ttl_s=600.0)),
        }
        assert len(digests) == 6

    def test_same_digest_same_metrics_through_executor_cache(self, tmp_path):
        config = SMALL.with_scheme("no-routing")
        explicit = replace(config, routing=RoutingConfig())
        assert config_digest(config) == config_digest(explicit)
        executor = SweepExecutor(cache_dir=tmp_path)
        first = executor.run([RunSpec(config=config)])[0]
        assert not first.from_cache
        second = executor.run([RunSpec(config=explicit)])[0]
        assert second.from_cache


class TestSeedEquivalence:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_FINGERPRINTS))
    def test_default_routing_reproduces_pre_refactor_metrics(self, scheme):
        metrics = run_scenario(SMALL.with_scheme(scheme))
        assert metrics_fingerprint(metrics) == GOLDEN_FINGERPRINTS[scheme], (
            f"the {scheme} run diverged from the pre-refactor engine; "
            "if intentional, regenerate the goldens and bump CACHE_SCHEMA_VERSION"
        )

    def test_registry_built_scheme_matches_inline_construction(self):
        """build_scheme with a default RoutingConfig == the old hardcoded ctor."""
        from repro.routing import build_scheme, make_scheme

        for name in ("rca-etx", "robc", "epidemic", "spray-and-wait"):
            built = build_scheme(name)
            legacy = make_scheme(name)
            assert built.max_handover_messages == legacy.max_handover_messages
        assert build_scheme("spray-and-wait").initial_copies == 4
        assert build_scheme("robc").rgq == make_scheme("robc").rgq


class TestRoutingParameters:
    """The opened-up routing layer runs end-to-end and actually differs."""

    def test_spray_copies_change_results(self):
        # A single ticket puts every carrier straight into the wait phase
        # (deliver-to-gateway only); the default four tickets spray.  The
        # engine never *splits* tickets mid-run (pre-refactor behaviour the
        # goldens pin), so the copies=1 boundary is where the parameter bites.
        base = run_scenario(SMALL.with_scheme("spray-and-wait"))
        wait_only = run_scenario(
            SMALL.with_scheme("spray-and-wait").with_routing(spray_initial_copies=1)
        )
        assert metrics_fingerprint(base) != metrics_fingerprint(wait_only)

    def test_handover_cap_changes_results(self):
        base = run_scenario(SMALL.with_scheme("robc"))
        tight = run_scenario(
            SMALL.with_scheme("robc").with_routing(max_handover_messages=1)
        )
        assert metrics_fingerprint(base) != metrics_fingerprint(tight)

    def test_buffer_pressure_counts_capacity_drops(self):
        pressured = run_scenario(
            SMALL.with_scheme("robc").with_buffer(policy="drop-oldest", capacity=2)
        )
        assert pressured.messages_dropped_full > 0
        relaxed = run_scenario(SMALL.with_scheme("robc"))
        assert relaxed.messages_dropped_full == 0

    def test_replication_dedup_is_not_loss(self):
        # Epidemic replication re-offers carried copies; the receiving queue
        # refuses duplicates and the refusal must not count as a drop.
        metrics = run_scenario(SMALL.with_scheme("epidemic"))
        assert metrics.messages_rejected_duplicate > 0
        assert metrics.messages_dropped_full == 0

    def test_ttl_expiry_removes_stale_messages(self):
        metrics = run_scenario(
            SMALL.with_scheme("no-routing").with_buffer(
                policy="ttl-expiry", ttl_s=60.0
            )
        )
        assert metrics.messages_expired_ttl > 0

    def test_invalid_routing_sections_rejected(self):
        with pytest.raises(ValueError):
            RoutingConfig(max_handover_messages=0)
        with pytest.raises(ValueError):
            BufferConfig(policy="not-a-policy")
        with pytest.raises(ValueError):
            BufferConfig(policy="ttl-expiry")  # needs ttl_s > 0
        with pytest.raises(ValueError):
            BufferConfig(policy="drop-new", ttl_s=10.0)
        with pytest.raises(ValueError):
            SMALL.with_routing(not_a_param=3)


class TestProphet:
    def test_prophet_preset_runs_and_diverges(self):
        config = SMALL.with_scheme("prophet")
        metrics = run_scenario(config)
        assert metrics.messages_generated > 0
        for scheme, golden in GOLDEN_FINGERPRINTS.items():
            assert metrics_fingerprint(metrics) != golden, scheme

    def test_prophet_is_seed_deterministic(self):
        config = SMALL.with_scheme("prophet")
        assert metrics_fingerprint(run_scenario(config)) == metrics_fingerprint(
            run_scenario(config)
        )

    def test_prophet_parameters_change_results(self):
        base = run_scenario(SMALL.with_scheme("prophet"))
        eager = run_scenario(
            SMALL.with_scheme("prophet").with_routing(
                prophet_beta=1.0, prophet_gamma=1.0
            )
        )
        assert metrics_fingerprint(base) != metrics_fingerprint(eager)

    def test_cli_prophet_preset_matches_api(self):
        """`repro run urban-prophet` (shrunk for test speed) == the API run."""
        from repro.experiments.cli import run_target

        outcome = run_target("urban-prophet", scale=0.5, duration_s=1800.0)
        expected = run_scenario(
            replace(get_preset("urban-prophet").config.scaled(0.5), duration_s=1800.0)
        )
        assert outcome.metrics == expected


class TestRoutingSweep:
    def test_routing_sweep_runs_through_cached_executor(self, tmp_path):
        from repro.experiments.figures import SMOKE_SCALE
        from repro.experiments.registry import get_sweep

        executor = SweepExecutor(cache_dir=tmp_path)
        artifact = get_sweep("routing").runner(SMOKE_SCALE, executor)
        assert artifact.rows, "routing sweep produced no rows"
        policies = {row["buffer_policy"] for row in artifact.rows}
        assert policies == {"drop-new", "drop-oldest", "priority-age"}
        capacities = {row["buffer_capacity"] for row in artifact.rows}
        assert capacities == {8, 64}
        # A second execution is served entirely from the on-disk cache.
        again = get_sweep("routing").runner(SMOKE_SCALE, executor)
        assert again.rows == artifact.rows

    def test_cli_buffer_overrides_match_api(self):
        from repro.experiments.cli import run_target

        outcome = run_target(
            "urban-smoke", buffer="drop-oldest", buffer_capacity=4
        )
        expected = run_scenario(
            get_preset("urban-smoke").config.with_buffer(
                policy="drop-oldest", capacity=4
            )
        )
        assert outcome.metrics == expected

    def test_cli_scheme_param_override_matches_api(self):
        from repro.experiments.cli import parse_scheme_params, run_target

        params = parse_scheme_params(["max_handover_messages=3"])
        assert params == {"max_handover_messages": 3}
        outcome = run_target("urban-smoke", scheme_params=params)
        expected = run_scenario(
            get_preset("urban-smoke").config.with_routing(max_handover_messages=3)
        )
        assert outcome.metrics == expected
