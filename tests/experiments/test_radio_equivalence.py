"""Seed-equivalence of the RadioMedium engine with the pre-refactor engine.

The radio refactor (pluggable ``repro.radio`` subsystem) must not change a
single bit of any default-radio result: the golden fingerprints below were
produced by the *pre-refactor* engine (commit a88476c, where airtime,
collision registration, capture and reception were inlined in
``experiments/runner.py``) and the refactored engine must keep reproducing
them exactly.  The config digests are pinned the same way, so archived
SweepExecutor caches stay valid across the refactor and "same digest → same
RunMetrics" holds.

If a legitimate behaviour change ever invalidates these values, regenerate
them *and* bump ``repro.experiments.parallel.CACHE_SCHEMA_VERSION`` in the
same commit.
"""

import hashlib
import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor, config_digest
from repro.experiments.registry import get_preset
from repro.experiments.runner import run_scenario
from repro.radio.config import RadioConfig


def metrics_fingerprint(metrics) -> str:
    """A SHA-256 over every raw field of a RunMetrics (order-independent)."""
    payload = {
        "scheme": metrics.scheme,
        "messages_generated": metrics.messages_generated,
        "messages_delivered": metrics.messages_delivered,
        "delays_s": metrics.delays_s,
        "hop_counts": metrics.hop_counts,
        "delivery_times_s": metrics.delivery_times_s,
        "transmissions_per_device": metrics.transmissions_per_device,
        "energy_joules_per_device": metrics.energy_joules_per_device,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    ).hexdigest()


#: The `small_scenario_config` fixture's scenario, spelled out so the goldens
#: cannot drift with the fixture.
SMALL = ScenarioConfig(
    duration_s=1800.0,
    area_km2=20.0,
    num_gateways=3,
    num_routes=4,
    trips_per_route=2,
    stops_per_route=5,
    min_block_repeats=1,
    max_block_repeats=2,
    device_range_m=1000.0,
    seed=11,
)

#: RunMetrics fingerprints recorded from the pre-refactor engine.
GOLDEN_FINGERPRINTS = {
    "no-routing": "df5d4575617e6dd47a626b6644ec8977a329dbcd8c82b6d56b33c25dae5c14c0",
    "rca-etx": "82951fea1663915f31fb49154f557fa7aafe83aab7694a5d0de613e75b34647c",
    "robc": "1b207745bbad074517f143276f4a0ac23e97d8a2fe25b41d965ac89812d50d75",
    "epidemic": "1e28b904831117e221e649251fe9f153bb876c4ad7b40cdede6477e56269c8ac",
}

#: Config digests recorded from the pre-refactor engine (no radio field).
GOLDEN_DIGESTS = {
    "default": "bf3ee5ffa125909543e1792724f7d62d7765871dd7e211e1fa63da50c3414ede",
    "small": "5885d6d11626d8b29e0fecf8cf8545027b96408403f19a25e8d2fc35ece6e8ee",
    "urban-smoke": "8bcfec0f40ee69d06a3fce4e434b171cc8dddb1920e47d3241e233ce163060c9",
}


class TestDigestStability:
    def test_default_radio_keeps_pre_refactor_digests(self):
        assert config_digest(ScenarioConfig()) == GOLDEN_DIGESTS["default"]
        assert config_digest(SMALL) == GOLDEN_DIGESTS["small"]
        assert (
            config_digest(get_preset("urban-smoke").config)
            == GOLDEN_DIGESTS["urban-smoke"]
        )

    def test_non_default_radio_changes_the_digest(self):
        # Non-default radio settings change behaviour, so they must change
        # the cache key; every variant gets its own digest.
        digests = {
            config_digest(SMALL),
            config_digest(SMALL.with_radio(num_channels=3)),
            config_digest(SMALL.with_radio(sf_policy="distance-based")),
            config_digest(
                SMALL.with_radio(num_channels=3, sf_policy="distance-based")
            ),
        }
        assert len(digests) == 4

    def test_explicit_default_radio_is_digest_transparent(self):
        from dataclasses import replace

        explicit = replace(SMALL, radio=RadioConfig(num_channels=1, sf_policy="fixed-sf7"))
        assert config_digest(explicit) == config_digest(SMALL)


class TestSeedEquivalence:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_FINGERPRINTS))
    def test_default_radio_reproduces_pre_refactor_metrics(self, scheme):
        metrics = run_scenario(SMALL.with_scheme(scheme))
        assert metrics_fingerprint(metrics) == GOLDEN_FINGERPRINTS[scheme], (
            f"the {scheme} run diverged from the pre-refactor engine; "
            "if intentional, regenerate the goldens and bump CACHE_SCHEMA_VERSION"
        )

    def test_same_digest_same_metrics_through_executor_cache(self, tmp_path):
        """A cache entry written under one spelling of the default config is
        served for another spelling with the same digest."""
        from dataclasses import replace

        config = SMALL.with_scheme("robc")
        explicit = replace(config, radio=RadioConfig())
        assert config_digest(config) == config_digest(explicit)

        executor = SweepExecutor(cache_dir=tmp_path)
        first = executor.run([RunSpec(config=config)])[0]
        assert not first.from_cache
        second = executor.run([RunSpec(config=explicit)])[0]
        assert second.from_cache
        assert metrics_fingerprint(second.metrics) == metrics_fingerprint(first.metrics)


class TestMultiSfScenarios:
    """The opened-up radio layer runs end-to-end and actually differs."""

    def test_multichannel_distance_based_runs_and_diverges(self):
        multi = SMALL.with_scheme("robc").with_radio(
            num_channels=3, sf_policy="distance-based"
        )
        metrics = run_scenario(multi)
        assert metrics.messages_generated > 0
        baseline = run_scenario(SMALL.with_scheme("robc"))
        # Distance-based SFs change airtimes and collisions, so the runs
        # cannot be bit-identical.
        assert metrics_fingerprint(metrics) != metrics_fingerprint(baseline)

    def test_random_sf_policy_is_seed_deterministic(self):
        config = SMALL.with_scheme("robc").with_radio(
            num_channels=8, sf_policy="random"
        )
        first = run_scenario(config)
        second = run_scenario(config)
        assert metrics_fingerprint(first) == metrics_fingerprint(second)

    def test_overhearing_is_confined_to_the_senders_channel_and_sf(self):
        """A single-radio neighbour cannot overhear across channels.

        With eight channels and eight devices, round-robin channel assignment
        puts every device on its own channel, so device-to-device forwarding
        has no one to talk to — while the same scenario on one shared channel
        does hand messages over.
        """
        from repro.experiments.runner import MLoRaSimulation
        from repro.experiments.scenario import build_scenario

        shared = MLoRaSimulation(build_scenario(SMALL.with_scheme("robc")))
        shared.run()
        assert shared.handover_count > 0

        isolated = MLoRaSimulation(
            build_scenario(SMALL.with_scheme("robc").with_radio(num_channels=8))
        )
        isolated.run()
        channels = {
            d.channel for d in isolated.scenario.devices.values()
        }
        assert len(channels) == len(isolated.scenario.devices)
        assert isolated.handover_count == 0

    def test_multisf_sweep_preset_runs_through_cached_executor(self, tmp_path):
        from repro.experiments.figures import SMOKE_SCALE
        from repro.experiments.registry import get_sweep

        executor = SweepExecutor(cache_dir=tmp_path)
        artifact = get_sweep("multisf").runner(SMOKE_SCALE, executor)
        assert artifact.rows, "multisf sweep produced no rows"
        channel_counts = {row["num_channels"] for row in artifact.rows}
        assert channel_counts == {1, 3, 8}
        # A second execution is served entirely from the on-disk cache.
        again = get_sweep("multisf").runner(SMOKE_SCALE, executor)
        assert again.rows == artifact.rows
