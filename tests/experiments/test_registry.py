"""Registry invariants: presets are valid and the generated docs are current."""

from pathlib import Path

import pytest

from repro.experiments.figures import BENCHMARK_SCALE, CAMPAIGN_SCALE, SMOKE_SCALE
from repro.experiments.registry import (
    SCALE_PRESETS,
    apply_overrides,
    get_preset,
    get_sweep,
    iter_presets,
    iter_sweeps,
    preset_names,
    render_scenarios_markdown,
    resolve_scale,
    resolve_scenario,
    sweep_names,
)
from repro.experiments.scenario import build_scenario
from repro.mac.device_classes import DeviceClass
from repro.routing import SCHEME_REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestPresets:
    def test_catalogue_covers_paper_settings(self):
        names = preset_names()
        for required in (
            "urban", "rural", "urban-full", "rural-full",
            "urban-class-a", "urban-random-placement",
            "urban-smoke", "rural-smoke", "quickstart",
        ):
            assert required in names

    def test_preset_configs_are_well_formed(self):
        for preset in iter_presets():
            config = preset.config
            assert config.name == preset.name
            assert preset.description
            assert config.scheme in SCHEME_REGISTRY, preset.name
            # Urban/rural tags match the paper's device-to-device ranges.
            if "urban" in preset.tags:
                assert config.device_range_m == 500.0, preset.name
            if "rural" in preset.tags:
                assert config.device_range_m == 1000.0, preset.name

    def test_urban_and_rural_differ_only_in_range_and_name(self):
        import dataclasses

        urban = get_preset("urban").config
        rural = get_preset("rural").config
        assert urban.device_range_m == 500.0
        assert rural.device_range_m == 1000.0
        aligned = dataclasses.replace(rural, name="urban", device_range_m=500.0)
        assert aligned == urban

    def test_paper_points_match_sweep_spec_configs(self):
        """The urban/rural presets equal the 70-gateway sweep point.

        `_paper_point` re-derives the scaling that `ReproductionScale.
        base_config` + `sweep_specs` apply; this pins the two code paths to
        each other (everything but the cosmetic scenario name must match).
        """
        import dataclasses

        from repro.experiments.figures import ReproductionScale
        from repro.experiments.parallel import sweep_specs

        scale = ReproductionScale(spatial_scale=0.10, duration_s=4 * 3600.0)
        specs = sweep_specs(
            scale.base_config(),
            gateway_counts=(70,),
            schemes=("robc",),
            device_ranges_m=(500.0, 1000.0),
            gateway_scale=scale.spatial_scale,
        )
        by_range = {spec.config.device_range_m: spec.config for spec in specs}
        for preset_name, device_range in (("urban", 500.0), ("rural", 1000.0)):
            preset_config = get_preset(preset_name).config
            sweep_config = by_range[device_range]
            assert dataclasses.replace(
                preset_config, name=sweep_config.name
            ) == sweep_config, preset_name

    def test_smoke_presets_build_quickly(self):
        # The CI smoke presets must stay cheap: tiny fleet, tiny horizon.
        for name in ("urban-smoke", "rural-smoke"):
            config = get_preset(name).config
            assert config.duration_s <= 3600.0
            assert config.num_routes * config.trips_per_route <= 16
            built = build_scenario(config)
            assert built.num_devices > 0
            assert isinstance(
                built.devices[next(iter(built.devices))].device_class, DeviceClass
            )

    def test_unknown_preset_lists_catalogue(self):
        with pytest.raises(KeyError, match="urban"):
            get_preset("does-not-exist")

    def test_resolve_scenario_prefers_registry_then_files(self, tmp_path):
        from repro.experiments.serialization import save_scenario

        assert resolve_scenario("urban") == get_preset("urban").config
        path = tmp_path / "custom.toml"
        save_scenario(get_preset("rural").config, path)
        assert resolve_scenario(str(path)) == get_preset("rural").config
        # Suffix matching is case-insensitive, like save/load themselves.
        upper = tmp_path / "CUSTOM.TOML"
        save_scenario(get_preset("rural").config, upper)
        assert resolve_scenario(str(upper)) == get_preset("rural").config
        with pytest.raises(KeyError, match="neither"):
            resolve_scenario("not-a-preset")


class TestOverrides:
    def test_field_overrides(self):
        base = get_preset("urban").config
        variant = apply_overrides(
            base, scheme="rca-etx", num_gateways=3, seed=99, device_range_m=750.0
        )
        assert (variant.scheme, variant.num_gateways, variant.seed) == ("rca-etx", 3, 99)
        assert variant.device_range_m == 750.0
        # Untouched fields survive.
        assert variant.area_km2 == base.area_km2

    def test_scale_composes_with_field_overrides(self):
        base = get_preset("urban-full").config
        variant = apply_overrides(base, scale=0.5, num_gateways=12)
        assert variant.area_km2 == pytest.approx(base.area_km2 * 0.5)
        assert variant.num_gateways == 12

    def test_no_overrides_is_identity(self):
        base = get_preset("urban").config
        assert apply_overrides(base) is base


class TestSweeps:
    def test_catalogue_covers_figures_and_ablations(self):
        names = sweep_names()
        for required in (
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "alpha", "device-class", "placement",
        ):
            assert required in names

    def test_sweep_names_in_paper_order(self):
        names = sweep_names()
        figures = [name for name in names if name.startswith("fig")]
        assert figures == ["fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"]
        # Figures lead the catalogue; ablations follow alphabetically.
        assert names[: len(figures)] == figures
        assert names[len(figures):] == sorted(names[len(figures):])

    def test_zero_padded_figure_names_resolve(self):
        assert get_sweep("fig08") is get_sweep("fig8")
        assert get_sweep("FIG9") is get_sweep("fig9")
        with pytest.raises(KeyError, match="available"):
            get_sweep("fig99")

    def test_every_sweep_has_description_and_runner(self):
        for sweep in iter_sweeps():
            assert sweep.description
            assert callable(sweep.runner)

    def test_resolve_scale(self):
        assert resolve_scale(None) is BENCHMARK_SCALE
        assert resolve_scale("smoke") is SMOKE_SCALE
        assert resolve_scale("campaign") is CAMPAIGN_SCALE
        assert resolve_scale("0.5").spatial_scale == 0.5
        assert resolve_scale(0.25).spatial_scale == 0.25
        with pytest.raises(KeyError, match="unknown scale"):
            resolve_scale("huge")
        for out_of_range in ("1.5", 0.0, "nan", -1):
            with pytest.raises(ValueError, match="spatial scale"):
                resolve_scale(out_of_range)
        assert sorted(SCALE_PRESETS) == ["benchmark", "campaign", "smoke"]


class TestGeneratedDocs:
    def test_scenarios_md_matches_registry(self):
        """docs/scenarios.md is generated; it must not drift from the code.

        Regenerate with: PYTHONPATH=src python -m repro docs --write
        """
        path = REPO_ROOT / "docs" / "scenarios.md"
        assert path.is_file(), "docs/scenarios.md is missing"
        assert path.read_text(encoding="utf-8") == render_scenarios_markdown()

    def test_rendered_catalogue_mentions_every_name(self):
        rendered = render_scenarios_markdown()
        for preset in iter_presets():
            assert f"`{preset.name}`" in rendered
        for sweep in iter_sweeps():
            assert f"`{sweep.name}`" in rendered
