"""Round-trip tests for scenario serialization (JSON and TOML).

The contract: a serialized-and-reloaded ScenarioConfig compares equal to the
original *and* keeps the exact SHA-256 configuration digest, so file-shipped
scenarios hit the same SweepExecutor cache entries as their in-process
originals.
"""

import dataclasses

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, config_digest
from repro.experiments.registry import iter_presets
from repro.experiments.serialization import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioFormatError,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_from_json,
    scenario_from_toml,
    scenario_to_dict,
    scenario_to_json,
    scenario_to_toml,
)
from repro.mac.device import DeviceConfig
from repro.routing.config import BufferConfig, RoutingConfig

#: A configuration with every field moved off its default, including the
#: nested device and routing tables (with the doubly-nested buffer
#: sub-table), awkward floats and the boolean.
FULLY_CUSTOM = ScenarioConfig(
    name="custom — scénario \U0001F68C \"quoted\\path\"\ttab\x7fdel",
    seed=987654321,
    duration_s=12345.6789,
    area_km2=3.0000000001,
    num_gateways=13,
    gateway_placement="random",
    gateway_range_m=1234.5,
    device_range_m=0.125,
    num_routes=3,
    trips_per_route=2,
    stops_per_route=4,
    min_block_repeats=2,
    max_block_repeats=3,
    shadowing=True,
    device=DeviceConfig(
        message_interval_s=7.5,
        message_size_bytes=21,
        max_messages_per_packet=5,
        max_retransmissions=0,
        max_queue_size=9,
        duty_cycle=0.015,
        ewma_alpha=0.123456789012345,
    ),
    scheme="epidemic",
    routing=RoutingConfig(
        max_handover_messages=5,
        spray_initial_copies=7,
        rgq_phi_min=0.0001,
        rgq_phi_max=9.5,
        prophet_p_init=0.6,
        prophet_beta=0.3,
        prophet_gamma=0.9999,
        buffer=BufferConfig(policy="ttl-expiry", capacity=11, ttl_s=333.25),
    ),
    device_class="queue-based-class-a",
)


class TestRoundTrip:
    @pytest.mark.parametrize("config", [ScenarioConfig(), FULLY_CUSTOM])
    def test_json_round_trip_equal_and_digest_stable(self, config):
        restored = scenario_from_json(scenario_to_json(config))
        assert restored == config
        assert config_digest(restored) == config_digest(config)

    @pytest.mark.parametrize("config", [ScenarioConfig(), FULLY_CUSTOM])
    def test_toml_round_trip_equal_and_digest_stable(self, config):
        restored = scenario_from_toml(scenario_to_toml(config))
        assert restored == config
        assert config_digest(restored) == config_digest(config)

    def test_every_registered_preset_round_trips(self):
        for preset in iter_presets():
            for loads, dumps in (
                (scenario_from_json, scenario_to_json),
                (scenario_from_toml, scenario_to_toml),
            ):
                restored = loads(dumps(preset.config))
                assert restored == preset.config, preset.name
                assert config_digest(restored) == config_digest(preset.config)

    def test_round_trip_preserves_cache_key(self):
        spec = RunSpec(config=FULLY_CUSTOM, nominal_gateways=70)
        restored = RunSpec(
            config=scenario_from_toml(scenario_to_toml(FULLY_CUSTOM)),
            nominal_gateways=70,
        )
        assert restored.cache_key() == spec.cache_key()

    def test_routing_buffer_emitted_as_dotted_toml_subtable(self):
        text = scenario_to_toml(FULLY_CUSTOM)
        assert "[routing]" in text
        assert "[routing.buffer]" in text
        assert 'policy = "ttl-expiry"' in text

    def test_partial_routing_table_uses_defaults(self):
        restored = scenario_from_dict(
            {"name": "partial", "routing": {"spray_initial_copies": 8}}
        )
        assert restored.routing.spray_initial_copies == 8
        assert restored.routing.max_handover_messages == 12
        assert restored.routing.buffer == BufferConfig()

    def test_unknown_buffer_field_rejected(self):
        with pytest.raises(ScenarioFormatError, match="routing.buffer"):
            scenario_from_dict(
                {"name": "bad", "routing": {"buffer": {"not_a_field": 1}}}
            )

    def test_non_table_buffer_rejected(self):
        with pytest.raises(ScenarioFormatError, match="table"):
            scenario_from_dict({"name": "bad", "routing": {"buffer": 3}})

    def test_float_fields_restored_as_floats(self):
        # TOML/JSON writers elsewhere may render 1800.0 as 1800; the loader
        # must promote ints back to float so asdict() — and the digest — match.
        data = scenario_to_dict(ScenarioConfig())
        data["duration_s"] = 1800  # int on purpose
        restored = scenario_from_dict(data)
        assert isinstance(restored.duration_s, float)
        reference = dataclasses.replace(ScenarioConfig(), duration_s=1800.0)
        assert config_digest(restored) == config_digest(reference)


class TestFiles:
    @pytest.mark.parametrize("suffix", [".json", ".toml"])
    def test_save_and_load(self, tmp_path, suffix):
        path = tmp_path / f"scenario{suffix}"
        save_scenario(FULLY_CUSTOM, path)
        assert load_scenario(path) == FULLY_CUSTOM

    def test_unsupported_suffix_rejected(self, tmp_path):
        with pytest.raises(ScenarioFormatError, match="suffix"):
            save_scenario(ScenarioConfig(), tmp_path / "scenario.yaml")
        with pytest.raises(ScenarioFormatError, match="suffix"):
            load_scenario(tmp_path / "scenario.txt")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ScenarioFormatError, match="cannot read"):
            load_scenario(tmp_path / "nope.json")


class TestValidation:
    def test_partial_mapping_uses_defaults(self):
        restored = scenario_from_dict({"name": "partial", "num_gateways": 5})
        assert restored == dataclasses.replace(
            ScenarioConfig(), name="partial", num_gateways=5
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioFormatError, match="unknown scenario field"):
            scenario_from_dict({"num_gatewayz": 5})

    def test_unknown_device_field_rejected(self):
        with pytest.raises(ScenarioFormatError, match="unknown device field"):
            scenario_from_dict({"device": {"duty": 0.01}})

    def test_wrong_types_rejected(self):
        with pytest.raises(ScenarioFormatError, match="must be an integer"):
            scenario_from_dict({"num_gateways": 5.5})
        with pytest.raises(ScenarioFormatError, match="must be an integer"):
            scenario_from_dict({"num_gateways": True})
        with pytest.raises(ScenarioFormatError, match="must be a string"):
            scenario_from_dict({"scheme": 3})
        with pytest.raises(ScenarioFormatError, match="must be a boolean"):
            scenario_from_dict({"shadowing": 1})
        with pytest.raises(ScenarioFormatError, match="must be a number"):
            scenario_from_dict({"duration_s": "long"})

    def test_domain_validation_still_applies(self):
        with pytest.raises(ScenarioFormatError, match="invalid scenario"):
            scenario_from_dict({"gateway_placement": "hexagon"})

    def test_future_schema_version_rejected(self):
        data = scenario_to_dict(ScenarioConfig())
        data["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ScenarioFormatError, match="schema_version"):
            scenario_from_dict(data)

    def test_invalid_text_rejected(self):
        with pytest.raises(ScenarioFormatError, match="JSON"):
            scenario_from_json("{not json")
        with pytest.raises(ScenarioFormatError, match="TOML"):
            scenario_from_toml("= broken")
        with pytest.raises(ScenarioFormatError, match="mapping"):
            scenario_from_json("[1, 2]")
