"""End-to-end tests for the ``repro serve`` results service.

The service runs in a background thread on an ephemeral port; the tests are
real HTTP clients (urllib), so the minimal request parser, the routing table
and the drain loop are all exercised exactly as a deployment would.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, SweepExecutor
from repro.experiments.serialization import scenario_to_dict
from repro.experiments.service import CampaignService


@pytest.fixture(scope="module")
def tiny_config():
    return ScenarioConfig(
        duration_s=1200.0,
        area_km2=12.0,
        num_gateways=2,
        num_routes=3,
        trips_per_route=2,
        stops_per_route=4,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        seed=23,
    )


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    executor = SweepExecutor(workers=1, cache_dir=tmp_path_factory.mktemp("store"))
    svc = CampaignService(executor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=svc.run_blocking, daemon=True)
    thread.start()
    assert svc.ready.wait(timeout=10), "service did not come up"
    yield svc
    svc.stop()
    thread.join(timeout=10)


def _request(service, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{service.bound_port}{path}", data=body, method=method
    )
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _poll_until_done(service, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, payload = _request(service, "GET", f"/jobs/{job_id}")
        assert status == 200
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout_s}s")


class TestService:
    def test_health(self, service):
        status, payload = _request(service, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["backend"] == "serial"

    def test_submit_compute_poll_then_cache_hit(self, service, tiny_config):
        body = {"scenario": scenario_to_dict(tiny_config)}

        status, payload = _request(service, "POST", "/runs", body)
        assert status == 202
        job_id = payload["job_id"]
        assert payload["poll"] == f"/jobs/{job_id}"
        assert job_id == RunSpec(config=tiny_config).cache_key()

        finished = _poll_until_done(service, job_id)
        assert finished["status"] == "done"
        assert finished["error"] is None
        assert finished["metrics"]["messages_generated"] > 0

        # Resubmitting the identical scenario is a pure store lookup.
        status, payload = _request(service, "POST", "/runs", body)
        assert status == 200
        assert payload["cached"] is True
        assert payload["metrics"] == finished["metrics"]

        # The digest alone is enough once the result exists.
        status, payload = _request(
            service, "POST", "/runs", {"cache_key": job_id}
        )
        assert status == 200
        status, payload = _request(service, "GET", f"/results/{job_id}")
        assert status == 200
        assert payload["metrics"]["scheme"] == tiny_config.scheme

    def test_summary_aggregates_the_store(self, service, tiny_config):
        body = {"scenario": scenario_to_dict(tiny_config)}
        status, payload = _request(service, "POST", "/runs", body)
        if status == 202:
            _poll_until_done(service, payload["job_id"])
        status, payload = _request(service, "GET", "/summary")
        assert status == 200
        assert payload["runs"] >= 1
        assert 0.0 <= payload["delivery_ratio"] <= 1.0

    def test_unknown_cache_key_is_a_404_not_a_job(self, service):
        status, payload = _request(
            service, "POST", "/runs", {"cache_key": "v-absent"}
        )
        assert status == 404
        status, _ = _request(service, "GET", "/results/v-absent")
        assert status == 404
        status, _ = _request(service, "GET", "/jobs/v-absent")
        assert status == 404

    def test_bad_requests(self, service):
        status, payload = _request(service, "POST", "/runs", {"preset": "no-such"})
        assert status == 400
        assert "no-such" in payload["error"]
        status, _ = _request(service, "POST", "/runs", {})
        assert status == 400
        status, _ = _request(service, "GET", "/no-such-route")
        assert status == 404
        status, _ = _request(service, "POST", "/health")
        assert status == 405

    def test_executor_without_store_is_rejected(self):
        with pytest.raises(ValueError, match="store"):
            CampaignService(SweepExecutor(workers=1))
