"""Unit tests for the content-addressed result store and streaming accumulator."""

import pickle

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import RunSpec, execute_spec
from repro.experiments.store import MetricsAccumulator, ResultStore


@pytest.fixture(scope="module")
def tiny_metrics():
    config = ScenarioConfig(
        duration_s=1200.0,
        area_km2=12.0,
        num_gateways=2,
        num_routes=3,
        trips_per_route=2,
        stops_per_route=4,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        seed=23,
    )
    return execute_spec(RunSpec(config=config)).metrics


class TestResultStore:
    def test_roundtrip(self, tiny_metrics, tmp_path):
        store = ResultStore(tmp_path)
        store.store("k1", tiny_metrics)
        assert "k1" in store
        assert store.load("k1") == tiny_metrics

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("absent") is None
        assert "absent" not in store

    def test_layout_is_sharded_and_atomic(self, tiny_metrics, tmp_path):
        store = ResultStore(tmp_path)
        store.store("some-key", tiny_metrics)
        path = store.path_for("some-key")
        assert path.parent.parent == tmp_path
        assert len(path.parent.name) == 2  # two-hex-char shard
        # No temp files left behind by the write-then-rename protocol.
        assert sorted(p.name for p in tmp_path.rglob("*") if p.is_file()) == [
            "some-key.pkl"
        ]

    def test_corrupt_entry_is_unlinked_on_load(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("bad")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage that is not a pickle")
        assert store.load("bad") is None
        assert not path.exists()

    def test_wrong_type_entry_is_unlinked_on_load(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("wrong")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "RunMetrics"}))
        assert store.load("wrong") is None
        assert not path.exists()

    def test_reads_legacy_flat_layout(self, tiny_metrics, tmp_path):
        (tmp_path / "old-key.pkl").write_bytes(pickle.dumps(tiny_metrics))
        store = ResultStore(tmp_path)
        assert store.load("old-key") == tiny_metrics
        assert "old-key" in store

    def test_iter_keys_covers_both_layouts(self, tiny_metrics, tmp_path):
        (tmp_path / "flat.pkl").write_bytes(pickle.dumps(tiny_metrics))
        store = ResultStore(tmp_path)
        store.store("sharded", tiny_metrics)
        assert sorted(store.iter_keys()) == ["flat", "sharded"]

    def test_summarize(self, tiny_metrics, tmp_path):
        store = ResultStore(tmp_path)
        store.store("a", tiny_metrics)
        store.store("b", tiny_metrics)
        summary = store.summarize()
        assert summary["runs"] == 2
        assert summary["messages_generated"] == 2 * tiny_metrics.messages_generated


class TestMetricsAccumulator:
    def test_empty_summary(self):
        summary = MetricsAccumulator().summary()
        assert summary["runs"] == 0
        assert summary["delivery_ratio"] == 0.0
        assert summary["mean_delay_s"] is None

    def test_streaming_totals_match_fields(self, tiny_metrics):
        acc = MetricsAccumulator()
        acc.add(tiny_metrics)
        acc.add(tiny_metrics)
        summary = acc.summary()
        assert summary["runs"] == 2
        assert summary["messages_delivered"] == 2 * tiny_metrics.messages_delivered
        if tiny_metrics.messages_generated:
            assert summary["delivery_ratio"] == pytest.approx(
                tiny_metrics.messages_delivered / tiny_metrics.messages_generated
            )
