"""Execution-backend tests: equivalence matrix, crash safety and retries.

The two headline guarantees of the campaign engine:

* **Backend equivalence** — serial, process-pool and work-queue execution
  produce bit-identical :class:`RunMetrics` for every spec, so the choice
  of backend can never change scientific results.
* **Crash safety** — a worker that dies mid-campaign loses only its
  in-flight run: every finished sibling is already in the result store, and
  resuming serves those from cache without recomputation.
"""

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.experiments.backends import (
    BackendOptions,
    ExecutionBackend,
    RetryPolicy,
    build_execution_backend,
    execution_backend_names,
    failure_outcome,
    register_execution_backend,
    run_worker,
)
from repro.experiments.backends.work_queue import (
    ACTIVE_DIR,
    TODO_DIR,
    WorkQueueBackend,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.parallel import (
    RunSpec,
    SweepExecutionError,
    SweepExecutor,
    execute_spec,
    sweep_specs,
)
from repro.mobility.config import MobilityConfig


@pytest.fixture(scope="module")
def tiny_config():
    return ScenarioConfig(
        duration_s=1200.0,
        area_km2=12.0,
        num_gateways=2,
        num_routes=3,
        trips_per_route=2,
        stops_per_route=4,
        min_block_repeats=1,
        max_block_repeats=2,
        device_range_m=1000.0,
        seed=23,
    )


@pytest.fixture(scope="module")
def matrix_specs(tiny_config):
    return sweep_specs(tiny_config, (2, 3), ("no-routing", "robc"), (1000.0,))


def crashing_spec(tiny_config, name="a"):
    """A spec that builds fine but crashes inside the worker at scenario build."""
    return RunSpec(
        config=dataclasses.replace(
            tiny_config,
            mobility=MobilityConfig(
                model="trace-file", trace_file=f"/nonexistent/{name}.csv"
            ),
        )
    )


def _drain_worker(spool_dir, max_jobs=None):
    """Run a spool worker in a forked child and wait for it to exit."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=run_worker,
        args=(spool_dir,),
        kwargs=dict(max_jobs=max_jobs, idle_timeout_s=5.0, poll_interval_s=0.02),
    )
    proc.start()
    proc.join(timeout=120)
    assert proc.exitcode == 0
    return proc


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = execution_backend_names()
        assert {"serial", "process-pool", "work-queue"} <= set(names)

    def test_registry_is_open(self, tiny_config):
        class EchoBackend(ExecutionBackend):
            name = "echo-test"

            def execute(self, items):
                for index, spec in items:
                    yield index, execute_spec(spec)

        register_execution_backend("echo-test", lambda options: EchoBackend())
        backend = build_execution_backend("echo-test", BackendOptions())
        outcomes = SweepExecutor(backend=backend).run([RunSpec(config=tiny_config)])
        assert outcomes[0].ok

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="work-queue"):
            build_execution_backend("bogus", BackendOptions())

    def test_work_queue_requires_spool_dir(self):
        with pytest.raises(ValueError, match="spool"):
            build_execution_backend("work-queue", BackendOptions())


class TestBackendEquivalence:
    def test_matrix_is_bit_identical(self, matrix_specs, tmp_path):
        reference = {
            spec.cache_key(): execute_spec(spec).metrics for spec in matrix_specs
        }

        legs = {}
        legs["serial"] = SweepExecutor(backend="serial").run(matrix_specs)
        legs["process-pool"] = SweepExecutor(
            workers=4, backend="process-pool"
        ).run(matrix_specs)

        spool = tmp_path / "spool"
        executor = SweepExecutor(backend="work-queue", spool_dir=spool)
        ctx = multiprocessing.get_context("fork")
        worker = ctx.Process(
            target=run_worker,
            args=(str(spool),),
            kwargs=dict(idle_timeout_s=10.0, poll_interval_s=0.02),
        )
        worker.start()
        try:
            legs["work-queue"] = executor.run(matrix_specs)
        finally:
            worker.join(timeout=120)
        assert worker.exitcode == 0

        for leg, outcomes in legs.items():
            assert [o.spec for o in outcomes] == matrix_specs, leg
            for outcome in outcomes:
                # RunMetrics == compares every field, per-delivery arrays
                # included: the equivalence is bit-identical, not approximate.
                assert outcome.metrics == reference[outcome.spec.cache_key()], leg


class TestCrashSafety:
    def test_finished_siblings_survive_a_crashing_run(self, tiny_config, tmp_path):
        """The original bug: one crashed run threw away the whole batch.

        Now every finished sibling is stored the moment it completes, the
        crash surfaces as a per-spec failure outcome, and resuming serves
        the siblings from cache.
        """
        good = sweep_specs(tiny_config, (2, 3), ("no-routing",), (1000.0,))
        specs = [good[0], crashing_spec(tiny_config), good[1]]
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        with pytest.raises(SweepExecutionError, match="1 of 3"):
            executor.run(specs)
        # Both healthy runs were cached before the batch error surfaced.
        for spec in good:
            assert executor.store.load(spec.cache_key()) is not None

        resumed = executor.run(specs, allow_failures=True)
        assert [o.from_cache for o in resumed] == [True, False, True]
        assert resumed[1].error is not None and not resumed[1].ok

    def test_killed_worker_loses_nothing_already_stored(
        self, matrix_specs, tmp_path
    ):
        """A worker that dies mid-campaign: completed jobs stay completed.

        A worker with ``max_jobs=2`` exits after two of four jobs — the
        deterministic stand-in for a worker killed mid-campaign.  Its two
        results must already be in the spool store, and the resumed campaign
        must serve them from cache instead of recomputing.
        """
        spool = tmp_path / "spool"
        backend = WorkQueueBackend(spool_dir=spool, poll_interval_s=0.02)
        backend.spool.ensure_layout()
        for spec in matrix_specs:
            backend._submit(spec.cache_key(), spec)
        _drain_worker(str(spool), max_jobs=2)

        stored = [
            spec for spec in matrix_specs if backend.store.load(spec.cache_key())
        ]
        assert len(stored) == 2

        executor = SweepExecutor(backend=backend)
        worker = multiprocessing.get_context("fork").Process(
            target=run_worker,
            args=(str(spool),),
            kwargs=dict(idle_timeout_s=10.0, poll_interval_s=0.02),
        )
        worker.start()
        try:
            outcomes = executor.run(matrix_specs)
        finally:
            worker.join(timeout=120)
        by_key = {o.spec.cache_key(): o for o in outcomes}
        # The two finished-before-the-kill runs came from the store.
        for spec in stored:
            assert by_key[spec.cache_key()].from_cache
        assert all(o.ok for o in outcomes)

    def test_stale_active_job_is_requeued(self, tiny_config, tmp_path):
        """A claim whose worker died is returned to todo after the lease."""
        spool = tmp_path / "spool"
        backend = WorkQueueBackend(
            spool_dir=spool, poll_interval_s=0.02, lease_timeout_s=0.2
        )
        backend.spool.ensure_layout()
        spec = RunSpec(config=tiny_config)
        backend._submit(spec.cache_key(), spec)
        # Simulate a worker that claimed the job and then died.
        todo = spool / TODO_DIR / f"{spec.cache_key()}.json"
        active = spool / ACTIVE_DIR / f"{spec.cache_key()}.json"
        os.rename(todo, active)
        old = time.time() - 5.0
        os.utime(active, (old, old))

        worker = multiprocessing.get_context("fork").Process(
            target=run_worker,
            args=(str(spool),),
            kwargs=dict(idle_timeout_s=10.0, poll_interval_s=0.02),
        )
        worker.start()
        try:
            outcomes = list(SweepExecutor(backend=backend).run([spec]))
        finally:
            worker.join(timeout=120)
        assert outcomes[0].ok


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_backoff_is_bounded(self):
        policy = RetryPolicy(retries=8, backoff_base_s=1.0, backoff_cap_s=4.0)
        delays = [policy.delay_for(attempt) for attempt in range(1, 9)]
        assert delays[0] == 1.0
        assert delays[1] == 2.0
        assert max(delays) == 4.0

    def test_flaky_backend_succeeds_within_budget(self, tiny_config, tmp_path):
        """Transient failures burn retry budget, then the run succeeds."""
        marker = tmp_path / "attempts"

        class FlakyBackend(ExecutionBackend):
            name = "flaky-test"

            def execute(self, items):
                for index, spec in items:
                    count = int(marker.read_text()) if marker.exists() else 0
                    marker.write_text(str(count + 1))
                    if count < 2:
                        yield index, failure_outcome(
                            spec, ConnectionError("transient"), 0.0
                        )
                    else:
                        yield index, execute_spec(spec)

        executor = SweepExecutor(
            backend=FlakyBackend(),
            retry=RetryPolicy(retries=2, backoff_base_s=0.0),
        )
        outcome = executor.run([RunSpec(config=tiny_config)])[0]
        assert outcome.ok
        assert outcome.attempts == 3

    def test_budget_exhaustion_reports_failure(self, tiny_config):
        executor = SweepExecutor(
            workers=1, retry=RetryPolicy(retries=1, backoff_base_s=0.0)
        )
        outcome = executor.run(
            [crashing_spec(tiny_config)], allow_failures=True
        )[0]
        assert not outcome.ok
        assert outcome.attempts == 2


class TestProcessPoolFailureIsolation:
    def test_one_crash_does_not_abort_the_batch(self, tiny_config, tmp_path):
        good = sweep_specs(tiny_config, (2,), ("no-routing",), (1000.0,))
        specs = [crashing_spec(tiny_config), good[0]]
        executor = SweepExecutor(
            workers=2, backend="process-pool", cache_dir=tmp_path
        )
        outcomes = executor.run(specs, allow_failures=True)
        assert [o.ok for o in outcomes] == [False, True]
        assert executor.store.load(good[0].cache_key()) is not None
