"""Tests for sweeps, figure definitions and reporting."""

import pytest

from repro.analysis.metrics import RunMetrics
from repro.experiments.figures import (
    BusNetworkProperties,
    ReproductionScale,
    ThroughputTimeSeries,
    figure07_bus_network,
    figure08_delay,
    figure09_throughput,
    figure12_hops,
    figure13_overhead,
)
from repro.experiments.reporting import (
    format_bus_network,
    format_figure_rows,
    format_metric_comparison,
    format_table,
    format_timeseries,
)
from repro.experiments.sweeps import SweepResult


def _run(scheme, gateways, device_range, value):
    return RunMetrics(
        scheme=scheme,
        num_gateways=gateways,
        device_range_m=device_range,
        duration_s=3600.0,
        messages_generated=100,
        messages_delivered=int(value),
        delays_s=[value],
        hop_counts=[1],
        delivery_times_s=[10.0],
        transmissions_per_device={"a": int(value)},
        energy_joules_per_device={"a": value},
    )


@pytest.fixture
def sweep():
    result = SweepResult()
    for scheme, base in (("no-routing", 50), ("rca-etx", 60), ("robc", 70)):
        for gateways in (40, 100):
            for device_range in (500.0, 1000.0):
                result.add(_run(scheme, gateways, device_range, base + gateways / 10.0))
    return result


class TestSweepResult:
    def test_indexing_and_accessors(self, sweep):
        assert sweep.schemes() == ["no-routing", "rca-etx", "robc"]
        assert sweep.gateway_counts() == [40, 100]
        assert sweep.device_ranges() == [500.0, 1000.0]
        assert sweep.get("robc", 40, 500.0).messages_delivered == 74

    def test_series_extraction(self, sweep):
        series = sweep.series("rca-etx", 500.0, "throughput_messages")
        assert series == [(40, 64.0), (100, 70.0)]

    def test_missing_run_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.get("robc", 99, 500.0)


class TestFigureRows:
    def test_figure_rows_cover_all_combinations(self, sweep):
        rows = figure08_delay(sweep)
        assert len(rows) == 3 * 2 * 2
        assert {row.environment for row in rows} == {"urban", "rural"}

    def test_each_figure_reads_its_metric(self, sweep):
        throughput = figure09_throughput(sweep)
        hops = figure12_hops(sweep)
        overhead = figure13_overhead(sweep)
        assert all(row.value > 0 for row in throughput)
        assert all(row.value == 1.0 for row in hops)
        assert all(row.value > 0 for row in overhead)


class TestFigure07:
    def test_bus_network_properties_generated(self):
        scale = ReproductionScale(spatial_scale=0.05, duration_s=3600.0)
        properties = figure07_bus_network(scale)
        assert isinstance(properties, BusNetworkProperties)
        assert len(properties.bin_starts_s) == len(properties.active_buses)
        assert properties.peak_active_buses >= properties.night_active_buses
        assert all(d > 0 for d in properties.active_durations_s)


class TestReproductionScale:
    def test_base_config_scaled(self):
        scale = ReproductionScale(spatial_scale=0.1, duration_s=3600.0)
        config = scale.base_config()
        assert config.area_km2 == pytest.approx(60.0)
        assert config.duration_s == 3600.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ReproductionScale(spatial_scale=0.0)
        with pytest.raises(ValueError):
            ReproductionScale(duration_s=0.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "b"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "longer" in lines[3]

    def test_format_figure_rows_contains_values(self, sweep):
        text = format_figure_rows("Fig 9", figure09_throughput(sweep), unit="messages")
        assert "Fig 9" in text and "robc" in text and "urban" in text

    def test_format_bus_network(self):
        properties = BusNetworkProperties(
            bin_starts_s=[0.0, 1800.0], active_buses=[2, 5], active_durations_s=[100.0, 200.0]
        )
        text = format_bus_network("Fig 7", properties)
        assert "peak active buses" in text and "5" in text

    def test_format_timeseries(self):
        series = ThroughputTimeSeries(
            environment="urban",
            bin_starts_s=[0.0, 600.0],
            series_by_scheme={"robc": [1.0, 2.0], "no-routing": [1.0, 1.0]},
        )
        text = format_timeseries("Fig 10", series)
        assert "urban" in text and "robc" in text

    def test_format_metric_comparison(self):
        runs = {"grid": _run("robc", 40, 500.0, 60.0)}
        text = format_metric_comparison("Ablation", runs, ("mean_delay_s", "throughput_messages"))
        assert "Ablation" in text and "grid" in text
