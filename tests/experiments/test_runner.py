"""Unit/functional tests for the simulation engine."""

from repro.experiments.runner import MLoRaSimulation, run_scenario
from repro.experiments.scenario import build_scenario


class TestRunScenario:
    def test_run_produces_consistent_metrics(self, small_scenario_config):
        metrics = run_scenario(small_scenario_config)
        assert metrics.messages_generated > 0
        assert 0 <= metrics.messages_delivered <= metrics.messages_generated
        assert len(metrics.delays_s) == metrics.messages_delivered
        assert len(metrics.hop_counts) == metrics.messages_delivered
        assert all(delay >= 0 for delay in metrics.delays_s)
        assert metrics.scheme == "no-routing"

    def test_no_routing_always_single_hop(self, small_scenario_config):
        metrics = run_scenario(small_scenario_config)
        assert all(h == 1 for h in metrics.hop_counts)

    def test_same_seed_is_deterministic(self, small_scenario_config):
        first = run_scenario(small_scenario_config.with_scheme("robc"))
        second = run_scenario(small_scenario_config.with_scheme("robc"))
        assert first.messages_delivered == second.messages_delivered
        assert first.delays_s == second.delays_s
        assert first.transmissions_per_device == second.transmissions_per_device

    def test_forwarding_scheme_can_produce_multi_hop_deliveries(self, small_scenario_config):
        metrics = run_scenario(small_scenario_config.with_scheme("rca-etx"))
        assert all(h >= 1 for h in metrics.hop_counts)

    def test_duty_cycle_respected_for_every_device(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config.with_scheme("robc"))
        simulation = MLoRaSimulation(scenario)
        simulation.run()
        for device in scenario.devices.values():
            utilisation = device.duty_cycle.total_airtime_s / small_scenario_config.duration_s
            assert utilisation <= small_scenario_config.device.duty_cycle + 1e-6

    def test_delivered_messages_within_simulation_window(self, small_scenario_config):
        metrics = run_scenario(small_scenario_config)
        assert all(0 <= t <= small_scenario_config.duration_s for t in metrics.delivery_times_s)

    def test_energy_accounted_for_every_device(self, small_scenario_config):
        metrics = run_scenario(small_scenario_config)
        assert len(metrics.energy_joules_per_device) == (
            small_scenario_config.num_routes * small_scenario_config.trips_per_route
        )
        assert all(e >= 0.0 for e in metrics.energy_joules_per_device.values())

    def test_handover_counters_zero_without_forwarding(self, small_scenario_config):
        scenario = build_scenario(small_scenario_config)
        simulation = MLoRaSimulation(scenario)
        simulation.run()
        assert simulation.handover_count == 0
        assert simulation.handed_over_messages == 0

    def test_retransmissions_recorded_when_uplinks_fail(self, small_scenario_config):
        from dataclasses import replace

        # A single, far-away gateway guarantees failures for most devices.
        sparse = replace(small_scenario_config, num_gateways=1, area_km2=80.0)
        scenario = build_scenario(sparse)
        MLoRaSimulation(scenario).run()
        assert sum(d.stats.retransmissions for d in scenario.devices.values()) > 0
