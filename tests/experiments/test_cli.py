"""CLI smoke tests and the CLI-vs-Python-API equivalence contract.

The acceptance bar for the `repro` entry point: running a preset (or a
figure sweep) through the CLI produces *bit-identical* RunMetrics — and the
same on-disk cache digest — as driving the library directly.  The CLI may
add printing and artifact writing, never different results.
"""

import csv
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import build_executor, main, run_sweep, run_target
from repro.experiments.figures import SMOKE_SCALE, run_density_sweep
from repro.experiments.parallel import RunSpec, SweepExecutor, config_digest
from repro.experiments.registry import get_preset
from repro.experiments.runner import run_scenario
from repro.experiments.serialization import load_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"


# --------------------------------------------------------------------- #
# Equivalence: CLI path == Python API path
# --------------------------------------------------------------------- #
class TestEquivalence:
    @pytest.mark.parametrize("preset_name", ["urban-smoke", "rural-smoke"])
    def test_run_matches_python_api_bit_identically(self, preset_name):
        config = get_preset(preset_name).config
        cli_outcome = run_target(preset_name)
        api_metrics = run_scenario(config)
        assert cli_outcome.metrics == api_metrics
        # Same cache identity, too: a CLI run and an API run share cache slots.
        assert cli_outcome.spec.cache_key() == RunSpec(config=config).cache_key()

    @pytest.mark.parametrize("preset_name", ["urban-smoke", "rural-smoke"])
    def test_exported_file_runs_bit_identically(self, tmp_path, preset_name):
        """preset → TOML file → `repro run <file>` keeps metrics and digest."""
        config = get_preset(preset_name).config
        path = tmp_path / f"{preset_name}.toml"
        assert main(["export", preset_name, str(path)]) == 0
        loaded = load_scenario(path)
        assert config_digest(loaded) == config_digest(config)
        assert run_target(str(path)).metrics == run_scenario(config)

    def test_sweep_matches_python_api_bit_identically(self):
        """`repro sweep fig9 --scale smoke` == run_density_sweep(SMOKE_SCALE).

        The smoke scale covers both environments (urban 500 m and rural
        1000 m), all three schemes and two gateway counts.
        """
        artifact = run_sweep("fig9", scale="smoke")
        api_sweep = run_density_sweep(SMOKE_SCALE)
        assert set(artifact.raw.runs) == set(api_sweep.runs)
        for key, metrics in api_sweep.runs.items():
            assert artifact.raw.runs[key] == metrics, key

    def test_engine_override_matches_api_bit_identically(self):
        """`repro run urban-smoke --engine array` == the API on either engine."""
        config = get_preset("urban-smoke").config
        outcome = run_target("urban-smoke", engine="array")
        assert outcome.spec.config.engine.engine == "array"
        assert outcome.metrics == run_scenario(config.with_engine("array"))
        # The array engine is bit-identical to the object oracle, so the
        # override changes the execution path, never the results.
        assert outcome.metrics == run_scenario(config)

    def test_cached_cli_run_serves_identical_metrics(self, tmp_path):
        executor = build_executor(workers=1, cache_dir=str(tmp_path))
        first = run_target("urban-smoke", executor=executor)
        second = run_target("urban-smoke", executor=build_executor(1, str(tmp_path)))
        assert not first.from_cache
        assert second.from_cache
        assert second.metrics == first.metrics


# --------------------------------------------------------------------- #
# Smoke tests (in-process main())
# --------------------------------------------------------------------- #
class TestSmoke:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "urban" in out and "rural" in out and "fig9" in out

    def test_describe_preset_and_sweep(self, capsys):
        assert main(["describe", "urban"]) == 0
        out = capsys.readouterr().out
        assert "config digest" in out and '"device_range_m": 500.0' in out
        assert main(["describe", "fig8"]) == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_describe_unknown_fails(self, capsys):
        assert main(["describe", "nope"]) == 2
        assert "repro list" in capsys.readouterr().err

    def test_run_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["run", "urban-smoke", "--out", str(out_dir)]) == 0
        summary = capsys.readouterr().out
        assert "messages_delivered" in summary

        metrics = json.loads((out_dir / "metrics.json").read_text())
        reference = run_scenario(get_preset("urban-smoke").config)
        assert metrics["messages_delivered"] == reference.messages_delivered
        assert metrics["delays_s"] == pytest.approx(reference.delays_s)

        with (out_dir / "metrics.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert int(rows[0]["messages_delivered"]) == reference.messages_delivered

        # The emitted scenario.json reproduces the run exactly.
        assert load_scenario(out_dir / "scenario.json") == get_preset("urban-smoke").config

    def test_run_with_overrides(self, capsys):
        assert main(["run", "urban-smoke", "--scheme", "no-routing", "--seed", "3"]) == 0
        del capsys  # output content covered elsewhere
        reference = run_target("urban-smoke", scheme="no-routing", seed=3)
        assert reference.spec.config.scheme == "no-routing"
        assert reference.spec.config.seed == 3

    def test_run_unknown_target_fails_cleanly(self, capsys):
        assert main(["run", "not-a-preset"]) == 2
        err = capsys.readouterr().err
        assert "neither" in err
        # str(KeyError) would wrap the message in doubled quoting.
        assert '"\'not-a-preset\'' not in err

    def test_run_unknown_scheme_or_class_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "urban-smoke", "--scheme", "typo"]) == 2
        assert "unknown scheme" in capsys.readouterr().err
        assert main(["run", "urban-smoke", "--device-class", "class-z"]) == 2
        assert "unknown device class" in capsys.readouterr().err
        # A hand-edited scenario file with a typo'd scheme takes the same path.
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"name": "bad", "scheme": "does-not-exist"}), encoding="utf-8"
        )
        assert main(["run", str(path)]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_run_invalid_workers_fails_cleanly(self, capsys, monkeypatch):
        assert main(["run", "urban-smoke", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "abc")
        assert main(["run", "urban-smoke"]) == 2
        assert "REPRO_SWEEP_WORKERS" in capsys.readouterr().err

    def test_docs_check_missing_file_reported_distinctly(self, tmp_path, capsys):
        assert main(["docs", "--path", str(tmp_path / "scenarios.md")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bench_invalid_inputs_fail_cleanly(self, capsys):
        assert main(["bench", "--scheme", "typo", "--fractions", "0.1"]) == 2
        assert "unknown scheme" in capsys.readouterr().err
        for bad in ("0", "1.5", "-0.25"):
            assert main(["bench", "--fractions", bad]) == 2
            assert "fleet fractions" in capsys.readouterr().err

    def test_bench_prints_speedup_table(self, capsys):
        # A tiny ladder point (~25 buses) keeps the two timed runs fast.
        assert main(["bench", "--fractions", "0.026", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "scheme=no-routing" in out

    def test_sweep_out_of_range_scale_fails_cleanly(self, capsys):
        for bad in ("1.5", "0", "nan"):
            assert main(["sweep", "fig9", "--scale", bad]) == 2
            assert "spatial scale" in capsys.readouterr().err

    def test_docs_write_and_check_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["docs", "--write", "--check"])
        assert "not allowed with" in capsys.readouterr().err

    def test_run_invalid_override_fails_cleanly(self, capsys):
        assert main(["run", "urban-smoke", "--gateways", "0"]) == 2
        assert "invalid override" in capsys.readouterr().err

    def test_sweep_fig7_and_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "fig7"
        assert main(["sweep", "fig7", "--scale", "smoke", "--out", str(out_dir)]) == 0
        assert "bus network" in capsys.readouterr().out
        data = json.loads((out_dir / "fig7.json").read_text())
        assert data and {"bin_start_s", "active_buses"} == set(data[0])

    def test_sweep_unknown_figure_fails_cleanly(self, capsys):
        assert main(["sweep", "fig99"]) == 2
        assert "available" in capsys.readouterr().err

    def test_docs_check_passes_on_committed_file(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["docs", "--check"]) == 0

    def test_docs_check_detects_drift(self, tmp_path, capsys):
        stale = tmp_path / "scenarios.md"
        stale.write_text("# stale\n")
        assert main(["docs", "--path", str(stale)]) == 1
        assert "out of date" in capsys.readouterr().err
        assert main(["docs", "--write", "--path", str(stale)]) == 0
        assert main(["docs", "--path", str(stale)]) == 0


# --------------------------------------------------------------------- #
# The installed/module entry points themselves
# --------------------------------------------------------------------- #
class TestCampaignFlags:
    def test_run_accepts_backend_and_retry_flags(self, tmp_path, capsys):
        assert main([
            "run", "urban-smoke", "--backend", "serial",
            "--retries", "1", "--cache", str(tmp_path),
        ]) == 0
        assert "messages_delivered" in capsys.readouterr().out
        # The retried-capable run still landed in the (sharded) cache.
        assert list(tmp_path.rglob("*.pkl"))

    def test_unknown_backend_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "urban-smoke", "--backend", "bogus"])
        assert "bogus" in capsys.readouterr().err

    def test_backend_env_fallback(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        assert main(["run", "urban-smoke", "--cache", str(tmp_path)]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "bogus")
        assert main(["run", "urban-smoke"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_worker_exits_on_idle_timeout(self, tmp_path, capsys):
        assert main([
            "worker", str(tmp_path / "spool"), "--idle-timeout", "0.2",
            "--poll", "0.05",
        ]) == 0
        assert "processed 0 job(s)" in capsys.readouterr().out

    def test_worker_invalid_flags_fail_cleanly(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path), "--max-jobs", "0"]) == 2
        assert "--max-jobs" in capsys.readouterr().err
        assert main(["worker", str(tmp_path), "--idle-timeout", "0"]) == 2
        assert "--idle-timeout" in capsys.readouterr().err

    def test_work_queue_without_spool_fails_cleanly(self, capsys):
        assert main(["run", "urban-smoke", "--backend", "work-queue"]) == 2
        assert "spool" in capsys.readouterr().err


class TestEntryPoint:
    def test_python_dash_m_repro(self):
        """`PYTHONPATH=src python -m repro list` works on a fresh checkout."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "urban" in result.stdout

    def test_console_script_declared(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'repro = "repro.experiments.cli:main"' in pyproject


def test_workers_flag_matches_serial_results():
    """A parallel CLI run returns the same metrics as the serial one."""
    serial = run_target("urban-smoke", executor=SweepExecutor(workers=1))
    parallel = run_target("urban-smoke", executor=SweepExecutor(workers=2))
    assert serial.metrics == parallel.metrics
