"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ewma import ExponentialMovingAverage
from repro.core.pst import RealTimePacketServiceTime
from repro.core.rgq import RealTimeGatewayQuality
from repro.core.robc import queue_based_class_a_window_fraction, robc_transfer_amount
from repro.mac.duty_cycle import DutyCycleRegulator
from repro.mac.frames import DataMessage
from repro.mac.queueing import DataQueue
from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.constants import SpreadingFactor
from repro.phy.link import LinkCapacityModel
from repro.sim.events import EventQueue

CAPACITY_MODEL = LinkCapacityModel(
    max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
)
RGQ = RealTimeGatewayQuality(phi_min=1e-6, phi_max=10.0)

finite_metrics = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
queue_lengths = st.integers(min_value=0, max_value=500)


class TestEWMAProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                              allow_infinity=False), min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0))
    def test_ewma_stays_within_sample_bounds(self, samples, alpha):
        ewma = ExponentialMovingAverage(alpha=alpha)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) - 1e-6 <= ewma.value <= max(samples) + 1e-6


class TestRPSTProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=600.0),
                              st.floats(min_value=0.0, max_value=100.0)),
                    min_size=1, max_size=40))
    def test_rpst_always_positive_and_capped(self, slots):
        pst = RealTimePacketServiceTime(packet_bits=100.0, max_service_time_s=5000.0)
        now = 0.0
        for gap, capacity in slots:
            now += gap
            sample = pst.observe_slot(now, capacity)
            assert 0.0 < sample <= 5000.0
        assert 0.0 < pst.expected <= 5000.0


class TestROBCProperties:
    @given(queue_lengths, finite_metrics, queue_lengths, finite_metrics)
    def test_transfer_amount_bounded_by_own_queue(self, q_own, m_own, q_other, m_other):
        amount = robc_transfer_amount(q_own, m_own, q_other, m_other, RGQ)
        assert 0.0 <= amount <= q_own

    @given(queue_lengths, st.integers(min_value=1, max_value=500), finite_metrics)
    def test_class_a_window_fraction_in_unit_interval(self, queue, max_queue, metric):
        fraction = queue_based_class_a_window_fraction(
            min(queue, max_queue), max_queue, metric, RGQ
        )
        assert 0.0 <= fraction <= 1.0


class TestCapacityProperties:
    @given(st.floats(min_value=-150.0, max_value=-30.0))
    def test_capacity_bounded_and_non_negative(self, rssi):
        capacity = CAPACITY_MODEL.capacity_bps(rssi)
        assert 0.0 <= capacity <= CAPACITY_MODEL.max_capacity_bps

    @given(st.lists(st.floats(min_value=-150.0, max_value=-30.0), min_size=2, max_size=20))
    def test_capacity_monotone_in_rssi(self, rssis):
        ordered = sorted(rssis)
        capacities = [CAPACITY_MODEL.capacity_bps(r) for r in ordered]
        assert all(a <= b + 1e-9 for a, b in zip(capacities, capacities[1:]))


class TestAirtimeProperties:
    @given(st.integers(min_value=0, max_value=255),
           st.sampled_from(list(SpreadingFactor)))
    def test_airtime_positive_and_monotone_in_payload(self, payload, sf):
        calc = AirtimeCalculator(LoRaTransmissionParameters(spreading_factor=sf))
        airtime = calc.time_on_air_s(payload)
        assert airtime > 0.0
        if payload < 255:
            assert calc.time_on_air_s(payload + 1) >= airtime


class TestDutyCycleProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=40),
           st.floats(min_value=0.005, max_value=0.5))
    def test_long_run_utilisation_never_exceeds_duty_cycle(self, airtimes, duty_cycle):
        regulator = DutyCycleRegulator(duty_cycle)
        now = 0.0
        for airtime in airtimes:
            now = max(now, regulator.next_allowed_time)
            regulator.record_transmission(now, airtime)
        horizon = regulator.next_allowed_time
        assert regulator.utilisation(horizon) <= duty_cycle + 1e-9


class TestQueueProperties:
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=100))
    def test_queue_never_exceeds_capacity(self, capacity, pushes):
        queue = DataQueue(max_size=capacity)
        for i in range(pushes):
            queue.push(DataMessage(source="bus", created_at=float(i)))
        assert len(queue) <= capacity
        assert len(queue) + queue.dropped == pushes

    @given(st.integers(min_value=1, max_value=50))
    def test_fifo_order_preserved(self, count):
        queue = DataQueue()
        messages = [DataMessage(source="bus", created_at=float(i)) for i in range(count)]
        queue.extend(messages)
        assert queue.pop_front(count) == messages


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_events_always_pop_in_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.schedule(time)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)
