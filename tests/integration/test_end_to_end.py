"""Integration tests: full simulations exercising every layer together."""

from dataclasses import replace

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import MLoRaSimulation, run_scenario
from repro.experiments.scenario import build_scenario


@pytest.fixture(scope="module")
def dense_config():
    """A scenario dense enough that forwarding actually happens."""
    return ScenarioConfig(
        duration_s=3600.0,
        area_km2=30.0,
        num_gateways=3,
        num_routes=6,
        trips_per_route=4,
        stops_per_route=8,
        min_block_repeats=2,
        max_block_repeats=4,
        device_range_m=1000.0,
        seed=5,
    )


@pytest.fixture(scope="module")
def scheme_runs(dense_config):
    return {
        scheme: run_scenario(dense_config.with_scheme(scheme))
        for scheme in ("no-routing", "rca-etx", "robc")
    }


class TestSchemeComparison:
    def test_all_schemes_deliver_messages(self, scheme_runs):
        for scheme, metrics in scheme_runs.items():
            assert metrics.messages_delivered > 0, scheme

    def test_generated_workload_identical_across_schemes(self, scheme_runs):
        generated = {metrics.messages_generated for metrics in scheme_runs.values()}
        assert len(generated) == 1

    def test_forwarding_never_reduces_unique_deliveries_below_half_baseline(self, scheme_runs):
        baseline = scheme_runs["no-routing"].messages_delivered
        for scheme in ("rca-etx", "robc"):
            assert scheme_runs[scheme].messages_delivered >= 0.5 * baseline

    def test_no_routing_strictly_single_hop(self, scheme_runs):
        assert set(scheme_runs["no-routing"].hop_counts) == {1}

    def test_forwarding_schemes_send_at_least_as_many_frames(self, scheme_runs):
        baseline = scheme_runs["no-routing"].mean_messages_sent_per_node
        for scheme in ("rca-etx", "robc"):
            assert scheme_runs[scheme].mean_messages_sent_per_node >= baseline * 0.95

    def test_delays_non_negative_and_bounded_by_duration(self, scheme_runs, dense_config):
        for metrics in scheme_runs.values():
            assert all(0.0 <= d <= dense_config.duration_s for d in metrics.delays_s)


class TestForwardingMechanics:
    def test_forwarding_scheme_produces_handovers_in_dense_scenario(self, dense_config):
        scenario = build_scenario(dense_config.with_scheme("rca-etx"))
        simulation = MLoRaSimulation(scenario)
        simulation.run()
        received = sum(
            d.stats.messages_received_from_peers for d in scenario.devices.values()
        )
        assert simulation.handover_count >= 0
        assert received == simulation.handed_over_messages

    def test_message_conservation(self, dense_config):
        """Every generated message is delivered, still queued, or was dropped."""
        scenario = build_scenario(dense_config.with_scheme("robc"))
        simulation = MLoRaSimulation(scenario)
        metrics = simulation.run()
        queued = sum(len(d.queue) for d in scenario.devices.values())
        dropped = sum(d.queue.dropped for d in scenario.devices.values())
        total = metrics.messages_delivered + queued + dropped
        assert total >= metrics.messages_generated

    def test_gateway_frame_counts_match_server_frames(self, dense_config):
        scenario = build_scenario(dense_config)
        simulation = MLoRaSimulation(scenario)
        simulation.run()
        gateway_frames = sum(g.frames_received for g in scenario.gateways.values())
        assert gateway_frames == simulation.server.frames_processed


class TestDeviceClassesEndToEnd:
    def test_queue_based_class_a_uses_less_energy_than_modified_class_c(self, dense_config):
        modified_c = run_scenario(
            replace(dense_config, scheme="robc", device_class="modified-class-c")
        )
        queue_a = run_scenario(
            replace(dense_config, scheme="robc", device_class="queue-based-class-a")
        )
        assert queue_a.mean_energy_joules < modified_c.mean_energy_joules

    def test_queue_based_class_a_still_delivers(self, dense_config):
        queue_a = run_scenario(
            replace(dense_config, scheme="robc", device_class="queue-based-class-a")
        )
        assert queue_a.messages_delivered > 0


class TestGatewayDensityEffect:
    def test_more_gateways_means_more_throughput_and_less_delay(self, dense_config):
        sparse = run_scenario(replace(dense_config, num_gateways=1))
        dense = run_scenario(replace(dense_config, num_gateways=8))
        assert dense.messages_delivered > sparse.messages_delivered
        assert dense.mean_delay_s <= sparse.mean_delay_s or sparse.messages_delivered == 0
