"""Unit tests for the RSSI→capacity mapping (Eq. 5) and link quality."""

import pytest

from repro.phy.constants import SpreadingFactor, bitrate_bps
from repro.phy.link import LinkCapacityModel, LinkQualityEstimator


class TestLinkCapacityModel:
    def test_below_minimum_rssi_capacity_is_zero(self):
        model = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120, rssi_max_dbm=-80)
        assert model.capacity_bps(-121.0) == 0.0

    def test_above_maximum_rssi_capacity_is_max(self):
        model = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120, rssi_max_dbm=-80)
        assert model.capacity_bps(-70.0) == 100.0

    def test_midpoint_rssi_gives_half_capacity(self):
        model = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120, rssi_max_dbm=-80)
        assert model.capacity_bps(-100.0) == pytest.approx(50.0)

    def test_capacity_monotone_in_rssi(self):
        model = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120, rssi_max_dbm=-80)
        values = [model.capacity_bps(r) for r in range(-130, -60, 5)]
        assert values == sorted(values)

    def test_is_connected_matches_positive_capacity(self):
        model = LinkCapacityModel(max_capacity_bps=100.0, rssi_min_dbm=-120, rssi_max_dbm=-80)
        assert not model.is_connected(-125.0)
        assert model.is_connected(-100.0)

    def test_for_spreading_factor_uses_duty_cycled_bitrate(self):
        model = LinkCapacityModel.for_spreading_factor(SpreadingFactor.SF7, duty_cycle=0.01)
        assert model.max_capacity_bps == pytest.approx(bitrate_bps(SpreadingFactor.SF7) * 0.01)

    def test_for_spreading_factor_floor_is_sensitivity(self):
        model = LinkCapacityModel.for_spreading_factor(SpreadingFactor.SF9)
        assert model.capacity_bps(-130.0) == 0.0
        assert model.capacity_bps(-128.0) > 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LinkCapacityModel(max_capacity_bps=10.0, rssi_min_dbm=-80, rssi_max_dbm=-90)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            LinkCapacityModel(max_capacity_bps=0.0)


class TestLinkQualityEstimator:
    def test_below_sensitivity_never_received(self):
        estimator = LinkQualityEstimator()
        assert estimator.success_probability(estimator.sensitivity_dbm - 1.0) == 0.0

    def test_well_above_sensitivity_always_received(self):
        estimator = LinkQualityEstimator(margin_db=10.0)
        assert estimator.success_probability(estimator.sensitivity_dbm + 20.0) == 1.0

    def test_probability_ramps_linearly_inside_margin(self):
        estimator = LinkQualityEstimator(margin_db=10.0)
        halfway = estimator.sensitivity_dbm + 5.0
        assert estimator.success_probability(halfway) == pytest.approx(0.5)

    def test_deterministic_threshold_without_rng(self):
        estimator = LinkQualityEstimator(margin_db=10.0)
        assert estimator.frame_received(estimator.sensitivity_dbm + 9.0, None)
        assert not estimator.frame_received(estimator.sensitivity_dbm + 1.0, None)

    def test_stochastic_reception_matches_probability(self, rng):
        estimator = LinkQualityEstimator(margin_db=10.0)
        rssi = estimator.sensitivity_dbm + 7.0
        outcomes = [estimator.frame_received(rssi, rng) for _ in range(2000)]
        assert 0.6 < sum(outcomes) / len(outcomes) < 0.8

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            LinkQualityEstimator(margin_db=0.0)
