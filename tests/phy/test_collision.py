"""Unit tests for the collision/capture model."""

import pytest

from repro.phy.collision import CollisionModel, Transmission
from repro.phy.constants import SpreadingFactor


def _tx(sender, start, duration, rssi, channel=0, sf=SpreadingFactor.SF7):
    return Transmission(
        sender=sender,
        start_time=start,
        duration=duration,
        channel=channel,
        spreading_factor=sf,
        rssi_by_receiver=dict(rssi),
    )


class TestTransmission:
    def test_end_time(self):
        assert _tx("a", 10.0, 2.0, {}).end_time == 12.0

    def test_overlap_in_time_same_channel(self):
        a = _tx("a", 0.0, 2.0, {})
        b = _tx("b", 1.0, 2.0, {})
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_when_disjoint_in_time(self):
        a = _tx("a", 0.0, 1.0, {})
        b = _tx("b", 2.0, 1.0, {})
        assert not a.overlaps(b)

    def test_back_to_back_frames_do_not_overlap(self):
        a = _tx("a", 0.0, 1.0, {})
        b = _tx("b", 1.0, 1.0, {})
        assert not a.overlaps(b)

    def test_different_channels_do_not_overlap(self):
        a = _tx("a", 0.0, 2.0, {}, channel=0)
        b = _tx("b", 0.0, 2.0, {}, channel=1)
        assert not a.overlaps(b)

    def test_different_spreading_factors_are_orthogonal(self):
        a = _tx("a", 0.0, 2.0, {}, sf=SpreadingFactor.SF7)
        b = _tx("b", 0.0, 2.0, {}, sf=SpreadingFactor.SF8)
        assert not a.overlaps(b)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            _tx("a", 0.0, 0.0, {})


class TestCollisionModel:
    def test_lone_transmission_received_when_heard(self):
        model = CollisionModel()
        tx = _tx("a", 0.0, 1.0, {"gw": -100.0})
        model.add(tx)
        assert model.is_received(tx, "gw")

    def test_unheard_receiver_not_received(self):
        model = CollisionModel()
        tx = _tx("a", 0.0, 1.0, {"gw": -100.0})
        model.add(tx)
        assert not model.is_received(tx, "other-gw")

    def test_collision_without_capture_destroys_both(self):
        model = CollisionModel(capture_threshold_db=6.0)
        a = _tx("a", 0.0, 1.0, {"gw": -100.0})
        b = _tx("b", 0.5, 1.0, {"gw": -101.0})
        model.add(a)
        model.add(b)
        assert not model.is_received(a, "gw")
        assert not model.is_received(b, "gw")

    def test_stronger_frame_captures(self):
        model = CollisionModel(capture_threshold_db=6.0)
        strong = _tx("a", 0.0, 1.0, {"gw": -90.0})
        weak = _tx("b", 0.5, 1.0, {"gw": -100.0})
        model.add(strong)
        model.add(weak)
        assert model.is_received(strong, "gw")
        assert not model.is_received(weak, "gw")

    def test_collision_is_resolved_per_receiver(self):
        model = CollisionModel()
        a = _tx("a", 0.0, 1.0, {"gw1": -90.0, "gw2": -100.0})
        b = _tx("b", 0.2, 1.0, {"gw2": -95.0})
        model.add(a)
        model.add(b)
        # gw1 never hears b, so a survives there; at gw2 the margin is < 6 dB.
        assert model.is_received(a, "gw1")
        assert not model.is_received(a, "gw2")

    def test_interferer_that_is_not_heard_does_not_collide(self):
        model = CollisionModel()
        a = _tx("a", 0.0, 1.0, {"gw": -90.0})
        b = _tx("b", 0.2, 1.0, {"other": -95.0})
        model.add(a)
        model.add(b)
        assert model.is_received(a, "gw")

    def test_expire_drops_old_transmissions(self):
        model = CollisionModel()
        model.add(_tx("a", 0.0, 1.0, {"gw": -90.0}))
        model.add(_tx("b", 5.0, 1.0, {"gw": -90.0}))
        model.expire(3.0)
        assert len(model.active_transmissions) == 1

    def test_survivors_filters_by_receiver(self):
        model = CollisionModel()
        a = _tx("a", 0.0, 1.0, {"gw": -90.0})
        model.add(a)
        assert model.survivors("gw") == [a]
        assert model.survivors("nobody") == []

    def test_negative_capture_threshold_rejected(self):
        with pytest.raises(ValueError):
            CollisionModel(capture_threshold_db=-1.0)
