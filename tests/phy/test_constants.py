"""Unit tests for LoRa PHY constants and bitrates."""

import pytest

from repro.phy.constants import (
    EU868_DUTY_CYCLE,
    SENSITIVITY_DBM,
    SNR_THRESHOLD_DB,
    SpreadingFactor,
    bitrate_bps,
    effective_bitrate_bps,
)


class TestBitrate:
    def test_sf7_raw_bitrate_matches_reference(self):
        # SF7 / 125 kHz / CR 4/5 is ~5.47 kbit/s (Semtech reference tables).
        assert bitrate_bps(SpreadingFactor.SF7) == pytest.approx(5468.75, rel=1e-3)

    def test_sf12_raw_bitrate_matches_reference(self):
        # SF12 / 125 kHz / CR 4/5 is ~293 bit/s.
        assert bitrate_bps(SpreadingFactor.SF12) == pytest.approx(292.97, rel=1e-3)

    def test_bitrate_decreases_with_spreading_factor(self):
        rates = [bitrate_bps(sf) for sf in SpreadingFactor]
        assert rates == sorted(rates, reverse=True)

    def test_effective_bitrate_applies_duty_cycle(self):
        raw = bitrate_bps(SpreadingFactor.SF12)
        effective = effective_bitrate_bps(SpreadingFactor.SF12)
        assert effective == pytest.approx(raw * EU868_DUTY_CYCLE)

    def test_sf12_effective_rate_matches_paper_figure(self):
        # Sec. III-B quotes ~2.5 bit/s for SF12/125 kHz at 1 % duty cycle.
        assert effective_bitrate_bps(SpreadingFactor.SF12) == pytest.approx(2.9, abs=0.5)

    def test_invalid_coding_rate_rejected(self):
        with pytest.raises(ValueError):
            bitrate_bps(SpreadingFactor.SF7, coding_rate=5)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            bitrate_bps(SpreadingFactor.SF7, bandwidth_hz=0)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            effective_bitrate_bps(SpreadingFactor.SF7, duty_cycle=0.0)


class TestTables:
    def test_sensitivity_defined_for_all_spreading_factors(self):
        assert set(SENSITIVITY_DBM) == set(SpreadingFactor)

    def test_snr_threshold_defined_for_all_spreading_factors(self):
        assert set(SNR_THRESHOLD_DB) == set(SpreadingFactor)

    def test_sensitivity_improves_with_higher_spreading_factor(self):
        values = [SENSITIVITY_DBM[sf] for sf in SpreadingFactor]
        assert values == sorted(values, reverse=True)

    def test_snr_threshold_drops_with_higher_spreading_factor(self):
        values = [SNR_THRESHOLD_DB[sf] for sf in SpreadingFactor]
        assert values == sorted(values, reverse=True)
