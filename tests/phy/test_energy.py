"""Unit tests for the radio energy model."""

import pytest

from repro.phy.energy import DEFAULT_CURRENT_MA, EnergyModel, RadioState


class TestEnergyModel:
    def test_accumulate_and_read_back(self):
        model = EnergyModel()
        model.accumulate(RadioState.TX, 10.0)
        model.accumulate(RadioState.TX, 5.0)
        assert model.seconds_in(RadioState.TX) == 15.0

    def test_charge_for_known_duration(self):
        model = EnergyModel()
        model.accumulate(RadioState.RX, 3600.0)
        assert model.charge_mah() == pytest.approx(DEFAULT_CURRENT_MA[RadioState.RX])

    def test_energy_joules_for_known_duration(self):
        model = EnergyModel(supply_voltage_v=3.3)
        model.accumulate(RadioState.TX, 10.0)
        expected = (DEFAULT_CURRENT_MA[RadioState.TX] / 1000.0) * 3.3 * 10.0
        assert model.energy_joules() == pytest.approx(expected)

    def test_tx_costs_more_than_rx_costs_more_than_sleep(self):
        results = {}
        for state in (RadioState.TX, RadioState.RX, RadioState.SLEEP):
            model = EnergyModel()
            model.accumulate(state, 100.0)
            results[state] = model.energy_joules()
        assert results[RadioState.TX] > results[RadioState.RX] > results[RadioState.SLEEP]

    def test_reset_zeroes_accumulated_time(self):
        model = EnergyModel()
        model.accumulate(RadioState.RX, 50.0)
        model.reset()
        assert model.energy_joules() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().accumulate(RadioState.TX, -1.0)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(supply_voltage_v=0.0)

    def test_unknown_state_defaults_populated(self):
        model = EnergyModel(current_ma={RadioState.TX: 50.0})
        assert model.current_ma[RadioState.RX] == DEFAULT_CURRENT_MA[RadioState.RX]
