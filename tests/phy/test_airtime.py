"""Unit tests for the LoRa time-on-air calculator."""

import pytest

from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.constants import SpreadingFactor


class TestSymbolTime:
    def test_sf7_symbol_time(self):
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF7))
        assert calc.symbol_time_s == pytest.approx(1.024e-3, rel=1e-6)

    def test_sf12_symbol_time(self):
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF12))
        assert calc.symbol_time_s == pytest.approx(32.768e-3, rel=1e-6)


class TestTimeOnAir:
    def test_known_sf7_airtime_for_20_byte_payload(self):
        # Semtech AN1200.13: SF7/125 kHz/CR 4-5, 20-byte payload, 8-symbol
        # preamble, explicit header, CRC on -> 43 payload symbols plus the
        # 12.544 ms preamble = ~56.6 ms.
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF7))
        assert calc.time_on_air_s(20) == pytest.approx(0.0566, abs=0.002)

    def test_known_sf12_airtime_for_20_byte_payload(self):
        calc = AirtimeCalculator(
            LoRaTransmissionParameters(SpreadingFactor.SF12, low_data_rate_optimize=True)
        )
        # ~1.32 s for SF12 with low-data-rate optimisation enabled.
        assert calc.time_on_air_s(20) == pytest.approx(1.32, abs=0.05)

    def test_airtime_increases_with_payload(self):
        calc = AirtimeCalculator()
        assert calc.time_on_air_s(200) > calc.time_on_air_s(50) > calc.time_on_air_s(10)

    def test_airtime_increases_with_spreading_factor(self):
        airtimes = [
            AirtimeCalculator(LoRaTransmissionParameters(sf)).time_on_air_s(50)
            for sf in SpreadingFactor
        ]
        assert airtimes == sorted(airtimes)

    def test_zero_payload_still_has_preamble_and_header(self):
        calc = AirtimeCalculator()
        assert calc.time_on_air_s(0) > calc.preamble_time_s()

    def test_payload_above_255_bytes_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().time_on_air_s(256)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().time_on_air_s(-1)


class TestDutyCycleWait:
    def test_one_percent_duty_cycle_waits_99x_airtime(self):
        calc = AirtimeCalculator()
        airtime = calc.time_on_air_s(50)
        assert calc.duty_cycle_wait_s(50, 0.01) == pytest.approx(airtime * 99.0)

    def test_full_duty_cycle_means_no_wait(self):
        calc = AirtimeCalculator()
        assert calc.duty_cycle_wait_s(50, 1.0) == pytest.approx(0.0)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().duty_cycle_wait_s(50, 0.0)


class TestParametersValidation:
    def test_invalid_coding_rate_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(coding_rate=0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(bandwidth_hz=-1)

    def test_negative_preamble_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(preamble_symbols=-1)
