"""Unit tests for the LoRa time-on-air calculator."""

import pytest

from repro.phy.airtime import AirtimeCalculator, LoRaTransmissionParameters
from repro.phy.constants import SpreadingFactor


class TestSymbolTime:
    def test_sf7_symbol_time(self):
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF7))
        assert calc.symbol_time_s == pytest.approx(1.024e-3, rel=1e-6)

    def test_sf12_symbol_time(self):
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF12))
        assert calc.symbol_time_s == pytest.approx(32.768e-3, rel=1e-6)


class TestTimeOnAir:
    def test_known_sf7_airtime_for_20_byte_payload(self):
        # Semtech AN1200.13: SF7/125 kHz/CR 4-5, 20-byte payload, 8-symbol
        # preamble, explicit header, CRC on -> 43 payload symbols plus the
        # 12.544 ms preamble = ~56.6 ms.
        calc = AirtimeCalculator(LoRaTransmissionParameters(SpreadingFactor.SF7))
        assert calc.time_on_air_s(20) == pytest.approx(0.0566, abs=0.002)

    def test_known_sf12_airtime_for_20_byte_payload(self):
        calc = AirtimeCalculator(
            LoRaTransmissionParameters(SpreadingFactor.SF12, low_data_rate_optimize=True)
        )
        # ~1.32 s for SF12 with low-data-rate optimisation enabled.
        assert calc.time_on_air_s(20) == pytest.approx(1.32, abs=0.05)

    def test_airtime_increases_with_payload(self):
        calc = AirtimeCalculator()
        assert calc.time_on_air_s(200) > calc.time_on_air_s(50) > calc.time_on_air_s(10)

    def test_airtime_increases_with_spreading_factor(self):
        airtimes = [
            AirtimeCalculator(LoRaTransmissionParameters(sf)).time_on_air_s(50)
            for sf in SpreadingFactor
        ]
        assert airtimes == sorted(airtimes)

    def test_zero_payload_still_has_preamble_and_header(self):
        calc = AirtimeCalculator()
        assert calc.time_on_air_s(0) > calc.preamble_time_s()

    def test_payload_above_255_bytes_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().time_on_air_s(256)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().time_on_air_s(-1)


class TestDutyCycleWait:
    def test_one_percent_duty_cycle_waits_99x_airtime(self):
        calc = AirtimeCalculator()
        airtime = calc.time_on_air_s(50)
        assert calc.duty_cycle_wait_s(50, 0.01) == pytest.approx(airtime * 99.0)

    def test_full_duty_cycle_means_no_wait(self):
        calc = AirtimeCalculator()
        assert calc.duty_cycle_wait_s(50, 1.0) == pytest.approx(0.0)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            AirtimeCalculator().duty_cycle_wait_s(50, 0.0)


class TestParametersValidation:
    def test_invalid_coding_rate_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(coding_rate=0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(bandwidth_hz=-1)

    def test_negative_preamble_rejected(self):
        with pytest.raises(ValueError):
            LoRaTransmissionParameters(preamble_symbols=-1)


class TestSemtechFormulaAllSpreadingFactors:
    """Pin the calculator to an independent spelling of Semtech AN1200.13.

    The reference below re-derives T_preamble and N_payload from the
    application note directly (not by calling the implementation), so a
    regression in either the symbol arithmetic or the ceiling handling shows
    up as a numeric mismatch at some SF.
    """

    @staticmethod
    def _reference_time_on_air_s(
        sf: int,
        payload_bytes: int,
        bandwidth_hz: float = 125_000.0,
        coding_rate: int = 1,
        preamble_symbols: int = 8,
        explicit_header: bool = True,
        low_data_rate_optimize: bool = False,
        crc: bool = True,
    ) -> float:
        import math

        t_sym = (2.0 ** sf) / bandwidth_hz
        t_preamble = (preamble_symbols + 4.25) * t_sym
        numerator = (
            8 * payload_bytes
            - 4 * sf
            + 28
            + 16 * (1 if crc else 0)
            - 20 * (0 if explicit_header else 1)
        )
        denominator = 4 * (sf - 2 * (1 if low_data_rate_optimize else 0))
        n_payload = 8 + max(
            math.ceil(max(numerator, 0) / denominator) * (coding_rate + 4), 0
        )
        return t_preamble + n_payload * t_sym

    @pytest.mark.parametrize("sf", list(SpreadingFactor))
    @pytest.mark.parametrize("payload", [0, 1, 20, 51, 128, 255])
    def test_matches_reference_per_sf(self, sf, payload):
        calc = AirtimeCalculator(LoRaTransmissionParameters(spreading_factor=sf))
        expected = self._reference_time_on_air_s(int(sf), payload)
        assert calc.time_on_air_s(payload) == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("sf", [SpreadingFactor.SF11, SpreadingFactor.SF12])
    def test_matches_reference_with_ldro(self, sf):
        calc = AirtimeCalculator(
            LoRaTransmissionParameters(spreading_factor=sf, low_data_rate_optimize=True)
        )
        expected = self._reference_time_on_air_s(
            int(sf), 20, low_data_rate_optimize=True
        )
        assert calc.time_on_air_s(20) == pytest.approx(expected, rel=1e-12)

    def test_known_reference_values_millisecond_scale(self):
        # Cross-checked against the Semtech LoRa airtime calculator
        # (20-byte payload, 125 kHz, CR 4/5, preamble 8, CRC on, explicit
        # header; LDRO on for SF11/SF12 as mandated at 125 kHz).
        expected_ms = {
            SpreadingFactor.SF7: 56.58,
            SpreadingFactor.SF8: 102.91,
            SpreadingFactor.SF9: 185.34,
            SpreadingFactor.SF10: 370.69,
            SpreadingFactor.SF11: 741.38,
            SpreadingFactor.SF12: 1318.91,
        }
        for sf, value_ms in expected_ms.items():
            ldro = sf in (SpreadingFactor.SF11, SpreadingFactor.SF12)
            calc = AirtimeCalculator(
                LoRaTransmissionParameters(
                    spreading_factor=sf, low_data_rate_optimize=ldro
                )
            )
            assert calc.time_on_air_s(20) * 1000.0 == pytest.approx(
                value_ms, abs=0.5
            ), sf
