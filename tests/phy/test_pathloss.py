"""Unit tests for the path-loss models."""

import numpy as np
import pytest

from repro.phy.pathloss import (
    DEFAULT_PATH_LOSS_EXPONENT,
    DiscPathLoss,
    FreeSpacePathLoss,
    LogDistancePathLoss,
)


class TestLogDistance:
    def test_reference_distance_gives_reference_loss(self):
        model = LogDistancePathLoss()
        assert model.path_loss_db(1000.0) == pytest.approx(model.reference_loss_db)

    def test_loss_grows_with_distance(self):
        model = LogDistancePathLoss()
        assert model.path_loss_db(2000.0) > model.path_loss_db(1000.0) > model.path_loss_db(200.0)

    def test_exponent_slope_is_10n_per_decade(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        per_decade = model.path_loss_db(10_000.0) - model.path_loss_db(1000.0)
        assert per_decade == pytest.approx(10.0 * DEFAULT_PATH_LOSS_EXPONENT)

    def test_received_power_without_rng_is_deterministic(self):
        model = LogDistancePathLoss()
        a = model.received_power_dbm(14.0, 800.0)
        b = model.received_power_dbm(14.0, 800.0)
        assert a == b

    def test_shadowing_adds_variance(self, rng):
        model = LogDistancePathLoss(shadowing_sigma_db=8.0)
        samples = [model.received_power_dbm(14.0, 800.0, rng) for _ in range(200)]
        assert np.std(samples) > 2.0

    def test_shadowing_sample_zero_mean(self, rng):
        model = LogDistancePathLoss(shadowing_sigma_db=8.0)
        samples = [model.shadowing_db(rng) for _ in range(2000)]
        assert abs(np.mean(samples)) < 1.0

    def test_range_for_sensitivity_round_trips(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        distance = model.range_for_sensitivity(14.0, -123.0)
        rssi = model.received_power_dbm(14.0, distance)
        assert rssi == pytest.approx(-123.0, abs=0.1)

    def test_sub_metre_distances_clamped(self):
        model = LogDistancePathLoss()
        assert model.path_loss_db(0.0) == model.path_loss_db(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().path_loss_db(-5.0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)


class TestFreeSpace:
    def test_known_value_at_1km_868mhz(self):
        # FSPL(1 km, 868 MHz) is about 91.2 dB.
        model = FreeSpacePathLoss(868e6)
        assert model.path_loss_db(1000.0) == pytest.approx(91.2, abs=0.5)

    def test_loss_grows_20db_per_decade(self):
        model = FreeSpacePathLoss()
        assert model.path_loss_db(10_000.0) - model.path_loss_db(1000.0) == pytest.approx(20.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            FreeSpacePathLoss(0.0)


class TestDisc:
    def test_inside_radius_has_fixed_rssi(self):
        model = DiscPathLoss(radius_m=500.0, in_range_rssi_dbm=-70.0)
        assert model.received_power_dbm(14.0, 499.0) == -70.0

    def test_outside_radius_unreachable(self):
        model = DiscPathLoss(radius_m=500.0)
        assert model.received_power_dbm(14.0, 501.0) == float("-inf")

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            DiscPathLoss(radius_m=0.0)
