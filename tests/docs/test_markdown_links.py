"""Intra-repo markdown link checker (the CI docs job runs this).

Every relative link in the repo's markdown files must point at an existing
file or directory.  External links (http/https/mailto) are not fetched.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Markdown sources covered by the checker.
MARKDOWN_FILES = sorted(
    list(REPO_ROOT.glob("*.md")) + list((REPO_ROOT / "docs").glob("*.md"))
)

#: Inline links: [text](target) with an optional "title".
_LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code_blocks(text: str) -> str:
    # Fenced code blocks hold shell snippets, not hyperlinks.
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _relative_links(path: Path):
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        yield target


def test_markdown_files_exist():
    names = {path.name for path in MARKDOWN_FILES}
    for required in ("README.md", "architecture.md", "scenarios.md", "performance.md"):
        assert required in names, f"{required} is missing from the docs suite"


@pytest.mark.parametrize("path", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(path):
    broken = []
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.relative_to(REPO_ROOT)} has broken links: {broken}"
