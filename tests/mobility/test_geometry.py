"""Unit tests for geometry helpers."""

import math

import pytest

from repro.mobility.geometry import BoundingBox, Point, grid_positions, mph_to_mps


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_interpolate_midpoint(self):
        mid = Point(0, 0).interpolate(Point(10, 20), 0.5)
        assert (mid.x, mid.y) == (5.0, 10.0)

    def test_interpolate_clamps_fraction(self):
        assert Point(0, 0).interpolate(Point(10, 0), 2.0) == Point(10, 0)
        assert Point(0, 0).interpolate(Point(10, 0), -1.0) == Point(0, 0)

    def test_translate(self):
        assert Point(1, 2).translate(3, -1) == Point(4, 1)


class TestBoundingBox:
    def test_from_area(self):
        box = BoundingBox.from_area_km2(600.0)
        assert box.area_km2 == pytest.approx(600.0)
        assert box.width == pytest.approx(math.sqrt(600.0) * 1000.0)

    def test_contains_and_clamp(self):
        box = BoundingBox.square(100.0)
        assert box.contains(Point(50, 50))
        assert not box.contains(Point(150, 50))
        assert box.clamp(Point(150, -20)) == Point(100, 0)

    def test_center(self):
        assert BoundingBox.square(100.0).center == Point(50, 50)

    def test_invalid_boxes_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -1, 10)
        with pytest.raises(ValueError):
            BoundingBox.square(0.0)
        with pytest.raises(ValueError):
            BoundingBox.from_area_km2(-5.0)


class TestGridPositions:
    def test_exact_count_returned(self):
        box = BoundingBox.square(1000.0)
        for count in (1, 4, 5, 7, 40, 100):
            assert len(grid_positions(box, count)) == count

    def test_all_points_inside_box(self):
        box = BoundingBox.square(5000.0)
        assert all(box.contains(p) for p in grid_positions(box, 60))

    def test_square_count_forms_regular_grid(self):
        box = BoundingBox.square(100.0)
        points = grid_positions(box, 4)
        xs = sorted({p.x for p in points})
        ys = sorted({p.y for p in points})
        assert xs == [25.0, 75.0]
        assert ys == [25.0, 75.0]

    def test_points_are_distinct(self):
        box = BoundingBox.square(1000.0)
        points = grid_positions(box, 30)
        assert len({(p.x, p.y) for p in points}) == 30

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            grid_positions(BoundingBox.square(10.0), 0)


class TestUnits:
    def test_mph_conversion(self):
        assert mph_to_mps(23.1) == pytest.approx(10.33, abs=0.01)
        assert mph_to_mps(0.0) == 0.0
