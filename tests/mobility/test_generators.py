"""Unit tests for the simple mobility models."""

import pytest

from repro.mobility.generators import RandomWaypointMobility, StaticMobility
from repro.mobility.geometry import BoundingBox, Point


class TestStaticMobility:
    def test_one_trace_per_position(self):
        traces = StaticMobility([Point(0, 0), Point(1, 1)]).traces()
        assert len(traces) == 2
        assert traces[0].position_at(1e6) == Point(0, 0)

    def test_finite_window(self):
        traces = StaticMobility([Point(0, 0)], start=10.0, end=20.0).traces()
        assert traces[0].position_at(5.0) is None
        assert traces[0].position_at(15.0) == Point(0, 0)


class TestRandomWaypointMobility:
    def _model(self, **overrides):
        defaults = dict(
            bounding_box=BoundingBox.square(1000.0),
            num_nodes=5,
            duration_s=600.0,
            min_speed_mps=2.0,
            max_speed_mps=8.0,
        )
        defaults.update(overrides)
        return RandomWaypointMobility(**defaults)

    def test_one_trace_per_node(self, rng):
        assert len(self._model().traces(rng)) == 5

    def test_traces_cover_requested_duration(self, rng):
        for trace in self._model().traces(rng):
            assert trace.end_time >= 600.0

    def test_positions_stay_inside_box(self, rng):
        box = BoundingBox.square(1000.0)
        for trace in self._model().traces(rng):
            for time in range(0, 600, 50):
                position = trace.position_at(float(time))
                assert position is not None and box.contains(position)

    def test_speeds_within_bounds(self, rng):
        for trace in self._model(pause_s=0.0).traces(rng):
            assert 2.0 * 0.9 <= trace.average_speed() <= 8.0 * 1.1

    def test_deterministic_for_same_rng_seed(self):
        import numpy as np

        a = self._model().traces(np.random.default_rng(3))
        b = self._model().traces(np.random.default_rng(3))
        assert a[0].points == b[0].points

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self._model(num_nodes=0)
        with pytest.raises(ValueError):
            self._model(duration_s=0.0)
        with pytest.raises(ValueError):
            self._model(min_speed_mps=5.0, max_speed_mps=1.0)
        with pytest.raises(ValueError):
            self._model(pause_s=-1.0)
