"""Unit tests for mobility traces."""

import numpy as np
import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint, active_count_at


class TestMobilityTrace:
    def _trace(self):
        return MobilityTrace(
            [
                TracePoint(0.0, Point(0, 0)),
                TracePoint(100.0, Point(100, 0)),
                TracePoint(200.0, Point(100, 100)),
            ],
            node_id="bus",
        )

    def test_interpolates_between_samples(self):
        trace = self._trace()
        assert trace.position_at(50.0) == Point(50, 0)
        assert trace.position_at(150.0) == Point(100, 50)

    def test_exact_sample_times(self):
        trace = self._trace()
        assert trace.position_at(0.0) == Point(0, 0)
        assert trace.position_at(200.0) == Point(100, 100)

    def test_outside_active_window_returns_none(self):
        trace = self._trace()
        assert trace.position_at(-1.0) is None
        assert trace.position_at(201.0) is None

    def test_is_active(self):
        trace = self._trace()
        assert trace.is_active(100.0)
        assert not trace.is_active(500.0)

    def test_total_distance_and_speed(self):
        trace = self._trace()
        assert trace.total_distance() == pytest.approx(200.0)
        assert trace.average_speed() == pytest.approx(1.0)

    def test_points_sorted_even_if_given_unsorted(self):
        trace = MobilityTrace(
            [TracePoint(100.0, Point(1, 1)), TracePoint(0.0, Point(0, 0))]
        )
        assert trace.start_time == 0.0
        assert trace.end_time == 100.0

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace([TracePoint(1.0, Point(0, 0)), TracePoint(1.0, Point(1, 1))])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace([])

    def test_static_trace_with_finite_window(self):
        trace = MobilityTrace.static(Point(5, 5), start=10.0, end=20.0)
        assert trace.position_at(15.0) == Point(5, 5)
        assert trace.position_at(25.0) is None

    def test_static_trace_open_ended(self):
        trace = MobilityTrace.static(Point(5, 5))
        assert trace.is_active(1e9)
        assert trace.position_at(1e9) == Point(5, 5)

    def test_static_trace_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace.static(Point(0, 0), start=10.0, end=5.0)


class TestPositionsAt:
    def _trace(self):
        return MobilityTrace(
            [
                TracePoint(10.0, Point(0, 0)),
                TracePoint(110.0, Point(100, 0)),
                TracePoint(210.0, Point(100, 100)),
            ],
            node_id="bus",
        )

    def test_matches_scalar_queries_including_boundaries(self):
        trace = self._trace()
        times = [9.999, 10.0, 10.001, 60.0, 110.0, 160.0, 209.999, 210.0, 210.001]
        batch = trace.positions_at(times)
        for time, row in zip(times, batch):
            scalar = trace.position_at(time)
            if scalar is None:
                assert np.isnan(row).all()
            else:
                assert (scalar.x, scalar.y) == (row[0], row[1])

    def test_inactive_rows_are_nan(self):
        trace = self._trace()
        batch = trace.positions_at([0.0, 9.0, 211.0, 1e6])
        assert np.isnan(batch).all()
        assert batch.shape == (4, 2)

    def test_single_point_trace(self):
        trace = MobilityTrace([TracePoint(5.0, Point(3, 4))])
        batch = trace.positions_at([4.0, 5.0, 6.0])
        assert np.isnan(batch[0]).all()
        assert tuple(batch[1]) == (3.0, 4.0)
        assert np.isnan(batch[2]).all()

    def test_open_ended_static_trace(self):
        trace = MobilityTrace.static(Point(7, -2), start=10.0)
        batch = trace.positions_at([0.0, 10.0, 1e9])
        assert np.isnan(batch[0]).all()
        assert tuple(batch[1]) == (7.0, -2.0)
        assert tuple(batch[2]) == (7.0, -2.0)

    def test_empty_query_gives_empty_result(self):
        assert self._trace().positions_at([]).shape == (0, 2)

    def test_rejects_multidimensional_queries(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            self._trace().positions_at(np.zeros((2, 2)))

    def test_points_in_span_bisects_inclusive_boundaries(self):
        trace = self._trace()
        assert [p.time for p in trace.points_in_span(10.0, 210.0)] == [10.0, 110.0, 210.0]
        assert [p.time for p in trace.points_in_span(10.001, 110.0)] == [110.0]
        assert trace.points_in_span(111.0, 112.0) == []
        assert trace.points_in_span(300.0, 400.0) == []

    def test_interpolation_holds_position_through_dwell(self):
        # Two samples at the same place (a dwell) keep the node stationary.
        trace = MobilityTrace(
            [
                TracePoint(0.0, Point(0, 0)),
                TracePoint(10.0, Point(10, 0)),
                TracePoint(20.0, Point(10, 0)),
                TracePoint(30.0, Point(20, 0)),
            ]
        )
        batch = trace.positions_at([12.0, 15.0, 20.0])
        assert [tuple(row) for row in batch] == [(10.0, 0.0)] * 3


class TestActiveCount:
    def test_counts_active_traces_at_time(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0)
        b = MobilityTrace.static(Point(1, 1), start=50.0, end=150.0)
        assert active_count_at([a, b], 25.0) == 1
        assert active_count_at([a, b], 75.0) == 2
        assert active_count_at([a, b], 140.0) == 1
