"""Unit tests for mobility traces."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace, TracePoint, active_count_at


class TestMobilityTrace:
    def _trace(self):
        return MobilityTrace(
            [
                TracePoint(0.0, Point(0, 0)),
                TracePoint(100.0, Point(100, 0)),
                TracePoint(200.0, Point(100, 100)),
            ],
            node_id="bus",
        )

    def test_interpolates_between_samples(self):
        trace = self._trace()
        assert trace.position_at(50.0) == Point(50, 0)
        assert trace.position_at(150.0) == Point(100, 50)

    def test_exact_sample_times(self):
        trace = self._trace()
        assert trace.position_at(0.0) == Point(0, 0)
        assert trace.position_at(200.0) == Point(100, 100)

    def test_outside_active_window_returns_none(self):
        trace = self._trace()
        assert trace.position_at(-1.0) is None
        assert trace.position_at(201.0) is None

    def test_is_active(self):
        trace = self._trace()
        assert trace.is_active(100.0)
        assert not trace.is_active(500.0)

    def test_total_distance_and_speed(self):
        trace = self._trace()
        assert trace.total_distance() == pytest.approx(200.0)
        assert trace.average_speed() == pytest.approx(1.0)

    def test_points_sorted_even_if_given_unsorted(self):
        trace = MobilityTrace(
            [TracePoint(100.0, Point(1, 1)), TracePoint(0.0, Point(0, 0))]
        )
        assert trace.start_time == 0.0
        assert trace.end_time == 100.0

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace([TracePoint(1.0, Point(0, 0)), TracePoint(1.0, Point(1, 1))])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace([])

    def test_static_trace_with_finite_window(self):
        trace = MobilityTrace.static(Point(5, 5), start=10.0, end=20.0)
        assert trace.position_at(15.0) == Point(5, 5)
        assert trace.position_at(25.0) is None

    def test_static_trace_open_ended(self):
        trace = MobilityTrace.static(Point(5, 5))
        assert trace.is_active(1e9)
        assert trace.position_at(1e9) == Point(5, 5)

    def test_static_trace_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace.static(Point(0, 0), start=10.0, end=5.0)


class TestActiveCount:
    def test_counts_active_traces_at_time(self):
        a = MobilityTrace.static(Point(0, 0), start=0.0, end=100.0)
        b = MobilityTrace.static(Point(1, 1), start=50.0, end=150.0)
        assert active_count_at([a, b], 25.0) == 1
        assert active_count_at([a, b], 75.0) == 2
        assert active_count_at([a, b], 140.0) == 1
