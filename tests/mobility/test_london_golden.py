"""Golden-fingerprint regression tests for the London bus-network generator.

The digests below were recorded from the pre-mobility-refactor generator
(commit e648f22, where ``experiments/scenario.py`` generated traces inline).
Any mobility refactor must keep reproducing them bit-for-bit, the way
``tests/experiments/test_radio_equivalence.py`` pins the radio engine.  If a
legitimate behaviour change ever invalidates them, regenerate the digests
*and* bump ``repro.experiments.parallel.CACHE_SCHEMA_VERSION`` in the same
commit.
"""

import hashlib
import json

from repro.mobility.london import LondonBusNetworkConfig, LondonBusNetworkGenerator
from repro.sim.randomness import RandomStreams


def timetable_digest(timetable) -> str:
    """A SHA-256 over every trip of a timetable, full float precision."""
    payload = [
        {
            "trip_id": trip.trip_id,
            "route_id": trip.route.route_id,
            "round_trip": trip.route.round_trip,
            "stops": [(repr(p.x), repr(p.y)) for p in trip.route.stops],
            "start_time": repr(trip.start_time),
            "speed_mps": repr(trip.speed_mps),
            "dwell_time_s": repr(trip.dwell_time_s),
            "repeats": trip.repeats,
        }
        for trip in timetable.trips
    ]
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


#: The small config the SMALL equivalence scenario implies (1800 s horizon
#: compresses the diurnal window by 1800/86400).
SMALL_NETWORK = LondonBusNetworkConfig(
    area_km2=20.0,
    num_routes=4,
    trips_per_route=2,
    stops_per_route=5,
    min_repeats=1,
    max_repeats=2,
    day_start_s=5.5 * 3600.0 * 1800.0 / 86400.0,
    day_end_s=22.0 * 3600.0 * 1800.0 / 86400.0,
    horizon_s=1800.0,
)

GOLDEN_TIMETABLE_DIGESTS = {
    "default-seed11": "2af939718b212938f3bd1e59d0b40dc546334acf3b408d3c9724221b94001591",
    "small-seed11": "0a8be03b4a8da6573856f18f28ee330ea6f75bf85b54fce8f43413e5ea1a50ff",
}


class TestGoldenTimetables:
    def test_default_config_timetable_is_bit_identical(self):
        generator = LondonBusNetworkGenerator(
            LondonBusNetworkConfig(), RandomStreams(11).stream("mobility")
        )
        assert (
            timetable_digest(generator.generate())
            == GOLDEN_TIMETABLE_DIGESTS["default-seed11"]
        ), (
            "the seeded London timetable diverged from the pre-refactor "
            "generator; if intentional, regenerate the goldens and bump "
            "CACHE_SCHEMA_VERSION"
        )

    def test_small_config_timetable_is_bit_identical(self):
        generator = LondonBusNetworkGenerator(
            SMALL_NETWORK, RandomStreams(11).stream("mobility")
        )
        assert (
            timetable_digest(generator.generate())
            == GOLDEN_TIMETABLE_DIGESTS["small-seed11"]
        )

    def test_generation_is_seed_deterministic(self):
        first = LondonBusNetworkGenerator(
            SMALL_NETWORK, RandomStreams(23).stream("mobility")
        ).generate()
        second = LondonBusNetworkGenerator(
            SMALL_NETWORK, RandomStreams(23).stream("mobility")
        ).generate()
        assert timetable_digest(first) == timetable_digest(second)
        different = LondonBusNetworkGenerator(
            SMALL_NETWORK, RandomStreams(24).stream("mobility")
        ).generate()
        assert timetable_digest(different) != timetable_digest(first)
