"""Unit tests for the synthetic London bus-network generator (Fig. 7 shapes)."""

import numpy as np
import pytest

from repro.mobility.london import DAY_SECONDS, LondonBusNetworkConfig, LondonBusNetworkGenerator


@pytest.fixture
def small_config():
    return LondonBusNetworkConfig(
        area_km2=60.0,
        num_routes=10,
        trips_per_route=6,
        stops_per_route=8,
        min_repeats=2,
        max_repeats=4,
    )


@pytest.fixture
def generator(small_config, rng):
    return LondonBusNetworkGenerator(small_config, rng)


class TestRouteGeneration:
    def test_number_of_routes(self, generator, small_config):
        assert len(generator.generate_routes()) == small_config.num_routes

    def test_mix_of_radial_and_orbital_routes(self, generator):
        route_ids = [r.route_id for r in generator.generate_routes()]
        assert any(route_id.startswith("radial") for route_id in route_ids)
        assert any(route_id.startswith("orbital") for route_id in route_ids)

    def test_all_stops_inside_service_area(self, generator):
        box = generator.bounding_box
        for route in generator.generate_routes():
            assert all(box.contains(stop) for stop in route.stops)

    def test_radial_routes_start_near_centre(self, generator):
        centre = generator.bounding_box.center
        radials = [r for r in generator.generate_routes() if r.route_id.startswith("radial")]
        for route in radials:
            assert route.stops[0].distance_to(centre) < generator.bounding_box.width * 0.05


class TestTimetableGeneration:
    def test_trip_count(self, generator, small_config):
        timetable = generator.generate()
        assert len(timetable) == small_config.num_routes * small_config.trips_per_route

    def test_speeds_within_configured_range(self, generator, small_config):
        from repro.mobility.geometry import mph_to_mps

        timetable = generator.generate()
        low = mph_to_mps(small_config.min_speed_mph)
        high = mph_to_mps(small_config.max_speed_mph)
        assert all(low <= trip.speed_mps <= high for trip in timetable.trips)

    def test_start_times_within_horizon(self, generator, small_config):
        timetable = generator.generate()
        assert all(0 <= trip.start_time < small_config.horizon_s for trip in timetable.trips)

    def test_repeats_within_configured_range(self, generator, small_config):
        timetable = generator.generate()
        assert all(
            small_config.min_repeats <= trip.repeats <= small_config.max_repeats
            for trip in timetable.trips
        )

    def test_generation_is_deterministic_for_same_seed(self, small_config):
        a = LondonBusNetworkGenerator(small_config, np.random.default_rng(5)).generate()
        b = LondonBusNetworkGenerator(small_config, np.random.default_rng(5)).generate()
        assert [t.start_time for t in a.trips] == [t.start_time for t in b.trips]


class TestDiurnalShape:
    def test_daytime_has_more_active_buses_than_night(self, rng):
        config = LondonBusNetworkConfig(
            area_km2=60.0, num_routes=12, trips_per_route=10, min_repeats=2, max_repeats=4
        )
        timetable = LondonBusNetworkGenerator(config, rng).generate()
        profile = timetable.active_bus_profile(1800.0, DAY_SECONDS)
        night = np.mean(profile[2:8])      # 01:00-04:00
        midday = np.mean(profile[22:30])   # 11:00-15:00
        assert midday > night

    def test_active_durations_are_spread_out(self, generator):
        durations = generator.generate().active_durations()
        assert max(durations) > 2.0 * min(durations)


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            LondonBusNetworkConfig(area_km2=0.0)
        with pytest.raises(ValueError):
            LondonBusNetworkConfig(num_routes=0)
        with pytest.raises(ValueError):
            LondonBusNetworkConfig(min_speed_mph=10.0, max_speed_mph=5.0)
        with pytest.raises(ValueError):
            LondonBusNetworkConfig(min_repeats=5, max_repeats=2)
        with pytest.raises(ValueError):
            LondonBusNetworkConfig(day_start_s=10.0, day_end_s=5.0)
