"""Unit tests for routes, trips and timetables."""

import pytest

from repro.mobility.geometry import Point
from repro.mobility.route import BusRoute, Timetable, Trip, build_trip_trace


@pytest.fixture
def straight_route():
    return BusRoute(
        route_id="r1",
        stops=[Point(0, 0), Point(1000, 0), Point(2000, 0)],
    )


class TestBusRoute:
    def test_length(self, straight_route):
        assert straight_route.length_m() == pytest.approx(2000.0)

    def test_round_trip_doubles_length(self):
        route = BusRoute("r2", [Point(0, 0), Point(1000, 0)], round_trip=True)
        assert route.length_m() == pytest.approx(2000.0)

    def test_round_trip_waypoints_return_to_start(self):
        route = BusRoute("r2", [Point(0, 0), Point(1000, 0), Point(2000, 0)], round_trip=True)
        assert route.waypoints[0] == route.waypoints[-1]

    def test_too_few_stops_rejected(self):
        with pytest.raises(ValueError):
            BusRoute("bad", [Point(0, 0)])


class TestTrip:
    def test_duration_includes_driving_and_dwell(self, straight_route):
        trip = Trip("t1", straight_route, start_time=0.0, speed_mps=10.0, dwell_time_s=30.0)
        # 2000 m at 10 m/s plus one intermediate stop dwell.
        assert trip.duration_s() == pytest.approx(230.0)

    def test_repeats_extend_duration(self, straight_route):
        single = Trip("t1", straight_route, 0.0, 10.0, dwell_time_s=0.0, repeats=1)
        triple = Trip("t3", straight_route, 0.0, 10.0, dwell_time_s=0.0, repeats=3)
        assert triple.duration_s() > 2.5 * single.duration_s()

    def test_invalid_parameters_rejected(self, straight_route):
        with pytest.raises(ValueError):
            Trip("t", straight_route, start_time=-1.0, speed_mps=10.0)
        with pytest.raises(ValueError):
            Trip("t", straight_route, start_time=0.0, speed_mps=0.0)
        with pytest.raises(ValueError):
            Trip("t", straight_route, start_time=0.0, speed_mps=1.0, repeats=0)


class TestTripTrace:
    def test_trace_starts_and_ends_at_route_extremes(self, straight_route):
        trip = Trip("t1", straight_route, start_time=50.0, speed_mps=10.0, dwell_time_s=0.0)
        trace = build_trip_trace(trip)
        assert trace.start_time == 50.0
        assert trace.position_at(50.0) == Point(0, 0)
        assert trace.position_at(trace.end_time) == Point(2000, 0)

    def test_trace_duration_matches_trip_duration(self, straight_route):
        trip = Trip("t1", straight_route, start_time=0.0, speed_mps=10.0, dwell_time_s=30.0)
        trace = build_trip_trace(trip)
        assert trace.end_time == pytest.approx(trip.duration_s())

    def test_bus_stationary_during_dwell(self, straight_route):
        trip = Trip("t1", straight_route, start_time=0.0, speed_mps=10.0, dwell_time_s=30.0)
        trace = build_trip_trace(trip)
        # The first leg takes 100 s, then the bus dwells for 30 s at x=1000.
        assert trace.position_at(110.0) == Point(1000, 0)
        assert trace.position_at(125.0) == Point(1000, 0)

    def test_round_trip_with_repeats_returns_to_start_each_cycle(self):
        route = BusRoute("r", [Point(0, 0), Point(1000, 0)], round_trip=True)
        trip = Trip("t", route, start_time=0.0, speed_mps=10.0, dwell_time_s=0.0, repeats=2)
        trace = build_trip_trace(trip)
        assert trace.position_at(200.0) == Point(0, 0)
        assert trace.position_at(300.0) == Point(1000, 0)

    def test_trace_node_id_defaults_to_trip_id(self, straight_route):
        trip = Trip("trip-42", straight_route, 0.0, 10.0)
        assert build_trip_trace(trip).node_id == "trip-42"


class TestTimetable:
    def _timetable(self, straight_route):
        timetable = Timetable()
        timetable.add(Trip("a", straight_route, start_time=0.0, speed_mps=10.0, dwell_time_s=0.0))
        timetable.add(Trip("b", straight_route, start_time=300.0, speed_mps=10.0, dwell_time_s=0.0))
        return timetable

    def test_traces_one_per_trip(self, straight_route):
        assert len(self._timetable(straight_route).traces()) == 2

    def test_active_bus_profile_counts_overlapping_trips(self, straight_route):
        profile = self._timetable(straight_route).active_bus_profile(100.0, 600.0)
        assert len(profile) == 6
        assert max(profile) >= 1
        assert profile[4] == 1  # only trip "b" active around t=450

    def test_active_durations(self, straight_route):
        durations = self._timetable(straight_route).active_durations()
        assert len(durations) == 2
        assert all(d == pytest.approx(200.0) for d in durations)

    def test_invalid_profile_parameters_rejected(self, straight_route):
        with pytest.raises(ValueError):
            self._timetable(straight_route).active_bus_profile(0.0, 100.0)
