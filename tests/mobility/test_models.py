"""Unit tests for the pluggable mobility-model registry."""

import numpy as np
import pytest

from repro.mobility.config import MOBILITY_MODELS, MobilityConfig
from repro.mobility.geometry import Point
from repro.mobility.london import LondonBusNetworkConfig
from repro.mobility.models import (
    MobilitySpec,
    build_mobility,
    load_traces_csv,
    make_mobility_model,
    mobility_model_names,
    save_traces_csv,
)
from repro.mobility.trace import MobilityTrace, TracePoint

SMALL_NETWORK = LondonBusNetworkConfig(
    area_km2=10.0,
    num_routes=3,
    trips_per_route=2,
    stops_per_route=4,
    min_repeats=1,
    max_repeats=2,
    horizon_s=3600.0,
    day_start_s=900.0,
    day_end_s=2700.0,
)


def _spec(**mobility_kwargs) -> MobilitySpec:
    return MobilitySpec(
        mobility=MobilityConfig(**mobility_kwargs),
        network=SMALL_NETWORK,
        duration_s=3600.0,
    )


class TestMobilityConfig:
    def test_default_is_london_bus(self):
        config = MobilityConfig()
        assert config.model == "london-bus"
        assert config.is_default

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            MobilityConfig(model="teleport")

    def test_invalid_speeds_rejected(self):
        with pytest.raises(ValueError):
            MobilityConfig(min_speed_mps=0.0)
        with pytest.raises(ValueError):
            MobilityConfig(min_speed_mps=5.0, max_speed_mps=2.0)

    def test_trace_file_model_needs_a_path(self):
        with pytest.raises(ValueError, match="trace_file"):
            MobilityConfig(model="trace-file")

    def test_with_helpers(self):
        config = MobilityConfig().with_model("random-waypoint").with_num_nodes(7)
        assert config.model == "random-waypoint"
        assert config.num_nodes == 7
        assert not config.is_default
        replay = MobilityConfig().with_trace_file("traces.csv")
        assert replay.model == "trace-file"
        assert replay.trace_file == "traces.csv"


class TestRegistry:
    def test_registry_matches_catalogue(self):
        assert mobility_model_names() == list(MOBILITY_MODELS)
        for name in MOBILITY_MODELS:
            if name == "trace-file":
                continue
            assert make_mobility_model(name).name == name

    def test_unknown_model_lists_catalogue(self):
        with pytest.raises(ValueError, match="available"):
            make_mobility_model("does-not-exist")


class TestLondonBusModel:
    def test_builds_one_trace_per_trip_with_bus_ids(self):
        build = build_mobility(_spec(), np.random.default_rng(5))
        assert len(build.traces) == SMALL_NETWORK.num_routes * SMALL_NETWORK.trips_per_route
        assert all(node_id.startswith("bus-") for node_id in build.traces)
        assert build.bounding_box.area_km2 == pytest.approx(SMALL_NETWORK.area_km2)

    def test_deterministic_under_same_rng_seed(self):
        first = build_mobility(_spec(), np.random.default_rng(5))
        second = build_mobility(_spec(), np.random.default_rng(5))
        assert {k: t.points for k, t in first.traces.items()} == {
            k: t.points for k, t in second.traces.items()
        }


class TestRandomWaypointModel:
    def test_fleet_size_defaults_to_bus_fleet(self):
        build = build_mobility(
            _spec(model="random-waypoint"), np.random.default_rng(1)
        )
        assert len(build.traces) == SMALL_NETWORK.num_routes * SMALL_NETWORK.trips_per_route

    def test_explicit_num_nodes_and_containment(self):
        spec = _spec(model="random-waypoint", num_nodes=5)
        build = build_mobility(spec, np.random.default_rng(1))
        assert len(build.traces) == 5
        for trace in build.traces.values():
            assert trace.end_time >= spec.duration_s
            for point in trace.points:
                assert build.bounding_box.contains(point.position)


class TestGridManhattanModel:
    def test_waypoints_sit_on_street_grid(self):
        spec = _spec(model="grid-manhattan", num_nodes=4, grid_spacing_m=500.0)
        build = build_mobility(spec, np.random.default_rng(2))
        box = build.bounding_box
        columns = max(int(box.width // 500.0) + 1, 2)
        rows = max(int(box.height // 500.0) + 1, 2)
        spacing_x = box.width / (columns - 1)
        spacing_y = box.height / (rows - 1)
        for trace in build.traces.values():
            assert trace.end_time >= spec.duration_s
            for point in trace.points:
                col = (point.position.x - box.min_x) / spacing_x
                row = (point.position.y - box.min_y) / spacing_y
                assert abs(col - round(col)) < 1e-6, "off-grid x coordinate"
                assert abs(row - round(row)) < 1e-6, "off-grid y coordinate"

    def test_consecutive_waypoints_are_adjacent_intersections(self):
        spec = _spec(model="grid-manhattan", num_nodes=2, grid_spacing_m=1000.0)
        build = build_mobility(spec, np.random.default_rng(3))
        box = build.bounding_box
        columns = max(int(box.width // 1000.0) + 1, 2)
        spacing_x = box.width / (columns - 1)
        for trace in build.traces.values():
            for earlier, later in zip(trace.points, trace.points[1:]):
                distance = earlier.position.distance_to(later.position)
                # Either a pause (same corner) or a one-block hop.
                assert distance == pytest.approx(0.0) or distance <= spacing_x * 1.01


class TestTraceFileModel:
    def _traces(self):
        return {
            "alpha": MobilityTrace(
                [TracePoint(0.0, Point(0.0, 0.0)), TracePoint(60.0, Point(120.5, -3.25))],
                node_id="alpha",
            ),
            "beta": MobilityTrace(
                [TracePoint(10.0, Point(50.0, 75.0)), TracePoint(90.0, Point(55.5, 80.0))],
                node_id="beta",
            ),
        }

    def test_csv_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(self._traces(), path)
        loaded = load_traces_csv(path)
        assert {k: t.points for k, t in loaded.items()} == {
            k: t.points for k, t in self._traces().items()
        }

    def test_model_replays_file_and_encloses_it(self, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(self._traces(), path)
        build = build_mobility(
            _spec(model="trace-file", trace_file=str(path)), np.random.default_rng(0)
        )
        assert set(build.traces) == {"alpha", "beta"}
        for trace in build.traces.values():
            for point in trace.points:
                assert build.bounding_box.contains(point.position)

    def test_missing_file_is_a_clean_error(self, tmp_path):
        spec = _spec(model="trace-file", trace_file=str(tmp_path / "nope.csv"))
        with pytest.raises(ValueError, match="cannot read trace file"):
            build_mobility(spec, np.random.default_rng(0))

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,t,x,y\nn,0,0,0\n", encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            load_traces_csv(path)

    def test_bad_row_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("node_id,time_s,x_m,y_m\nn,zero,0,0\n", encoding="utf-8")
        with pytest.raises(ValueError, match="line 2"):
            load_traces_csv(path)

    def test_empty_file_rejected_by_model(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("node_id,time_s,x_m,y_m\n", encoding="utf-8")
        spec = _spec(model="trace-file", trace_file=str(path))
        with pytest.raises(ValueError, match="no trace points"):
            build_mobility(spec, np.random.default_rng(0))
