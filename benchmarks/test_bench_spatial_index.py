"""Micro-benchmark of the grid-indexed neighbour queries.

Pins the property the tentpole optimisation promises: a neighbour query no
longer touches every device.  The candidate counters are deterministic, so the
pruning assertion is exact; the timing is reported for the record.
"""

import numpy as np

from repro.mobility.geometry import Point
from repro.mobility.trace import MobilityTrace
from repro.network.node import DeviceNode, SinkNode
from repro.network.topology import TimeVaryingTopology, TopologyConfig
from repro.phy.link import LinkCapacityModel
from repro.phy.pathloss import DiscPathLoss

NUM_DEVICES = 600
AREA_SIDE_M = 12_000.0
DEVICE_RANGE_M = 500.0


def _build_topology():
    rng = np.random.default_rng(42)
    coords = rng.uniform(0.0, AREA_SIDE_M, size=(NUM_DEVICES, 2))
    devices = [
        DeviceNode(
            f"d{i:04d}",
            MobilityTrace.static(Point(float(x), float(y)), start=0.0, end=3600.0),
        )
        for i, (x, y) in enumerate(coords)
    ]
    sinks = [SinkNode("gw", Point(AREA_SIDE_M / 2, AREA_SIDE_M / 2))]
    topology = TimeVaryingTopology(
        devices=devices,
        sinks=sinks,
        config=TopologyConfig(gateway_range_m=1000.0, device_range_m=DEVICE_RANGE_M),
        path_loss=DiscPathLoss(radius_m=50_000.0, in_range_rssi_dbm=-90.0),
        capacity_model=LinkCapacityModel(
            max_capacity_bps=100.0, rssi_min_dbm=-120.0, rssi_max_dbm=-80.0
        ),
        position_cache_window_s=15.0,
    )
    return topology, coords


def test_bench_spatial_neighbour_index(benchmark):
    topology, coords = _build_topology()
    device_ids = [f"d{i:04d}" for i in range(NUM_DEVICES)]

    def query_all():
        for device_id in device_ids:
            topology.neighbours(device_id, 10.0)

    benchmark.pedantic(query_all, rounds=3, iterations=1)

    queries = topology.neighbour_query_count
    candidates = topology.neighbour_candidate_count
    full_scan = queries * (NUM_DEVICES - 1)
    print()
    print(
        f"queries={queries} candidates={candidates} "
        f"full-scan-equivalent={full_scan} "
        f"pruning={full_scan / max(candidates, 1):.1f}x"
    )

    # The index must examine dramatically fewer devices than a full scan —
    # at this density a 3x3-cell block holds well under a tenth of the fleet.
    assert candidates < full_scan / 10

    # And it must not lose anyone: spot-check against brute force.
    for i in (0, 123, 599):
        x, y = coords[i]
        expected = [
            f"d{j:04d}"
            for j, (ox, oy) in enumerate(coords)
            if j != i and float(np.hypot(ox - x, oy - y)) <= DEVICE_RANGE_M
        ]
        assert [n for n, _ in topology.neighbours(f"d{i:04d}", 10.0)] == expected
