"""Fig. 13 — average number of messages sent per node (energy-overhead proxy)."""

from benchmarks.conftest import SWEEP_SCALE
from repro.experiments.figures import figure13_overhead
from repro.experiments.reporting import format_figure_rows


def test_bench_fig13_overhead(benchmark, density_sweep):
    rows = benchmark.pedantic(
        figure13_overhead, args=(density_sweep,), rounds=1, iterations=1
    )
    print()
    print(format_figure_rows("Fig. 13 — messages sent per node", rows, unit="frames"))

    # Paper: the forwarding schemes send more frames than plain LoRaWAN
    # (1.6x-2.2x in the paper's setting); at minimum they must not send fewer.
    for environment in ("urban", "rural"):
        for count in SWEEP_SCALE.gateway_counts:
            baseline = next(
                row.value for row in rows
                if row.scheme == "no-routing" and row.environment == environment
                and row.num_gateways == count
            )
            for scheme in ("rca-etx", "robc"):
                value = next(
                    row.value for row in rows
                    if row.scheme == scheme and row.environment == environment
                    and row.num_gateways == count
                )
                assert value >= 0.95 * baseline
